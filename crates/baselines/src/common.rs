//! Shared front-end for the baseline identifiers.

use std::collections::BTreeSet;

use funseeker_disasm::{Insn, InsnKind, LinearSweep, Mode};
use funseeker_eh::parse_eh_frame;
use funseeker_elf::{Class, Elf};

/// A uniform interface over all function identifiers in the comparison
/// (Table III).
pub trait FunctionIdentifier {
    /// Tool name as it appears in result tables.
    fn name(&self) -> &'static str;

    /// Identifies function entry addresses in a raw ELF image.
    fn identify(&self, bytes: &[u8]) -> Result<BTreeSet<u64>, funseeker::Error>;
}

/// Pre-parsed image shared by the baselines.
#[derive(Debug, Clone)]
pub struct Image<'a> {
    /// `.text` load address.
    pub text_addr: u64,
    /// `.text` bytes.
    pub text: &'a [u8],
    /// Decode mode.
    pub mode: Mode,
    /// Entry point.
    pub entry: u64,
    /// FDE `pc_begin` values (empty when `.eh_frame` is absent or
    /// unparseable).
    pub fde_begins: Vec<u64>,
    /// FDE ranges `(pc_begin, pc_range)`.
    pub fde_ranges: Vec<(u64, u64)>,
}

impl<'a> Image<'a> {
    /// Parses the sections every baseline needs.
    pub fn load(bytes: &'a [u8]) -> Result<Self, funseeker::Error> {
        let elf = Elf::parse(bytes)?;
        let (text_addr, text) = elf.section_bytes(".text").ok_or(funseeker::Error::NoText)?;
        let wide = elf.class() == Class::Elf64;
        let mode = if wide { Mode::Bits64 } else { Mode::Bits32 };
        let mut fde_begins = Vec::new();
        let mut fde_ranges = Vec::new();
        if let Some((addr, data)) = elf.section_bytes(".eh_frame") {
            if let Ok(frame) = parse_eh_frame(data, addr, wide) {
                for fde in frame.fdes {
                    fde_begins.push(fde.pc_begin);
                    fde_ranges.push((fde.pc_begin, fde.pc_range));
                }
            }
        }
        Ok(Image { text_addr, text, mode, entry: elf.header.entry, fde_begins, fde_ranges })
    }

    /// End of `.text` (exclusive).
    pub fn text_end(&self) -> u64 {
        self.text_addr + self.text.len() as u64
    }

    /// Whether `addr` is inside `.text`.
    pub fn in_text(&self, addr: u64) -> bool {
        addr >= self.text_addr && addr < self.text_end()
    }

    /// Linear sweep over the whole `.text`.
    pub fn sweep(&self) -> Vec<Insn> {
        LinearSweep::new(self.text, self.text_addr, self.mode).collect()
    }

    /// Raw bytes at a virtual address.
    pub fn bytes_at(&self, addr: u64, n: usize) -> Option<&'a [u8]> {
        let off = addr.checked_sub(self.text_addr)? as usize;
        self.text.get(off..off.checked_add(n)?)
    }
}

/// Does `addr` start with a classic frame prologue?
///
/// Matches the byte shapes compilers emit with frame pointers enabled,
/// optionally preceded by an end-branch (tools match the pattern
/// syntactically; they do not interpret the end-branch semantically):
///
/// * x86-64: `[endbr64] push rbp; mov rbp, rsp`
/// * x86:    `[endbr32] push ebp; mov ebp, esp`
pub fn has_frame_prologue(img: &Image<'_>, addr: u64) -> bool {
    let avail = (img.text_end().saturating_sub(addr)).min(8) as usize;
    let Some(head) = img.bytes_at(addr, avail) else { return false };
    let body = if head.get(..3) == Some(&[0xf3, 0x0f, 0x1e]) && head.len() > 4 {
        &head[4..]
    } else {
        head
    };
    match img.mode {
        Mode::Bits64 => body.starts_with(&[0x55, 0x48, 0x89, 0xe5]),
        Mode::Bits32 => body.starts_with(&[0x55, 0x89, 0xe5]),
    }
}

/// Collects direct call targets reachable in `insns` (within `.text`).
pub fn call_targets(img: &Image<'_>, insns: &[Insn]) -> BTreeSet<u64> {
    insns
        .iter()
        .filter_map(|i| match i.kind {
            InsnKind::CallRel { target } if img.in_text(target) => Some(target),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_of(text: &'static [u8], mode: Mode) -> Image<'static> {
        Image {
            text_addr: 0x1000,
            text,
            mode,
            entry: 0x1000,
            fde_begins: vec![],
            fde_ranges: vec![],
        }
    }

    #[test]
    fn frame_prologue_detection() {
        // endbr64; push rbp; mov rbp, rsp
        static A: &[u8] = &[0xf3, 0x0f, 0x1e, 0xfa, 0x55, 0x48, 0x89, 0xe5, 0xc3];
        let img = image_of(A, Mode::Bits64);
        assert!(has_frame_prologue(&img, 0x1000));
        assert!(has_frame_prologue(&img, 0x1004), "bare push rbp; mov rbp,rsp also matches");
        assert!(!has_frame_prologue(&img, 0x1005));

        static B: &[u8] = &[0x55, 0x89, 0xe5, 0xc3, 0x90, 0x90, 0x90, 0x90];
        let img = image_of(B, Mode::Bits32);
        assert!(has_frame_prologue(&img, 0x1000));
        assert!(!has_frame_prologue(&img, 0x1001));
    }

    #[test]
    fn frameless_entry_is_not_a_prologue() {
        // endbr64; sub rsp, 0x18 — the O2 shape.
        static C: &[u8] = &[0xf3, 0x0f, 0x1e, 0xfa, 0x48, 0x83, 0xec, 0x18, 0xc3];
        let img = image_of(C, Mode::Bits64);
        assert!(!has_frame_prologue(&img, 0x1000));
    }

    #[test]
    fn loads_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let img = Image::load(&bytes).unwrap();
        assert!(img.in_text(img.text_addr));
        assert!(!img.fde_begins.is_empty(), "rustc emits FDEs");
        let insns = img.sweep();
        assert!(insns.len() > 1000);
        assert!(!call_targets(&img, &insns).is_empty());
    }
}
