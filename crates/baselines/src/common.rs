//! Shared front-end for the baseline identifiers.
//!
//! Every tool consumes the same [`Prepared`] view — one PARSE and one
//! linear sweep per binary, shared with FunSeeker itself — instead of
//! re-decoding the image per tool.

use funseeker::{prepare, FuncSet, Prepared};
use funseeker_disasm::Mode;

/// A uniform interface over all function identifiers in the comparison
/// (Table III).
pub trait FunctionIdentifier {
    /// Tool name as it appears in result tables.
    fn name(&self) -> &'static str;

    /// Identifies function entry addresses from a prepared binary,
    /// reusing its shared sweep index.
    fn identify_prepared(&self, prepared: &Prepared<'_>) -> Result<FuncSet, funseeker::Error>;

    /// Identifies function entry addresses in a raw ELF image.
    fn identify(&self, bytes: &[u8]) -> Result<FuncSet, funseeker::Error> {
        self.identify_prepared(&prepare(bytes)?)
    }
}

/// FDE `pc_begin` values that land inside the analyzed code.
pub fn fde_begins_in_code<'p>(p: &'p Prepared<'_>) -> impl Iterator<Item = u64> + 'p {
    p.parsed.fde_ranges.iter().map(|&(b, _)| b).filter(|&a| p.parsed.in_code(a))
}

/// Up to `max` raw bytes starting at `addr`, clamped to the end of the
/// containing code region.
pub fn window_at<'d>(p: &Prepared<'d>, addr: u64, max: usize) -> Option<&'d [u8]> {
    let region = p.parsed.code.region_of(addr)?;
    let avail = usize::try_from(region.end() - addr).unwrap_or(usize::MAX).min(max);
    p.parsed.code.bytes_at(addr, avail)
}

/// Does `addr` start with a classic frame prologue?
///
/// Matches the byte shapes compilers emit with frame pointers enabled,
/// optionally preceded by an end-branch (tools match the pattern
/// syntactically; they do not interpret the end-branch semantically):
///
/// * x86-64: `[endbr64] push rbp; mov rbp, rsp`
/// * x86:    `[endbr32] push ebp; mov ebp, esp`
pub fn has_frame_prologue(p: &Prepared<'_>, addr: u64) -> bool {
    let Some(head) = window_at(p, addr, 8) else { return false };
    let body = if head.get(..3) == Some(&[0xf3, 0x0f, 0x1e]) && head.len() > 4 {
        &head[4..]
    } else {
        head
    };
    match p.parsed.mode() {
        Mode::Bits64 => body.starts_with(&[0x55, 0x48, 0x89, 0xe5]),
        Mode::Bits32 => body.starts_with(&[0x55, 0x89, 0xe5]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker::parse::Parsed;

    fn prepared_of(text: &'static [u8], wide: bool) -> Prepared<'static> {
        Prepared::from_parsed(Parsed::from_region(0x1000, text, wide))
    }

    #[test]
    fn frame_prologue_detection() {
        // endbr64; push rbp; mov rbp, rsp
        static A: &[u8] = &[0xf3, 0x0f, 0x1e, 0xfa, 0x55, 0x48, 0x89, 0xe5, 0xc3];
        let p = prepared_of(A, true);
        assert!(has_frame_prologue(&p, 0x1000));
        assert!(has_frame_prologue(&p, 0x1004), "bare push rbp; mov rbp,rsp also matches");
        assert!(!has_frame_prologue(&p, 0x1005));

        static B: &[u8] = &[0x55, 0x89, 0xe5, 0xc3, 0x90, 0x90, 0x90, 0x90];
        let p = prepared_of(B, false);
        assert!(has_frame_prologue(&p, 0x1000));
        assert!(!has_frame_prologue(&p, 0x1001));
    }

    #[test]
    fn frameless_entry_is_not_a_prologue() {
        // endbr64; sub rsp, 0x18 — the O2 shape.
        static C: &[u8] = &[0xf3, 0x0f, 0x1e, 0xfa, 0x48, 0x83, 0xec, 0x18, 0xc3];
        let p = prepared_of(C, true);
        assert!(!has_frame_prologue(&p, 0x1000));
    }

    #[test]
    fn prepares_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let p = prepare(&bytes).unwrap();
        assert!(!p.parsed.fde_ranges.is_empty(), "rustc emits FDEs");
        assert!(fde_begins_in_code(&p).next().is_some());
        assert!(p.index.insns.len() > 1000);
        assert!(!p.index.call_targets.is_empty());
    }

    #[test]
    fn window_clamps_to_region_end() {
        static D: &[u8] = &[0x90, 0x90, 0x90];
        let p = prepared_of(D, true);
        assert_eq!(window_at(&p, 0x1001, 16), Some(&D[1..]));
        assert_eq!(window_at(&p, 0x1003, 16), None, "one past the end is outside the region");
        assert_eq!(window_at(&p, 0x0fff, 16), None);
    }
}
