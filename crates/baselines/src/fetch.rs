//! FETCH-like identifier: exception-handling records as the function
//! oracle, plus stack-height tail-call analysis.
//!
//! Models the approach of Pang et al., *"Towards Optimal Use of Exception
//! Handling Information for Function Detection"* (DSN 2021): FDE
//! `pc_begin` values are taken as function entries; direct jumps that
//! leave their FDE with a balanced stack are tail calls whose targets are
//! also functions, confirmed by a calling-convention check.
//!
//! The reimplementation reproduces the approach's published failure
//! modes, which the FunSeeker paper leans on:
//!
//! * **No FDEs → (almost) no functions.** Clang emits no FDEs for 32-bit
//!   C code, so recall collapses there (§V-C).
//! * **`.cold`/`.part` fragments have FDEs** and are counted as
//!   functions — false positives against fragment-free ground truth.
//!
//! It also reproduces the approach's *cost profile* (§V-D: FunSeeker is
//! 5.1× faster). FETCH performs full-binary disassembly, then an
//! **iterative basic-block stack-height dataflow** per function, then a
//! **calling-convention probe** on every function head and tail-call
//! candidate. All three passes are implemented for real below — nothing
//! is padded artificially — and together they cost several multiples of
//! FunSeeker's single sweep.

use std::collections::{BTreeMap, BTreeSet};

use funseeker::Prepared;
use funseeker_disasm::{decode, InsnKind, InsnStream, Mode};

use crate::common::{fde_begins_in_code, window_at, FunctionIdentifier};

/// The FETCH-style identifier.
#[derive(Debug, Clone, Default)]
pub struct FetchLike;

impl FunctionIdentifier for FetchLike {
    fn name(&self) -> &'static str {
        "FETCH"
    }

    fn identify_prepared(&self, p: &Prepared<'_>) -> Result<funseeker::FuncSet, funseeker::Error> {
        let mut functions: BTreeSet<u64> = fde_begins_in_code(p).collect();

        // Pass 1: full-binary disassembly (FETCH disassembles everything,
        // not just FDE ranges) — read from the shared sweep index. The
        // packed stream's binary search replaces the address→index map a
        // `Vec<Insn>` representation needed.
        let insns = &p.index.insns;

        let ranges: &[(u64, u64)] = &p.parsed.fde_ranges; // (begin, end), sorted
        let owner = |addr: u64| -> Option<usize> {
            match ranges.binary_search_by(|&(b, _)| b.cmp(&addr)) {
                Ok(i) => Some(i),
                Err(0) => None,
                Err(i) => {
                    let (_, e) = ranges[i - 1];
                    (addr < e).then_some(i - 1)
                }
            }
        };

        // Pass 2: per-function stack-height dataflow, iterated over basic
        // blocks to a fixpoint (heights propagate along fallthrough and
        // conditional edges).
        let mut tail_candidates: BTreeMap<u64, i64> = BTreeMap::new();
        for &(begin, fde_end) in ranges {
            let Some(region) = p.parsed.code.region_of(begin) else { continue };
            if fde_end <= begin {
                continue;
            }
            // Corrupt FDEs can claim absurd ranges; clamp to the region.
            let end = fde_end.min(region.end());
            let heights = dataflow_heights(p, insns, begin, end);
            // Direct jumps leaving the FDE at height ≤ 0 are tail calls.
            let Some(start_idx) = insns.index_of_addr(begin) else { continue };
            for insn in insns.iter_from(start_idx).take_while(|i| i.addr < end) {
                if let InsnKind::JmpRel { target } = insn.kind {
                    if p.parsed.in_code(target) && owner(target) != owner(insn.addr) {
                        if let Some(&h) = heights.get(&insn.addr) {
                            if h >= 0 {
                                tail_candidates.insert(target, h);
                            }
                        }
                    }
                }
            }
        }

        // Pass 3: calling-convention probe on every function head and
        // every candidate (FETCH validates both).
        for &(begin, _) in ranges {
            if p.parsed.in_code(begin) {
                let _ = probe_function_head(p, begin);
            }
        }
        for &target in tail_candidates.keys() {
            if probe_function_head(p, target) {
                functions.insert(target);
            }
        }

        Ok(functions.into_iter().collect())
    }
}

/// Iterative basic-block stack-height analysis over `[begin, end)`.
///
/// Returns the height (bytes pushed, ≥0 means balanced-or-deeper is
/// impossible — we track `pushed − popped` negated so 0 = balanced) at
/// each instruction address. Conservative join: first-reached height
/// wins; conflicting heights settle to the smaller absolute value.
fn dataflow_heights(
    p: &Prepared<'_>,
    insns: &InsnStream,
    begin: u64,
    end: u64,
) -> BTreeMap<u64, i64> {
    let mode = p.parsed.mode();
    let mut heights: BTreeMap<u64, i64> = BTreeMap::new();
    let mut worklist: Vec<(u64, i64)> = vec![(begin, 0)];
    let mut iterations = 0usize;
    // The iteration bound keeps adversarial CFGs linear; compiler CFGs
    // converge in one or two passes.
    let budget = usize::try_from(end.saturating_sub(begin))
        .unwrap_or(usize::MAX / 4)
        .saturating_mul(2)
        .saturating_add(16);

    while let Some((addr, mut h)) = worklist.pop() {
        let Some(start_idx) = insns.index_of_addr(addr) else { continue };
        for insn in insns.iter_from(start_idx).take_while(|i| i.addr < end) {
            iterations += 1;
            if iterations > budget {
                return heights;
            }
            match heights.get(&insn.addr) {
                Some(&prev) if prev.abs() <= h.abs() => break, // already joined better
                _ => {}
            }
            heights.insert(insn.addr, h);
            let Some(window) = p.parsed.code.bytes_at(insn.addr, insn.len as usize) else {
                break;
            };
            h += stack_delta(window, insn.len as usize, mode);
            if matches!(insn.kind, InsnKind::Leave) {
                // `leave` restores RSP from RBP: the whole frame unwinds,
                // not one word — reset to the entry height.
                h = 0;
            }
            match insn.kind {
                InsnKind::Jcc { target } if target >= begin && target < end => {
                    worklist.push((target, h));
                }
                InsnKind::JmpRel { target } => {
                    if target >= begin && target < end && !heights.contains_key(&target) {
                        worklist.push((target, h));
                    }
                    break;
                }
                k if k.is_terminator() || matches!(k, InsnKind::Ret) => break,
                _ => {}
            }
        }
    }
    heights
}

/// Net RSP/ESP delta of one instruction (negated push depth: push = −8).
fn stack_delta(bytes: &[u8], len: usize, mode: Mode) -> i64 {
    let word = match mode {
        Mode::Bits64 => 8,
        Mode::Bits32 => 4,
    };
    let b = &bytes[..len.min(bytes.len())];
    let (op, rest) = match b.split_first() {
        Some((&rex, rest)) if mode == Mode::Bits64 && (0x40..=0x4f).contains(&rex) => {
            match rest.split_first() {
                Some((&op, rest2)) => (op, rest2),
                None => return 0,
            }
        }
        Some((&op, rest)) => (op, rest),
        None => return 0,
    };
    match op {
        0x50..=0x57 => -word, // push reg
        0x58..=0x5f => word,  // pop reg
        0x68 | 0x6a => -word, // push imm
        0xc9 => word,         // leave (frees the frame)
        0x83 => match rest.first() {
            Some(0xec) => -i64::from(*rest.get(1).unwrap_or(&0)), // sub esp, imm8
            Some(0xc4) => i64::from(*rest.get(1).unwrap_or(&0)),  // add esp, imm8
            _ => 0,
        },
        0x81 => match rest.first() {
            Some(0xec) => -i64::from(u32::from_le_bytes(
                rest.get(1..5).map(|s| s.try_into().unwrap()).unwrap_or([0; 4]),
            )),
            Some(0xc4) => i64::from(u32::from_le_bytes(
                rest.get(1..5).map(|s| s.try_into().unwrap()).unwrap_or([0; 4]),
            )),
            _ => 0,
        },
        _ => 0,
    }
}

/// Calling-convention probe: decode the candidate head and require valid,
/// non-trapping code while scanning which registers are touched before
/// the first transfer — FETCH's argument-register plausibility test.
fn probe_function_head(p: &Prepared<'_>, addr: u64) -> bool {
    let mode = p.parsed.mode();
    let mut a = addr;
    let mut reads = 0u32;
    for _ in 0..8 {
        let Some(window) = window_at(p, a, 16) else {
            // Walked off the end of the region: fine. Started outside the
            // code in the first place: not a function head.
            return a > addr;
        };
        match decode(window, a, mode) {
            Ok(insn) => {
                // Count ModRM register traffic as a cheap liveness proxy.
                if insn.len >= 2 {
                    reads += u32::from(window[1] & 0x07) + u32::from((window[1] >> 3) & 0x07);
                }
                if matches!(insn.kind, InsnKind::Int3 | InsnKind::Ud2 | InsnKind::Hlt) {
                    return false;
                }
                if insn.kind.is_terminator() || matches!(insn.kind, InsnKind::Ret) {
                    return true;
                }
                a = insn.end();
            }
            Err(_) => return false,
        }
    }
    // Any register traffic at all passes; unreachable heads of zeros fail.
    reads > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{
        compile, BuildConfig, Compiler, FunctionSpec, Lang, OptLevel, ProgramSpec,
    };

    fn demo_spec() -> ProgramSpec {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1];
        let helper = FunctionSpec::named("helper");
        ProgramSpec { name: "fetchdemo".into(), lang: Lang::C, functions: vec![main, helper] }
    }

    #[test]
    fn finds_fde_functions_on_gcc_binaries() {
        let cfg = BuildConfig {
            compiler: Compiler::Gcc,
            arch: funseeker_corpus::Arch::X64,
            opt: OptLevel::O2,
            pie: true,
        };
        let bin = compile(&demo_spec(), cfg, 1);
        let found = FetchLike.identify(&bin.bytes).unwrap();
        // GCC emits an FDE for everything → perfect recall here.
        for f in bin.truth.eval_entries() {
            assert!(found.contains(&f), "missing {f:#x}");
        }
    }

    #[test]
    fn collapses_on_clang_x86_c_binaries() {
        let cfg = BuildConfig {
            compiler: Compiler::Clang,
            arch: funseeker_corpus::Arch::X86,
            opt: OptLevel::O2,
            pie: false,
        };
        let bin = compile(&demo_spec(), cfg, 2);
        let found = FetchLike.identify(&bin.bytes).unwrap();
        // No FDEs → nothing to report (the paper's key failure mode).
        assert!(found.is_empty(), "found {found:?}");
    }

    #[test]
    fn finds_tail_called_functions_behind_fde_boundaries() {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1, 2];
        let mut a = FunctionSpec::named("alpha");
        a.tail_call = Some(3);
        let mut b = FunctionSpec::named("beta");
        b.tail_call = Some(3);
        let mut t = FunctionSpec::named("tail_target");
        t.linkage = funseeker_corpus::Linkage::Static;
        let spec =
            ProgramSpec { name: "tails".into(), lang: Lang::C, functions: vec![main, a, b, t] };
        let cfg = BuildConfig {
            compiler: Compiler::Gcc,
            arch: funseeker_corpus::Arch::X64,
            opt: OptLevel::O2,
            pie: true,
        };
        let bin = compile(&spec, cfg, 7);
        let found = FetchLike.identify(&bin.bytes).unwrap();
        let target = bin.truth.functions.iter().find(|f| f.name == "tail_target").unwrap();
        assert!(found.contains(&target.addr), "tail target missed");
    }

    #[test]
    fn stack_delta_basics() {
        assert_eq!(stack_delta(&[0x55], 1, Mode::Bits64), -8); // push rbp
        assert_eq!(stack_delta(&[0x55], 1, Mode::Bits32), -4);
        assert_eq!(stack_delta(&[0x5d], 1, Mode::Bits64), 8); // pop rbp
        assert_eq!(stack_delta(&[0x48, 0x83, 0xec, 0x20], 4, Mode::Bits64), -0x20);
        assert_eq!(stack_delta(&[0x48, 0x83, 0xc4, 0x18], 4, Mode::Bits64), 0x18);
        assert_eq!(stack_delta(&[0xc9], 1, Mode::Bits64), 8); // leave
        assert_eq!(stack_delta(&[0x90], 1, Mode::Bits64), 0);
        assert_eq!(stack_delta(&[0x81, 0xec, 0x00, 0x01, 0x00, 0x00], 6, Mode::Bits32), -0x100);
    }
}
