//! The strawman: every end-branch instruction is a function.
//!
//! This is the hypothesis §III of the paper sets out to test — and
//! refutes: end-branches also mark `setjmp` return points and exception
//! landing pads, and ~11% of functions have no end-branch at all. The
//! identifier exists for the ablation benches and as the motivating
//! lower bound.

use funseeker::Prepared;

use crate::common::FunctionIdentifier;

/// The all-endbrs-are-functions strawman.
#[derive(Debug, Clone, Default)]
pub struct NaiveEndbr;

impl FunctionIdentifier for NaiveEndbr {
    fn name(&self) -> &'static str {
        "Naive-ENDBR"
    }

    fn identify_prepared(
        &self,
        prepared: &Prepared<'_>,
    ) -> Result<funseeker::FuncSet, funseeker::Error> {
        Ok(prepared.index.endbrs.iter().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{
        compile, BuildConfig, Compiler, FunctionSpec, Lang, Linkage, OptLevel, ProgramSpec,
    };

    #[test]
    fn finds_endbr_functions_and_misses_statics() {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1];
        let mut s = FunctionSpec::named("quiet");
        s.linkage = Linkage::Static;
        let spec = ProgramSpec { name: "naive".into(), lang: Lang::C, functions: vec![main, s] };
        let cfg = BuildConfig {
            compiler: Compiler::Gcc,
            arch: funseeker_corpus::Arch::X64,
            opt: OptLevel::O2,
            pie: true,
        };
        let bin = compile(&spec, cfg, 9);
        let found = NaiveEndbr.identify(&bin.bytes).unwrap();
        let by_name = |n: &str| bin.truth.functions.iter().find(|f| f.name == n).unwrap();
        assert!(found.contains(&by_name("main").addr));
        assert!(!found.contains(&by_name("quiet").addr), "statics lack endbr");
    }
}
