//! IDA-like identifier: recursive descent from the entry point plus
//! FLIRT-style prologue signatures.
//!
//! Models what the paper reports about IDA Pro 7.6 (§V-A2, §V-C):
//! "proprietary heuristics as well as FLIRT, a signature-based function
//! identification approach", combining call-graph traversal with
//! compiler-specific pattern matching. Its dominant failure mode in the
//! study — 96% of its false negatives — is *indirect branch targets*:
//! functions only ever reached through pointers, which no call edge or
//! signature reaches. This reimplementation inherits that blindness by
//! construction: it never looks at end-branch instructions.

use std::collections::BTreeSet;

use funseeker::Prepared;
use funseeker_disasm::{decode, InsnKind};

use crate::common::{has_frame_prologue, window_at, FunctionIdentifier};

/// The IDA-style identifier.
#[derive(Debug, Clone, Default)]
pub struct IdaLike;

impl FunctionIdentifier for IdaLike {
    fn name(&self) -> &'static str {
        "IDA Pro"
    }

    fn identify_prepared(&self, p: &Prepared<'_>) -> Result<funseeker::FuncSet, funseeker::Error> {
        let insns = &p.index.insns;

        // Seed: entry point, the start-routine's main argument, and
        // every direct call target. (IDA defines code throughout the
        // executable sections and creates a function at every resolved
        // call destination; on compiler output that coincides with the
        // shared sweep's call targets.)
        let mut functions: BTreeSet<u64> = BTreeSet::new();
        if p.parsed.in_code(p.parsed.entry) {
            functions.insert(p.parsed.entry);
            // IDA's start-routine heuristic: `_start` passes `main` to
            // `__libc_start_main` by address (lea/mov immediately before
            // the call); IDA resolves that argument and creates `main`.
            functions.extend(scan_start_args(p));
        }
        functions.extend(p.index.call_targets.iter().copied());

        // Tail-jump heuristic: a direct jump that leaves its function and
        // lands after a code break is treated as a function. This is the
        // behavior that makes the real tool report `.cold`/`.part`
        // fragments as functions (a false-positive class the paper
        // observes for every compared tool).
        let sorted: Vec<u64> = functions.iter().copied().collect();
        let interval = |addr: u64| sorted.partition_point(|&s| s <= addr);
        for &(site, target) in &p.index.jmp_edges {
            if !functions.contains(&target)
                && interval(site) != interval(target)
                && starts_after_break(p, target)
            {
                functions.insert(target);
            }
        }

        // FLIRT-ish signature pass: classic frame prologues in unexplored
        // space become functions. (The real FLIRT matches library
        // signatures; frame prologues are the universal subset.) The
        // candidate filter runs on the packed tag array — one byte per
        // instruction.
        for idx in insns.push_reg_indices(5) {
            let addr = insns.addr_at(idx);
            if has_frame_prologue(p, addr) && starts_after_break(p, addr) {
                functions.insert(addr);
            }
        }

        Ok(functions.into_iter().collect())
    }
}

/// Resolves code addresses `_start` materializes into argument registers
/// before calling into libc — the `__libc_start_main(main, …)` idiom.
/// Scans only the entry routine's first instructions, so pointer-taking
/// anywhere else stays invisible (matching the tool's real blindness).
fn scan_start_args(p: &Prepared<'_>) -> Vec<u64> {
    let mode = p.parsed.mode();
    let mut out = Vec::new();
    let mut addr = p.parsed.entry;
    for _ in 0..12 {
        let Some(w) = window_at(p, addr, 16) else { break };
        let Ok(insn) = decode(w, addr, mode) else { break };
        match mode {
            funseeker_disasm::Mode::Bits64 => {
                // lea r64, [rip+disp32]: 48/4C 8D /r with mod=00, rm=101.
                if insn.len == 7
                    && (w[0] == 0x48 || w[0] == 0x4c)
                    && w[1] == 0x8d
                    && w[2] & 0xc7 == 0x05
                {
                    let disp = i32::from_le_bytes(w[3..7].try_into().unwrap());
                    let target = insn.end().wrapping_add(disp as i64 as u64);
                    if p.parsed.in_code(target) {
                        out.push(target);
                    }
                }
            }
            funseeker_disasm::Mode::Bits32 => {
                // mov r32, imm32 (B8+r) holding a code address.
                if insn.len == 5 && (0xb8..=0xbf).contains(&w[0]) {
                    let imm = u32::from_le_bytes(w[1..5].try_into().unwrap());
                    if p.parsed.in_code(u64::from(imm)) {
                        out.push(u64::from(imm));
                    }
                }
            }
        }
        if insn.kind.is_terminator() || matches!(insn.kind, InsnKind::Ret) {
            break;
        }
        addr = insn.end();
    }
    out
}

/// A signature hit counts only right after padding or a no-fallthrough
/// instruction — mirroring how IDA seeds "sig found" functions in gaps.
/// The first byte of any code region always qualifies.
fn starts_after_break(p: &Prepared<'_>, addr: u64) -> bool {
    if p.parsed.code.is_region_start(addr) {
        return true;
    }
    let insns = &p.index.insns;
    let idx = insns.partition_point_addr(addr);
    if idx == 0 {
        return true;
    }
    let prev = insns.get(idx - 1);
    prev.end() == addr
        && matches!(
            prev.kind,
            InsnKind::Ret
                | InsnKind::JmpRel { .. }
                | InsnKind::JmpInd { .. }
                | InsnKind::Nop
                | InsnKind::Int3
                | InsnKind::Hlt
                | InsnKind::Ud2
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{
        compile, BuildConfig, Compiler, FunctionSpec, Lang, Linkage, OptLevel, ProgramSpec,
    };

    fn spec() -> ProgramSpec {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1];
        let called = FunctionSpec::named("called_fn");
        let mut taken = FunctionSpec::named("only_by_pointer");
        taken.linkage = Linkage::Static;
        taken.address_taken = true;
        ProgramSpec { name: "idademo".into(), lang: Lang::C, functions: vec![main, called, taken] }
    }

    fn cfg(opt: OptLevel) -> BuildConfig {
        BuildConfig { compiler: Compiler::Gcc, arch: funseeker_corpus::Arch::X64, opt, pie: false }
    }

    #[test]
    fn finds_call_graph_reachable_functions() {
        let bin = compile(&spec(), cfg(OptLevel::O0), 3);
        let found = IdaLike.identify(&bin.bytes).unwrap();
        let by_name = |n: &str| bin.truth.functions.iter().find(|f| f.name == n).unwrap().addr;
        assert!(found.contains(&by_name("_start")));
        assert!(found.contains(&by_name("called_fn")), "direct call target");
        assert!(found.contains(&by_name("main")), "frame prologue at O0");
    }

    #[test]
    fn misses_indirect_only_targets_at_high_opt() {
        // At O2 there is no frame prologue, so a function reached only
        // through a pointer is invisible — the paper's 96% FN class.
        let bin = compile(&spec(), cfg(OptLevel::O2), 4);
        let found = IdaLike.identify(&bin.bytes).unwrap();
        let taken = bin.truth.functions.iter().find(|f| f.name == "only_by_pointer").unwrap();
        assert!(!found.contains(&taken.addr), "IDA-like must not see pointer-only functions at O2");
    }
}
