//! Reimplementations of the comparison tools' function-identification
//! strategies (Table III of the paper).
//!
//! The paper compares FunSeeker against IDA Pro 7.6, Ghidra 10.0.4 and
//! FETCH. The closed-source tools cannot be shipped here, so this crate
//! reimplements the *information source* each one relies on, faithfully
//! enough that the failure modes the paper reports reproduce
//! structurally:
//!
//! | Identifier | Oracle | Reproduced failure mode |
//! |---|---|---|
//! | [`FetchLike`] | FDE `pc_begin` + stack-height tail calls | no FDEs (Clang x86 C) → recall collapse; `.part` FDEs → FPs |
//! | [`GhidraLike`] | FDEs + call graph + prologues | same x86 weakness; fragments as functions |
//! | [`IdaLike`] | recursive descent + signatures | blind to indirect-only targets (96% of its FNs) |
//! | [`NaiveEndbr`] | every end-branch | landing pads / setjmp returns as FPs, statics missed |
//!
//! None of the baselines looks at end-branch instructions as a function
//! signal — the gap FunSeeker exploits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
mod fetch;
mod ghidra;
mod ida;
mod naive;

pub use common::FunctionIdentifier;
pub use fetch::FetchLike;
pub use ghidra::GhidraLike;
pub use ida::IdaLike;
pub use naive::NaiveEndbr;

use funseeker::FuncSet;

/// FunSeeker wrapped in the common [`FunctionIdentifier`] interface.
#[derive(Debug, Clone, Default)]
pub struct FunSeekerTool(funseeker::FunSeeker);

impl FunSeekerTool {
    /// Full configuration ④.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FunctionIdentifier for FunSeekerTool {
    fn name(&self) -> &'static str {
        "FunSeeker"
    }

    fn identify_prepared(
        &self,
        prepared: &funseeker::Prepared<'_>,
    ) -> Result<FuncSet, funseeker::Error> {
        Ok(self.0.identify_prepared(prepared).functions)
    }
}

/// All identifiers in the Table III comparison, FunSeeker first.
pub fn all_tools() -> Vec<Box<dyn FunctionIdentifier>> {
    vec![
        Box::new(FunSeekerTool::new()),
        Box::new(IdaLike),
        Box::new(GhidraLike),
        Box::new(FetchLike),
    ]
}
