//! Ghidra-like identifier: `.eh_frame` seeds + recursive call traversal
//! + frame-prologue pattern scan.
//!
//! Models what the paper reports about Ghidra 10.0.4 (§V-A2, §V-C): it
//! "aggressively utilizes `.eh_frame` information to recognize function
//! entries", combines that with call-graph traversal and
//! compiler-specific patterns, and its recall drops on x86 binaries
//! without FDE records. It also creates functions at cross-function
//! direct-jump targets, which turns `.cold`/`.part` fragments into false
//! positives.

use std::collections::BTreeSet;

use funseeker::Prepared;
use funseeker_disasm::InsnKind;

use crate::common::{fde_begins_in_code, has_frame_prologue, FunctionIdentifier};

/// The Ghidra-style identifier.
#[derive(Debug, Clone, Default)]
pub struct GhidraLike;

impl FunctionIdentifier for GhidraLike {
    fn name(&self) -> &'static str {
        "Ghidra"
    }

    fn identify_prepared(&self, p: &Prepared<'_>) -> Result<funseeker::FuncSet, funseeker::Error> {
        // Seed set: the entry point and every FDE begin.
        let mut functions: BTreeSet<u64> = fde_begins_in_code(p).collect();
        if p.parsed.in_code(p.parsed.entry) {
            functions.insert(p.parsed.entry);
        }

        // Call-graph expansion (linear approximation of Ghidra's
        // recursive disassembly: compiler code is exactly the linear
        // sweep, so the reachable call targets coincide with the shared
        // sweep's).
        functions.extend(p.index.call_targets.iter().copied());

        // Cross-function direct-jump targets become functions too (this
        // is what makes Ghidra report fragments as functions).
        let sorted: Vec<u64> = functions.iter().copied().collect();
        let interval = |addr: u64| -> usize { sorted.partition_point(|&s| s <= addr) };
        for &(site, target) in &p.index.jmp_edges {
            if !functions.contains(&target) && interval(site) != interval(target) {
                functions.insert(target);
            }
        }

        // Pattern pass: classic frame prologues in the gaps (Ghidra's
        // "function start patterns" analyzer). The candidate filter runs
        // on the packed tag array — one byte per instruction — instead of
        // materializing every instruction.
        for idx in p.index.insns.push_reg_indices(5) {
            let addr = p.index.insns.addr_at(idx);
            if has_frame_prologue(p, addr) && is_gap_start(p, addr) {
                functions.insert(addr);
            }
        }

        Ok(functions.into_iter().collect())
    }
}

/// A prologue only starts a function when it sits at a plausible start:
/// preceded by padding, a return, or an unconditional transfer. Region
/// starts always qualify.
fn is_gap_start(p: &Prepared<'_>, addr: u64) -> bool {
    if p.parsed.code.is_region_start(addr) {
        return true;
    }
    let insns = &p.index.insns;
    let idx = insns.partition_point_addr(addr);
    if idx == 0 {
        return true;
    }
    let prev = insns.get(idx - 1);
    if prev.end() != addr {
        return false;
    }
    matches!(
        prev.kind,
        InsnKind::Ret
            | InsnKind::JmpRel { .. }
            | InsnKind::JmpInd { .. }
            | InsnKind::Nop
            | InsnKind::Int3
            | InsnKind::Hlt
            | InsnKind::Ud2
            | InsnKind::CallRel { .. } // call to noreturn then next function
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{
        compile, BuildConfig, Compiler, FunctionSpec, Lang, Linkage, OptLevel, ProgramSpec,
    };

    fn spec_with_static() -> ProgramSpec {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1];
        let mut s = FunctionSpec::named("quiet");
        s.linkage = Linkage::Static;
        ProgramSpec { name: "ghidrademo".into(), lang: Lang::C, functions: vec![main, s] }
    }

    #[test]
    fn high_recall_with_fdes() {
        let cfg = BuildConfig {
            compiler: Compiler::Gcc,
            arch: funseeker_corpus::Arch::X64,
            opt: OptLevel::O1,
            pie: false,
        };
        let bin = compile(&spec_with_static(), cfg, 5);
        let found = GhidraLike.identify(&bin.bytes).unwrap();
        for f in bin.truth.eval_entries() {
            assert!(found.contains(&f), "missing {f:#x}");
        }
    }

    #[test]
    fn degrades_without_fdes_but_keeps_called_functions() {
        let cfg = BuildConfig {
            compiler: Compiler::Clang,
            arch: funseeker_corpus::Arch::X86,
            opt: OptLevel::O2,
            pie: false,
        };
        let bin = compile(&spec_with_static(), cfg, 6);
        let found = GhidraLike.identify(&bin.bytes).unwrap();
        // The statically-called helper is still discovered through the
        // call graph even with no FDE records.
        let truth = bin.truth.eval_entries();
        let quiet = bin.truth.functions.iter().find(|f| f.name == "quiet").unwrap().addr;
        assert!(found.contains(&quiet));
        // But not everything is found (main is only referenced by lea).
        assert!(found.len() < truth.len() + 4);
    }
}
