//! Best-effort CPU affinity via raw Linux syscalls.
//!
//! Pinning each worker to its own core keeps a morsel's cache-warm
//! state (decode tables, scratch buffers, the morsel bytes themselves)
//! on the core that touched it, and stops the scheduler from stacking
//! two sweep workers on one hyperthread while others idle. The calls go
//! straight to the kernel via `syscall` — the workspace has no libc
//! dependency and is not getting one for two syscalls.
//!
//! Everything here is *best effort*: on non-Linux / non-x86_64 targets
//! the functions are no-ops, and a failed syscall (container cpuset
//! changes, seccomp) simply leaves the thread unpinned. Correctness
//! never depends on placement — only locality does.

/// Masks cover 1024 CPUs (16 × 64-bit words), matching glibc's
/// `cpu_set_t` default.
const MASK_WORDS: usize = 16;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::MASK_WORDS;

    /// x86_64 syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
    const SYS_SCHED_SETAFFINITY: u64 = 203;
    const SYS_SCHED_GETAFFINITY: u64 = 204;

    /// Raw three-argument syscall for the two affinity calls. Both take
    /// `(pid, cpusetsize, mask_ptr)`; pid 0 means the calling thread.
    ///
    /// Returns the kernel's raw result: negative errno on failure, and
    /// for `sched_getaffinity` the number of mask bytes written on
    /// success.
    fn affinity_syscall(nr: u64, mask: *mut u64) -> i64 {
        let ret: i64;
        // SAFETY: `syscall` with a valid, writable `MASK_WORDS`-word
        // buffer and pid 0 (the calling thread). Both syscalls only
        // read/write within `cpusetsize` bytes of the pointer and touch
        // no other memory. rcx/r11 are clobbered by the `syscall`
        // instruction itself.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") 0u64,                    // pid 0 = current thread
                in("rsi") MASK_WORDS * 8,          // cpusetsize in bytes
                in("rdx") mask,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// CPUs the current thread may run on, in ascending order. Empty on
    /// syscall failure.
    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        let ret = affinity_syscall(SYS_SCHED_GETAFFINITY, mask.as_mut_ptr());
        if ret <= 0 {
            return Vec::new();
        }
        let words = (ret as usize / 8).min(MASK_WORDS);
        let mut cpus = Vec::new();
        for (w, &bits) in mask[..words].iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                cpus.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        cpus
    }

    /// Pins the calling thread to `cpu`. Returns whether the kernel
    /// accepted the mask.
    pub fn pin_to_cpu(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        affinity_syscall(SYS_SCHED_SETAFFINITY, mask.as_mut_ptr()) == 0
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    /// Unsupported target: report no known CPUs so callers skip pinning.
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    /// Unsupported target: pinning is a no-op that reports failure.
    pub fn pin_to_cpu(_cpu: usize) -> bool {
        false
    }
}

pub use imp::{allowed_cpus, pin_to_cpu};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_cpus_is_sane() {
        // On the supported target the calling thread must be allowed on
        // at least one CPU; elsewhere the stub returns empty.
        let cpus = allowed_cpus();
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(!cpus.is_empty(), "current thread runs on some CPU");
            assert!(cpus.windows(2).all(|w| w[0] < w[1]), "ascending, no duplicates");
        } else {
            assert!(cpus.is_empty());
        }
    }

    #[test]
    fn pin_to_allowed_cpu_succeeds_and_round_trips() {
        let cpus = allowed_cpus();
        let Some(&cpu) = cpus.first() else { return };
        // Pin from a scratch thread so the test runner's thread keeps
        // its original mask.
        let ok = std::thread::spawn(move || {
            if !pin_to_cpu(cpu) {
                return false;
            }
            allowed_cpus() == vec![cpu]
        })
        .join()
        .expect("pin thread");
        assert!(ok, "pinning to an allowed CPU must stick");
    }

    #[test]
    fn pin_out_of_range_fails() {
        assert!(!pin_to_cpu(super::MASK_WORDS * 64));
    }
}
