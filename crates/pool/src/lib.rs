//! A persistent, lazily-initialized worker pool for scoped parallel
//! batches.
//!
//! `std::thread::scope` spawns and joins OS threads on every call, which
//! the sharded sweep pays once per code region per binary — a real cost
//! at corpus scale (thread creation is tens of microseconds; a shard
//! decodes in a few hundred). [`global()`] instead spawns one set of
//! workers on first use and reuses them for every batch: the sweep's
//! shards, the evaluation runner's per-binary fan-out, anything else.
//!
//! # Design
//!
//! One shared injector queue (mutex + condvar) feeds the workers. Tasks
//! are batch-granular: [`Pool::run`] enqueues all closures of a batch,
//! then the *submitting thread helps drain the queue* until its batch
//! completes. Help-execution has two consequences:
//!
//! * **No deadlocks under nesting.** A task may itself call
//!   [`Pool::run`] (the eval runner maps over binaries, and each binary's
//!   sweep shards inside). The inner caller executes queued tasks while
//!   waiting, so progress never depends on a free worker.
//! * **Graceful degradation to sequential.** On a single-core host the
//!   submitter simply runs its own shards back to back — no spawn, no
//!   context switch, just the stitch bookkeeping.
//!
//! Work distribution is task-stealing at batch granularity: any worker
//! (or helping submitter) takes the oldest queued task, so a long task
//! occupies one thread while the rest drain the remainder.
//!
//! # Dynamic batches: [`Pool::scope`]
//!
//! [`Pool::run`] takes the whole batch up front. Pipelined workloads —
//! the batch analysis engine decomposes each binary into parse → sweep
//! → analyze stages, where each stage task enqueues the next on
//! completion — need to *add* tasks while the batch is in flight.
//! [`Pool::scope`] provides that: the closure receives a [`Scope`]
//! whose [`Scope::spawn`] may be called from the closure *and from
//! inside spawned tasks*, and `scope` only returns once every
//! transitively spawned task has finished.
//!
//! # Sizing and placement
//!
//! The global pool's width defaults to `available_parallelism()` and
//! can be forced with the `FUNSEEKER_CORES` environment variable (or
//! programmatically with [`configure_global`], which the `--cores N`
//! CLI flags use). Explicit pools come from [`Pool::with_workers`].
//! On Linux/x86_64 each worker of a multi-worker pool is pinned
//! round-robin over the thread's allowed CPUs via a raw
//! `sched_setaffinity` syscall (see [`affinity`]); `FUNSEEKER_PIN=0`
//! disables pinning, `FUNSEEKER_PIN=1` forces it even for explicit
//! pools. Per-worker executed-task counters and the submitter
//! help-execution counter are exposed through [`Pool::counters`] so
//! bench reports can show how work actually spread.
//!
//! # Safety
//!
//! This crate contains all of the workspace's `unsafe` code: the
//! lifetime erasure that lets borrowed closures
//! (`FnOnce() -> T + Send + 'env`) ride on `'static` worker threads,
//! and the two raw affinity syscalls in [`affinity`]. Soundness of the
//! erasure is the scoped-thread argument: [`Pool::run`] /
//! [`Pool::scope`] do not return before every task of their batch has
//! finished executing, so no borrow is observable after it would
//! dangle. See the safety comments at the `unsafe` sites.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// A type- and lifetime-erased unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, ignoring poisoning.
///
/// Tasks run wrapped in `catch_unwind`, so a panic can never unwind
/// through a held pool lock; poisoning would only indicate a panic in
/// the pool's own bookkeeping, where continuing is still sound (all
/// state transitions are single assignments).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Injector {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

/// A persistent worker pool executing scoped batches of closures.
pub struct Pool {
    injector: Arc<Injector>,
    workers: usize,
    /// Tasks executed by each worker thread (index = worker id).
    executed: Arc<Vec<AtomicU64>>,
    /// Tasks executed by helping submitters (any thread inside
    /// `run`/`scope`), i.e. work that never reached a worker.
    helped: AtomicU64,
    /// Workers that successfully pinned themselves to a CPU.
    pinned: Arc<AtomicUsize>,
    /// One-byte caller-owned probe cache; see [`Pool::probe_cache`].
    probe_cache: AtomicU8,
}

/// A point-in-time snapshot of how a pool's work was distributed; see
/// [`Pool::counters`].
#[derive(Debug, Clone)]
pub struct PoolCounters {
    /// Tasks executed by each worker thread, in worker order. Uneven
    /// numbers under a steady load mean stealing is doing real
    /// balancing; a zero row means that worker never won a task.
    pub per_worker: Vec<u64>,
    /// Tasks executed by submitting threads helping drain the queue.
    pub helped: u64,
    /// Workers that successfully pinned themselves to a CPU.
    pub pinned: usize,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, spawned on first use. Width is
/// `FUNSEEKER_CORES` if set (parseable, ≥ 1), else
/// `available_parallelism()`; pinning follows the `FUNSEEKER_PIN`
/// policy described at the crate root.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_workers(), None))
}

/// Fixes the global pool's width *before first use*. Returns `false`
/// if the pool was already spawned (by an earlier [`global`] call or
/// another `configure_global`), in which case the existing width wins —
/// worker threads are detached and cannot be resized. `--cores N`
/// flags call this first thing.
pub fn configure_global(workers: usize) -> bool {
    let mut initialized = false;
    let pool = GLOBAL.get_or_init(|| {
        initialized = true;
        Pool::new(workers.max(1), None)
    });
    initialized && pool.workers() == workers.max(1)
}

/// The global pool's default width: `FUNSEEKER_CORES` if valid, else
/// `available_parallelism()`.
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("FUNSEEKER_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Whether a pool of `workers` threads should pin them, per
/// `FUNSEEKER_PIN`: `0` never, `1` always, unset = only multi-worker
/// pools (pinning a 1-worker pool just fights the scheduler).
fn should_pin(workers: usize) -> bool {
    match std::env::var("FUNSEEKER_PIN").ok().as_deref().map(str::trim) {
        Some("0") => false,
        Some("1") => true,
        _ => workers > 1,
    }
}

/// Completion state of one batch.
struct BatchState<T> {
    results: Vec<Option<T>>,
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch<T> {
    state: Mutex<BatchState<T>>,
    done: Condvar,
}

impl Pool {
    /// Spawns an explicit pool with `workers` detached worker threads,
    /// independent of the [`global`] pool (separate queue, separate
    /// threads). Pinning follows the `FUNSEEKER_PIN` policy unless
    /// `pin` overrides it.
    ///
    /// Worker threads are detached and live for the rest of the
    /// process; create long-lived pools (benches, per-width probes,
    /// test fixtures reused across cases), not one per call site.
    pub fn with_workers(workers: usize) -> Pool {
        Pool::new(workers.max(1), None)
    }

    /// Spawns a pool with `workers` threads, pinning each one to a CPU
    /// (round-robin over the spawning thread's allowed set) when `pin`
    /// is true.
    pub fn with_workers_pinned(workers: usize, pin: bool) -> Pool {
        Pool::new(workers.max(1), Some(pin))
    }

    /// Spawns a pool with `workers` detached worker threads. `pin`
    /// overrides the `FUNSEEKER_PIN` policy when `Some`.
    fn new(workers: usize, pin: Option<bool>) -> Pool {
        let injector =
            Arc::new(Injector { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });
        let executed: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let pinned = Arc::new(AtomicUsize::new(0));
        let pin = pin.unwrap_or_else(|| should_pin(workers));
        let cpus = if pin { affinity::allowed_cpus() } else { Vec::new() };
        for i in 0..workers {
            let inj = Arc::clone(&injector);
            let counts = Arc::clone(&executed);
            let pinned = Arc::clone(&pinned);
            // Round-robin placement: worker i gets allowed CPU i mod n,
            // so a pool wider than the cpuset wraps instead of failing.
            let cpu = (!cpus.is_empty()).then(|| cpus[i % cpus.len()]);
            std::thread::Builder::new()
                .name("funseeker-pool".into())
                .spawn(move || {
                    if let Some(cpu) = cpu {
                        if affinity::pin_to_cpu(cpu) {
                            pinned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    worker_loop(&inj, &counts[i]);
                })
                .expect("spawn pool worker");
        }
        Pool {
            injector,
            workers,
            executed,
            helped: AtomicU64::new(0),
            pinned,
            probe_cache: AtomicU8::new(u8::MAX),
        }
    }

    /// Number of worker threads (excluding helping submitters).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A one-byte scratch slot callers may use to cache a per-pool
    /// hardware probe (`u8::MAX` = unset, by convention a first-writer-
    /// wins slot). The pool attaches no meaning to the value; the disasm
    /// crate stores its resolved kernel tier here so every sweep morsel
    /// dispatched through this pool shares one CPUID probe instead of
    /// re-reading a process-global.
    pub fn probe_cache(&self) -> &AtomicU8 {
        &self.probe_cache
    }

    /// Snapshot of the work-distribution counters (relaxed reads; exact
    /// only once the pool is quiescent).
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            per_worker: self.executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            helped: self.helped.load(Ordering::Relaxed),
            pinned: self.pinned.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of closures, returning their results in submission
    /// order. Blocks until the whole batch has completed; the calling
    /// thread helps execute queued tasks while it waits.
    ///
    /// If any task panics, the panic is resumed on the calling thread
    /// after the rest of the batch has drained.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A one-task batch gains nothing from the queue.
            return tasks.into_iter().map(|f| f()).collect();
        }

        let batch: Arc<Batch<T>> = Arc::new(Batch {
            state: Mutex::new(BatchState {
                results: (0..n).map(|_| None).collect(),
                pending: n,
                panic: None,
            }),
            done: Condvar::new(),
        });

        {
            let mut q = lock(&self.injector.queue);
            q.reserve(n);
            for (i, f) in tasks.into_iter().enumerate() {
                let b = Arc::clone(&batch);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(f));
                    let mut st = lock(&b.state);
                    match out {
                        Ok(v) => st.results[i] = Some(v),
                        Err(p) => {
                            if st.panic.is_none() {
                                st.panic = Some(p);
                            }
                        }
                    }
                    st.pending -= 1;
                    if st.pending == 0 {
                        b.done.notify_all();
                    }
                });
                // SAFETY: the only unsafe in the workspace. We erase the
                // closure's `'env` lifetime to `'static` so it can sit in
                // the shared queue and run on a detached worker. This is
                // sound because this function does not return until the
                // batch's `pending` count reaches zero, and `pending`
                // only reaches zero after every job closure above has
                // *finished executing* (the decrement is the closure's
                // final action). Hence no erased borrow is ever used
                // after `'env` ends. Results (`T: Send + 'env`) are moved
                // out only below, still inside `'env`. This is the same
                // argument scoped threads (`std::thread::scope`,
                // crossbeam's scope) rely on.
                let job: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(job) };
                q.push_back(job);
            }
        }
        self.injector.available.notify_all();

        // Help drain the queue until this batch is complete. Running
        // another batch's task here is fine — it only advances global
        // progress — and is what makes nested `run` calls deadlock-free.
        loop {
            if lock(&batch.state).pending == 0 {
                break;
            }
            let task = lock(&self.injector.queue).pop_front();
            match task {
                Some(t) => {
                    self.helped.fetch_add(1, Ordering::Relaxed);
                    t()
                }
                None => {
                    // Queue empty: the remaining tasks of this batch are
                    // being executed by other threads. Wait for them.
                    let mut st = lock(&batch.state);
                    while st.pending != 0 {
                        st = batch.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    break;
                }
            }
        }

        let mut st = lock(&batch.state);
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
        let results = std::mem::take(&mut st.results);
        drop(st);
        results
            .into_iter()
            .map(|r| r.expect("pool task completed without storing a result"))
            .collect()
    }

    /// Runs a *dynamic* batch: `f` receives a [`Scope`] on which tasks
    /// can be spawned — from `f` itself and from inside already-running
    /// tasks, which is what lets a pipeline stage enqueue its successor.
    /// Blocks until every transitively spawned task has completed; the
    /// calling thread helps execute queued tasks while it waits.
    ///
    /// Spawned closures may borrow anything that outlives the `scope`
    /// call (`'env`), including the `Scope` itself. If a task (or `f`)
    /// panics, the panic is resumed on the calling thread after the rest
    /// of the scope has drained.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
            done: Condvar::new(),
        });
        let scope =
            Scope { pool: self, state: Arc::clone(&state), scope: PhantomData, env: PhantomData };

        // Run the body. Even if it panics, every already-spawned task
        // must finish before the panic unwinds past this frame — the
        // tasks borrow state owned by our caller.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Help drain the queue until the scope is empty. Tasks may keep
        // spawning successors; each successor is registered (`pending`
        // incremented) before its parent finishes, so `pending == 0`
        // really means the whole dependency tree has completed.
        loop {
            if lock(&state.sync).pending == 0 {
                break;
            }
            let task = lock(&self.injector.queue).pop_front();
            match task {
                Some(t) => {
                    self.helped.fetch_add(1, Ordering::Relaxed);
                    t()
                }
                None => {
                    // Queue empty: remaining scope tasks are running on
                    // other threads (and any tasks they spawn will be
                    // picked up by the workers). Wait for completion.
                    let mut st = lock(&state.sync);
                    while st.pending != 0 {
                        st = state.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    break;
                }
            }
        }

        let panic = lock(&state.sync).panic.take();
        match result {
            Err(p) => resume_unwind(p), // the body's own panic wins
            Ok(_) if panic.is_some() => resume_unwind(panic.expect("checked")),
            Ok(r) => r,
        }
    }
}

/// Completion state of one dynamic batch (see [`Pool::scope`]).
struct ScopeSync {
    /// Tasks spawned but not yet finished.
    pending: usize,
    /// First panic payload observed in any task.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

/// A handle for spawning tasks into a dynamic batch. Created by
/// [`Pool::scope`]; usable from the scope closure and from inside
/// spawned tasks (it is `Sync`, and tasks may capture `&Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope` (the `std::thread::scope` trick): tasks
    /// may borrow the `Scope` itself, so the lifetime must not be
    /// allowed to shrink or grow through variance.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope's batch. Returns immediately; the
    /// task runs on the pool (or on a helping submitter). May be called
    /// from inside another task of the same scope — that is the
    /// pipelining primitive: a completing stage spawns the next one.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        // Register before enqueueing: the count must never under-report
        // while a task of this scope is queued or running.
        lock(&self.state.sync).pending += 1;

        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(f));
            let mut st = lock(&state.sync);
            if let Err(p) = out {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.pending -= 1;
            if st.pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the same scoped-lifetime erasure as in `Pool::run`,
        // with the spawn-from-task wrinkle: `Pool::scope` does not
        // return before `pending` reaches zero, a task spawned from
        // another task increments `pending` before its parent's
        // decrement (the spawn happens while the parent is still
        // executing), and the decrement is each job's final action — so
        // `pending == 0` implies every job closure has finished
        // executing and no erased borrow (of `'env` data or of the
        // `'scope` `Scope` itself) is used after `scope` returns.
        let job: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(job) };
        let mut q = lock(&self.pool.injector.queue);
        q.push_back(job);
        drop(q);
        self.pool.injector.available.notify_one();
    }
}

fn worker_loop(inj: &Injector, executed: &AtomicU64) {
    loop {
        let task = {
            let mut q = lock(&inj.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = inj.available.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        executed.fetch_add(1, Ordering::Relaxed);
        // Panics are contained per-task by the submitting side's
        // `catch_unwind`; a worker thread never unwinds.
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_batch_in_order() {
        let data = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let out = global().run(data.iter().map(|&x| move || x * 2).collect());
        assert_eq!(out, vec![6, 2, 8, 2, 10, 18, 4, 12]);
    }

    #[test]
    fn borrows_local_data() {
        let text = String::from("scoped");
        let s: &str = &text;
        let out = global().run((0..4).map(|i| move || format!("{s}-{i}")).collect());
        assert_eq!(out, vec!["scoped-0", "scoped-1", "scoped-2", "scoped-3"]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = global().run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        let out = global().run(vec![|| 7u32]);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn nested_batches_complete() {
        // Outer batch larger than the worker count, each task running an
        // inner batch: requires help-execution to terminate on any pool
        // size (including a single worker).
        let outer = 2 * global().workers() + 2;
        let counter = AtomicUsize::new(0);
        let out = global().run(
            (0..outer)
                .map(|i| {
                    let counter = &counter;
                    move || {
                        let inner: usize =
                            global().run((0..4).map(|j| move || i * j).collect()).iter().sum();
                        counter.fetch_add(1, Ordering::Relaxed);
                        inner
                    }
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), outer);
        assert_eq!(out.len(), outer);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 6);
        }
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        global().scope(|s| {
            for _ in 0..64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_tasks_spawn_pipeline_stages() {
        // Three-stage pipeline over 20 items: each stage task spawns its
        // successor, the way the batch engine chains parse → sweep →
        // analyze. All 60 stage executions must complete before `scope`
        // returns.
        let stages = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        global().scope(|s| {
            for i in 0..20usize {
                let (stages, finished) = (&stages, &finished);
                s.spawn(move || {
                    stages.fetch_add(1, Ordering::Relaxed);
                    s.spawn(move || {
                        stages.fetch_add(1, Ordering::Relaxed);
                        s.spawn(move || {
                            stages.fetch_add(1, Ordering::Relaxed);
                            finished.fetch_add(i, Ordering::Relaxed);
                        });
                    });
                });
            }
        });
        assert_eq!(stages.load(Ordering::Relaxed), 60);
        assert_eq!(finished.load(Ordering::Relaxed), (0..20).sum::<usize>());
    }

    #[test]
    fn scope_borrows_local_data_and_returns_value() {
        let data = vec![1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        let label = global().scope(|s| {
            for &d in &data {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(d as usize, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(label, "done");
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_task_panic_propagates_after_drain() {
        let finished = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            global().scope(|s| {
                for i in 0..6 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 2 {
                            panic!("stage exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        }));
        assert!(res.is_err(), "task panic must propagate to the scope caller");
        assert_eq!(finished.load(Ordering::Relaxed), 5, "other tasks still ran");
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let out: u32 = global().scope(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn explicit_pool_width_and_counters() {
        // One long-lived explicit pool per width under test; workers are
        // detached, so pools must not be created per-case.
        static POOL4: OnceLock<Pool> = OnceLock::new();
        let pool = POOL4.get_or_init(|| Pool::with_workers(4));
        assert_eq!(pool.workers(), 4);
        let out = pool.run((0..32).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out.len(), 32);
        let c = pool.counters();
        assert_eq!(c.per_worker.len(), 4);
        let total: u64 = c.per_worker.iter().sum::<u64>() + c.helped;
        assert!(total >= 32, "all 32 tasks were counted somewhere, got {total}");
    }

    #[test]
    fn with_workers_clamps_to_one() {
        static POOL0: OnceLock<Pool> = OnceLock::new();
        let pool = POOL0.get_or_init(|| Pool::with_workers(0));
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![|| 5u8, || 6u8]), vec![5, 6]);
    }

    #[test]
    fn pinned_pool_reports_placement() {
        static PINNED: OnceLock<Pool> = OnceLock::new();
        let pool = PINNED.get_or_init(|| Pool::with_workers_pinned(2, true));
        let out = pool.run((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(out.iter().sum::<i32>(), 36);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            // Pinning happens as each worker thread starts, which races
            // this assertion (the helping submitter may have drained the
            // whole batch before the workers were even scheduled) — so
            // poll rather than read once.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while pool.counters().pinned < 2 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert_eq!(pool.counters().pinned, 2, "both workers pin on the supported target");
        } else {
            assert_eq!(pool.counters().pinned, 0);
        }
    }

    #[test]
    fn configure_global_after_first_use_is_refused() {
        let width = global().workers();
        // The pool above is already spawned, so reconfiguration to a
        // different width must report failure and change nothing.
        assert!(!configure_global(width + 1));
        assert_eq!(global().workers(), width);
    }

    #[test]
    fn panic_propagates_after_batch_drains() {
        let finished = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            global().run(
                (0..6)
                    .map(|i| {
                        let finished = &finished;
                        move || {
                            if i == 3 {
                                panic!("task 3 exploded");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(res.is_err(), "panic must propagate to the submitter");
        assert_eq!(finished.load(Ordering::Relaxed), 5, "other tasks still ran");
    }
}
