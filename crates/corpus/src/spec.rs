//! Program specifications — the "source code" the corpus compiler lowers.
//!
//! A [`ProgramSpec`] captures exactly the properties that drive CET
//! emission and function-identification behavior: linkage, address-taking,
//! call/tail-call structure, `setjmp` usage, switch dispatch, and C++
//! exception regions. Everything else about a real program is irrelevant
//! to the identifiers and is replaced by seeded filler code.

/// Source language of a translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// C — no exception tables.
    C,
    /// C++ — functions may carry try/catch regions.
    Cpp,
}

/// Function linkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Non-`static`: visible across translation units. Compilers insert
    /// an end-branch at the entry (§III-B1) because the address may
    /// escape before linking.
    External,
    /// `static`: end-branch only when the address is taken.
    Static,
}

/// One function to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Symbol name.
    pub name: String,
    /// Linkage class.
    pub linkage: Linkage,
    /// Whether the program takes this function's address (forces an
    /// end-branch even on statics).
    pub address_taken: bool,
    /// Never referenced by anything — dead code (§III-C's 0.01% and the
    /// dominant false-negative class in §V-C).
    pub dead: bool,
    /// Approximate number of filler instructions in the body.
    pub body_size: usize,
    /// Indices of directly called functions.
    pub calls: Vec<usize>,
    /// Index of a function this one tail-jumps to instead of returning.
    pub tail_call: Option<usize>,
    /// External functions called through the PLT.
    pub plt_calls: Vec<String>,
    /// Calls `setjmp` (an indirect-return function): the call site is
    /// followed by an end-branch (§III-B2).
    pub setjmp: bool,
    /// Contains a switch lowered to a `notrack jmp` + jump table, with
    /// this many cases (0 = no switch).
    pub switch_cases: usize,
    /// Number of C++ catch landing pads (0 = none). Only meaningful in
    /// [`Lang::Cpp`] units.
    pub landing_pads: usize,
    /// Models the 0.15% of non-static functions (compiler intrinsics)
    /// that lack an entry end-branch (§III footnote 1).
    pub no_endbr_intrinsic: bool,
    /// Whether the optimizer splits a `.cold`/`.part` fragment out of
    /// this function (GCC at O2+).
    pub cold_part: bool,
    /// Whether the cold fragment is reached by a `call` rather than a
    /// jump (the paper's §V-C false-positive class: 42.9% of FunSeeker
    /// FPs "had a direct call as if they were a function").
    pub part_called: bool,
}

impl FunctionSpec {
    /// A minimal function spec with the given name; everything off.
    pub fn named(name: impl Into<String>) -> Self {
        FunctionSpec {
            name: name.into(),
            linkage: Linkage::External,
            address_taken: false,
            dead: false,
            body_size: 8,
            calls: Vec::new(),
            tail_call: None,
            plt_calls: Vec::new(),
            setjmp: false,
            switch_cases: 0,
            landing_pads: 0,
            no_endbr_intrinsic: false,
            cold_part: false,
            part_called: false,
        }
    }

    /// Whether CET emission places an end-branch at this function's entry.
    pub fn gets_endbr(&self) -> bool {
        if self.no_endbr_intrinsic {
            return false;
        }
        self.linkage == Linkage::External || self.address_taken
    }
}

/// One program (one output binary per build configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Program name (becomes the binary name).
    pub name: String,
    /// Source language.
    pub lang: Lang,
    /// Functions, in declaration order. `main` must be present; the
    /// emitter synthesizes `_start` and architecture thunks itself.
    pub functions: Vec<FunctionSpec>,
}

impl ProgramSpec {
    /// Index of `main`, if present.
    pub fn main_index(&self) -> Option<usize> {
        self.functions.iter().position(|f| f.name == "main")
    }

    /// Sanity-checks internal references; returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.main_index().is_none() {
            return Err(format!("program {} has no main", self.name));
        }
        for (i, f) in self.functions.iter().enumerate() {
            for &c in &f.calls {
                if c >= self.functions.len() {
                    return Err(format!("{}: call target {c} out of range", f.name));
                }
                if c == i {
                    return Err(format!("{}: direct self-recursion not modeled", f.name));
                }
            }
            if let Some(t) = f.tail_call {
                if t >= self.functions.len() || t == i {
                    return Err(format!("{}: bad tail-call target", f.name));
                }
            }
            if f.landing_pads > 0 && self.lang != Lang::Cpp {
                return Err(format!("{}: landing pads in a C unit", f.name));
            }
            if f.dead && f.address_taken {
                // Address-taken implies referenced; dead means unreferenced.
                return Err(format!("{}: dead but address-taken", f.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ProgramSpec {
        ProgramSpec {
            name: "p".into(),
            lang: Lang::C,
            functions: vec![FunctionSpec::named("main")],
        }
    }

    #[test]
    fn endbr_rules_match_the_paper() {
        let mut f = FunctionSpec::named("f");
        assert!(f.gets_endbr(), "extern functions get an end-branch");
        f.linkage = Linkage::Static;
        assert!(!f.gets_endbr(), "plain statics do not");
        f.address_taken = true;
        assert!(f.gets_endbr(), "address-taken statics do");
        f.linkage = Linkage::External;
        f.address_taken = false;
        f.no_endbr_intrinsic = true;
        assert!(!f.gets_endbr(), "intrinsic-style externs are the 0.15% exception");
    }

    #[test]
    fn validate_catches_missing_main() {
        let mut p = minimal();
        p.functions[0].name = "not_main".into();
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_references() {
        let mut p = minimal();
        p.functions[0].calls = vec![7];
        assert!(p.validate().unwrap_err().contains("out of range"));

        let mut p = minimal();
        p.functions[0].tail_call = Some(0);
        assert!(p.validate().is_err());

        let mut p = minimal();
        p.functions[0].landing_pads = 1;
        assert!(p.validate().unwrap_err().contains("landing pads"));

        let mut p = minimal();
        p.functions[0].dead = true;
        p.functions[0].address_taken = true;
        assert!(p.validate().is_err());
    }

    #[test]
    fn valid_program_passes() {
        let mut p = minimal();
        p.functions.push(FunctionSpec::named("helper"));
        p.functions[0].calls = vec![1];
        assert!(p.validate().is_ok());
        assert_eq!(p.main_index(), Some(0));
    }
}
