//! Ground-truth metadata emitted alongside each corpus binary.
//!
//! The paper extracts ground truth from DWARF symbols, excluding
//! `.cold`/`.part` fragments and manually adding `__x86.get_pc_thunk`
//! (§V-A1). The corpus knows the truth exactly, so it records it directly
//! — including the facts needed to *verify* a symbol-based extractor.

use std::collections::BTreeSet;

/// One code entity in the emitted `.text` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionTruth {
    /// Symbol name (what `.symtab` carries when `has_symbol`).
    pub name: String,
    /// Entry virtual address.
    pub addr: u64,
    /// Code size in bytes (excluding inter-function padding).
    pub size: u64,
    /// A `.cold` / `.part` fragment — has a FUNC symbol but is *not* a
    /// function; excluded from evaluation ground truth per §V-A1.
    pub is_part: bool,
    /// An `__x86.get_pc_thunk.*` compiler thunk — *included* in ground
    /// truth even when its symbol is missing (§V-A1).
    pub is_thunk: bool,
    /// Whether `.symtab` carries a FUNC symbol for this entity.
    pub has_symbol: bool,
    /// Never referenced by any instruction (dominant FN class in §V-C).
    pub dead: bool,
    /// Starts with an end-branch instruction.
    pub has_endbr: bool,
    /// `static` linkage.
    pub is_static: bool,
}

/// Complete ground truth for one binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// All code entities, sorted by address.
    pub functions: Vec<FunctionTruth>,
    /// `[start, end)` of the `.text` section.
    pub text_range: (u64, u64),
    /// Addresses (within `.text`) of end-branch instructions placed
    /// *after an indirect-return call site* (§III-B2).
    pub setjmp_return_endbrs: Vec<u64>,
    /// Addresses of end-branch instructions at exception landing pads
    /// (§III-B3).
    pub landing_pad_endbrs: Vec<u64>,
}

impl GroundTruth {
    /// The evaluation ground truth: entry addresses of real functions
    /// (fragments excluded, thunks included) — the set identifiers are
    /// scored against.
    pub fn eval_entries(&self) -> BTreeSet<u64> {
        self.functions.iter().filter(|f| !f.is_part).map(|f| f.addr).collect()
    }

    /// Entry addresses of `.cold`/`.part` fragments.
    pub fn part_entries(&self) -> BTreeSet<u64> {
        self.functions.iter().filter(|f| f.is_part).map(|f| f.addr).collect()
    }

    /// Looks up an entity by address.
    pub fn by_addr(&self, addr: u64) -> Option<&FunctionTruth> {
        self.functions.binary_search_by_key(&addr, |f| f.addr).ok().map(|i| &self.functions[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            functions: vec![
                FunctionTruth {
                    name: "main".into(),
                    addr: 0x1000,
                    size: 32,
                    is_part: false,
                    is_thunk: false,
                    has_symbol: true,
                    dead: false,
                    has_endbr: true,
                    is_static: false,
                },
                FunctionTruth {
                    name: "helper.cold".into(),
                    addr: 0x1040,
                    size: 8,
                    is_part: true,
                    is_thunk: false,
                    has_symbol: true,
                    dead: false,
                    has_endbr: false,
                    is_static: true,
                },
                FunctionTruth {
                    name: "__x86.get_pc_thunk.bx".into(),
                    addr: 0x1060,
                    size: 4,
                    is_part: false,
                    is_thunk: true,
                    has_symbol: false,
                    dead: false,
                    has_endbr: false,
                    is_static: true,
                },
            ],
            text_range: (0x1000, 0x2000),
            setjmp_return_endbrs: vec![],
            landing_pad_endbrs: vec![],
        }
    }

    #[test]
    fn eval_entries_exclude_parts_include_thunks() {
        let t = truth();
        let entries = t.eval_entries();
        assert!(entries.contains(&0x1000));
        assert!(!entries.contains(&0x1040), "fragments are not functions");
        assert!(entries.contains(&0x1060), "thunks are functions even without symbols");
        assert_eq!(t.part_entries().len(), 1);
    }

    #[test]
    fn by_addr_binary_search() {
        let t = truth();
        assert_eq!(t.by_addr(0x1040).unwrap().name, "helper.cold");
        assert!(t.by_addr(0x1041).is_none());
    }
}
