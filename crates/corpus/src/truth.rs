//! Ground-truth metadata emitted alongside each corpus binary.
//!
//! The paper extracts ground truth from DWARF symbols, excluding
//! `.cold`/`.part` fragments and manually adding `__x86.get_pc_thunk`
//! (§V-A1). The corpus knows the truth exactly, so it records it directly
//! — including the facts needed to *verify* a symbol-based extractor.

use std::collections::BTreeSet;

/// One code entity in the emitted `.text` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionTruth {
    /// Symbol name (what `.symtab` carries when `has_symbol`).
    pub name: String,
    /// Entry virtual address.
    pub addr: u64,
    /// Code size in bytes (excluding inter-function padding).
    pub size: u64,
    /// A `.cold` / `.part` fragment — has a FUNC symbol but is *not* a
    /// function; excluded from evaluation ground truth per §V-A1.
    pub is_part: bool,
    /// An `__x86.get_pc_thunk.*` compiler thunk — *included* in ground
    /// truth even when its symbol is missing (§V-A1).
    pub is_thunk: bool,
    /// Whether `.symtab` carries a FUNC symbol for this entity.
    pub has_symbol: bool,
    /// Never referenced by any instruction (dominant FN class in §V-C).
    pub dead: bool,
    /// Starts with an end-branch instruction.
    pub has_endbr: bool,
    /// `static` linkage.
    pub is_static: bool,
}

/// How a recorded call-graph edge transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallEdgeKind {
    /// `call rel32` — a plain direct call (the callee may be a PLT stub).
    Direct,
    /// `jmp rel32` whose target is another *function's* entry — a tail
    /// call emitted by an epilogue-less exit.
    Tail,
    /// `jmp rel32` into a `.cold`/`.part` fragment: interprocedural in
    /// the byte stream but intra-function in truth, so it is excluded
    /// from the call-edge evaluation sets.
    Fragment,
}

/// One call-graph edge the generator emitted, recorded at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdgeTruth {
    /// Address of the `call`/`jmp` opcode byte.
    pub site: u64,
    /// Entry address of the unit containing the site.
    pub caller: u64,
    /// Resolved destination address (function entry, fragment entry, or
    /// PLT stub).
    pub callee: u64,
    /// Transfer flavor.
    pub kind: CallEdgeKind,
}

/// Complete ground truth for one binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// All code entities, sorted by address.
    pub functions: Vec<FunctionTruth>,
    /// `[start, end)` of the `.text` section.
    pub text_range: (u64, u64),
    /// Addresses (within `.text`) of end-branch instructions placed
    /// *after an indirect-return call site* (§III-B2).
    pub setjmp_return_endbrs: Vec<u64>,
    /// Addresses of end-branch instructions at exception landing pads
    /// (§III-B3).
    pub landing_pad_endbrs: Vec<u64>,
    /// Every direct call / tail-call / fragment edge the generator
    /// emitted, sorted by site — the call-graph evaluation ground truth.
    pub call_edges: Vec<CallEdgeTruth>,
}

impl GroundTruth {
    /// The evaluation ground truth: entry addresses of real functions
    /// (fragments excluded, thunks included) — the set identifiers are
    /// scored against.
    pub fn eval_entries(&self) -> BTreeSet<u64> {
        self.functions.iter().filter(|f| !f.is_part).map(|f| f.addr).collect()
    }

    /// Entry addresses of `.cold`/`.part` fragments.
    pub fn part_entries(&self) -> BTreeSet<u64> {
        self.functions.iter().filter(|f| f.is_part).map(|f| f.addr).collect()
    }

    /// Looks up an entity by address.
    pub fn by_addr(&self, addr: u64) -> Option<&FunctionTruth> {
        self.functions.binary_search_by_key(&addr, |f| f.addr).ok().map(|i| &self.functions[i])
    }

    /// `(site, callee)` pairs of the emitted direct call edges — what an
    /// identifier's recovered direct edges are scored against.
    pub fn direct_call_edges(&self) -> BTreeSet<(u64, u64)> {
        self.edge_pairs(CallEdgeKind::Direct)
    }

    /// `(site, callee)` pairs of the emitted tail-call edges.
    pub fn tail_call_edges(&self) -> BTreeSet<(u64, u64)> {
        self.edge_pairs(CallEdgeKind::Tail)
    }

    fn edge_pairs(&self, kind: CallEdgeKind) -> BTreeSet<(u64, u64)> {
        self.call_edges.iter().filter(|e| e.kind == kind).map(|e| (e.site, e.callee)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            functions: vec![
                FunctionTruth {
                    name: "main".into(),
                    addr: 0x1000,
                    size: 32,
                    is_part: false,
                    is_thunk: false,
                    has_symbol: true,
                    dead: false,
                    has_endbr: true,
                    is_static: false,
                },
                FunctionTruth {
                    name: "helper.cold".into(),
                    addr: 0x1040,
                    size: 8,
                    is_part: true,
                    is_thunk: false,
                    has_symbol: true,
                    dead: false,
                    has_endbr: false,
                    is_static: true,
                },
                FunctionTruth {
                    name: "__x86.get_pc_thunk.bx".into(),
                    addr: 0x1060,
                    size: 4,
                    is_part: false,
                    is_thunk: true,
                    has_symbol: false,
                    dead: false,
                    has_endbr: false,
                    is_static: true,
                },
            ],
            text_range: (0x1000, 0x2000),
            setjmp_return_endbrs: vec![],
            landing_pad_endbrs: vec![],
            call_edges: vec![
                CallEdgeTruth {
                    site: 0x1004,
                    caller: 0x1000,
                    callee: 0x1060,
                    kind: CallEdgeKind::Direct,
                },
                CallEdgeTruth {
                    site: 0x1010,
                    caller: 0x1000,
                    callee: 0x1040,
                    kind: CallEdgeKind::Fragment,
                },
            ],
        }
    }

    #[test]
    fn eval_entries_exclude_parts_include_thunks() {
        let t = truth();
        let entries = t.eval_entries();
        assert!(entries.contains(&0x1000));
        assert!(!entries.contains(&0x1040), "fragments are not functions");
        assert!(entries.contains(&0x1060), "thunks are functions even without symbols");
        assert_eq!(t.part_entries().len(), 1);
    }

    #[test]
    fn edge_pair_sets_split_by_kind_and_exclude_fragments() {
        let t = truth();
        assert_eq!(t.direct_call_edges().into_iter().collect::<Vec<_>>(), [(0x1004, 0x1060)]);
        assert!(t.tail_call_edges().is_empty(), "fragment edges are not tail calls");
    }

    #[test]
    fn by_addr_binary_search() {
        let t = truth();
        assert_eq!(t.by_addr(0x1040).unwrap().name, "helper.cold");
        assert!(t.by_addr(0x1041).is_none());
    }
}
