//! Dataset orchestration: suites × programs × build configurations.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::BuildConfig;
use crate::link::LinkedBinary;
use crate::spec::ProgramSpec;
use crate::truth::GroundTruth;
use crate::workload::Suite;

/// One compiled corpus binary with its provenance and ground truth.
#[derive(Debug, Clone)]
pub struct CorpusBinary {
    /// Suite the program belongs to.
    pub suite: Suite,
    /// Build configuration it was compiled under.
    pub config: BuildConfig,
    /// Program name.
    pub program: String,
    /// The ELF image.
    pub bytes: Vec<u8>,
    /// Exact ground truth.
    pub truth: GroundTruth,
}

/// Dataset generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Programs per suite: (Coreutils, Binutils, SPEC). The paper used
    /// (108, 15, 47); the defaults scale that down so a full evaluation
    /// runs in minutes while keeping the suite-size ordering.
    pub programs: (usize, usize, usize),
    /// Build configurations to compile each program under.
    pub configs: Vec<BuildConfig>,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams { programs: (12, 5, 8), configs: BuildConfig::grid() }
    }
}

impl DatasetParams {
    /// A tiny dataset for unit tests and doc examples.
    pub fn tiny() -> Self {
        DatasetParams {
            programs: (2, 1, 2),
            configs: vec![
                BuildConfig {
                    compiler: crate::config::Compiler::Gcc,
                    arch: crate::arch::Arch::X64,
                    opt: crate::config::OptLevel::O2,
                    pie: true,
                },
                BuildConfig {
                    compiler: crate::config::Compiler::Clang,
                    arch: crate::arch::Arch::X86,
                    opt: crate::config::OptLevel::O0,
                    pie: false,
                },
            ],
        }
    }
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All compiled binaries.
    pub binaries: Vec<CorpusBinary>,
}

impl Dataset {
    /// Generates the program specs for `params` (one set per suite —
    /// programs are shared across configurations, like real source code).
    pub fn program_specs(params: &DatasetParams, seed: u64) -> Vec<(Suite, ProgramSpec)> {
        let mut out = Vec::new();
        for (suite, count) in [
            (Suite::Coreutils, params.programs.0),
            (Suite::Binutils, params.programs.1),
            (Suite::Spec, params.programs.2),
        ] {
            // Make the language split deterministic: exactly
            // round(cpp_prob × count) C++ programs per suite, as in the
            // paper's dataset where the SPEC C++ share is structural.
            let cpp_count = (suite.profile().cpp_prob * count as f64).round() as usize;
            for i in 0..count {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (suite as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((i as u64) << 32),
                );
                let name =
                    format!("{}_{:03}", suite.label().split(' ').next().unwrap().to_lowercase(), i);
                let lang =
                    if i < cpp_count { crate::spec::Lang::Cpp } else { crate::spec::Lang::C };
                let mut spec = crate::workload::generate_program_in(suite, &name, lang, &mut rng);
                if i == 0 {
                    // Structural floor: at least one program per suite
                    // exercises the indirect-return pattern (like `ls`
                    // and its setjmp-based sort in the paper's Fig. 2a).
                    if let Some(f) = spec.functions.iter_mut().find(|f| !f.dead) {
                        f.setjmp = true;
                    }
                }
                out.push((suite, spec));
            }
        }
        out
    }

    /// Generates the full dataset: every program under every configuration.
    pub fn generate(params: &DatasetParams, seed: u64) -> Dataset {
        let specs = Self::program_specs(params, seed);
        let mut binaries = Vec::with_capacity(specs.len() * params.configs.len());
        for (pi, (suite, spec)) in specs.iter().enumerate() {
            for (ci, &config) in params.configs.iter().enumerate() {
                let bin_seed = seed
                    .wrapping_add((pi as u64).wrapping_mul(0x0100_0000_01b3))
                    .wrapping_add(ci as u64);
                let LinkedBinary { bytes, truth } = crate::compile(spec, config, bin_seed);
                binaries.push(CorpusBinary {
                    suite: *suite,
                    config,
                    program: spec.name.clone(),
                    bytes,
                    truth,
                });
            }
        }
        Dataset { binaries }
    }

    /// Number of binaries.
    pub fn len(&self) -> usize {
        self.binaries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.binaries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_generates() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 7);
        assert_eq!(ds.len(), 5 * 2); // 5 programs × 2 configs
        for b in &ds.binaries {
            assert!(!b.bytes.is_empty());
            assert!(b.truth.functions.len() >= 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DatasetParams::tiny(), 11);
        let b = Dataset::generate(&DatasetParams::tiny(), 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.binaries.iter().zip(&b.binaries) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&DatasetParams::tiny(), 1);
        let b = Dataset::generate(&DatasetParams::tiny(), 2);
        assert!(a.binaries.iter().zip(&b.binaries).any(|(x, y)| x.bytes != y.bytes));
    }
}
