//! Suite-profile program generators.
//!
//! Three profiles mirror the paper's dataset (§III-A): GNU Coreutils
//! (many small C programs), GNU Binutils (fewer, larger C programs), and
//! SPEC CPU 2017 (large programs, a substantial share of C++ with
//! exception handling — the source of Table I's landing-pad end-branch
//! share and Table II's configuration-① precision collapse).

use rand::rngs::StdRng;
use rand::Rng;

use crate::spec::{FunctionSpec, Lang, Linkage, ProgramSpec};

/// Benchmark suite a program belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Coreutils-like: small C utilities.
    Coreutils,
    /// Binutils-like: larger C tools.
    Binutils,
    /// SPEC-like: big programs, mixed C / C++.
    Spec,
}

impl Suite {
    /// All suites in the paper's table order.
    pub const ALL: [Suite; 3] = [Suite::Coreutils, Suite::Binutils, Suite::Spec];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Coreutils => "Coreutils",
            Suite::Binutils => "Binutils",
            Suite::Spec => "SPEC CPU 2017",
        }
    }

    /// Generation profile for this suite.
    pub fn profile(self) -> Profile {
        match self {
            Suite::Coreutils => Profile {
                funcs: (18, 45),
                body: (6, 28),
                static_frac: 0.22,
                addr_taken_static_frac: 0.42,
                addr_taken_extern_frac: 0.05,
                dead_frac: 0.035,
                intrinsic_no_endbr_frac: 0.0015,
                call_coverage: 0.52,
                setjmp_prob: 0.30,
                switch_frac: 0.10,
                shared_tail_targets: 1,
                single_tail_prob: 0.3,
                cold_frac: 0.05,
                part_called_prob: 0.35,
                cpp_prob: 0.0,
                try_catch_frac: 0.0,
            },
            Suite::Binutils => Profile {
                funcs: (45, 110),
                body: (8, 36),
                static_frac: 0.24,
                addr_taken_static_frac: 0.45,
                addr_taken_extern_frac: 0.06,
                dead_frac: 0.035,
                intrinsic_no_endbr_frac: 0.0015,
                call_coverage: 0.50,
                setjmp_prob: 0.25,
                switch_frac: 0.13,
                shared_tail_targets: 2,
                single_tail_prob: 0.3,
                cold_frac: 0.06,
                part_called_prob: 0.35,
                cpp_prob: 0.0,
                try_catch_frac: 0.0,
            },
            Suite::Spec => Profile {
                funcs: (50, 140),
                body: (8, 40),
                static_frac: 0.20,
                addr_taken_static_frac: 0.45,
                addr_taken_extern_frac: 0.08,
                dead_frac: 0.035,
                intrinsic_no_endbr_frac: 0.0015,
                call_coverage: 0.50,
                setjmp_prob: 0.10,
                switch_frac: 0.12,
                shared_tail_targets: 2,
                single_tail_prob: 0.3,
                cold_frac: 0.07,
                part_called_prob: 0.35,
                cpp_prob: 0.45,
                try_catch_frac: 0.35,
            },
        }
    }
}

/// Tunable generation probabilities (per suite).
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Function count range per program.
    pub funcs: (usize, usize),
    /// Filler-instruction range per function body.
    pub body: (usize, usize),
    /// Fraction of functions with `static` linkage.
    pub static_frac: f64,
    /// Fraction of statics whose address is taken (⇒ end-branch).
    pub addr_taken_static_frac: f64,
    /// Fraction of externs additionally used through pointers.
    pub addr_taken_extern_frac: f64,
    /// Fraction of plain statics that are dead code.
    pub dead_frac: f64,
    /// The ~0.15% of externs without an entry end-branch (§III fn. 1).
    pub intrinsic_no_endbr_frac: f64,
    /// Fraction of functions that receive at least one direct call.
    pub call_coverage: f64,
    /// Probability that the program uses a `setjmp`-family function.
    pub setjmp_prob: f64,
    /// Fraction of functions containing a jump-table switch.
    pub switch_frac: f64,
    /// Tail-call targets shared by ≥2 callers per program.
    pub shared_tail_targets: usize,
    /// Probability of an additional single-caller tail-call edge.
    pub single_tail_prob: f64,
    /// Fraction of functions split into `.cold`/`.part` fragments
    /// (effective only for GCC at O2+).
    pub cold_frac: f64,
    /// Probability a fragment is reached by `call` rather than a jump.
    pub part_called_prob: f64,
    /// Probability a program is C++.
    pub cpp_prob: f64,
    /// Fraction of C++ functions with try/catch landing pads.
    pub try_catch_frac: f64,
}

const VERBS: &[&str] = &[
    "parse", "read", "write", "init", "free", "hash", "sort", "copy", "scan", "emit", "load",
    "dump", "check", "update", "merge", "split", "flush", "walk", "find", "push",
];
const NOUNS: &[&str] = &[
    "buf", "file", "table", "node", "str", "opt", "arg", "line", "tree", "map", "list", "entry",
    "chunk", "page", "sym", "sect",
];
const LIBC: &[&str] = &[
    "malloc", "free", "printf", "puts", "memcpy", "strlen", "exit", "read", "write", "open",
    "close", "strcmp", "fprintf", "calloc",
];

/// Generates one program for `suite`, rolling the language from the
/// suite profile's `cpp_prob`.
pub fn generate_program(suite: Suite, name: &str, rng: &mut StdRng) -> ProgramSpec {
    let p = suite.profile();
    let lang = if rng.gen_bool(p.cpp_prob) { Lang::Cpp } else { Lang::C };
    generate_program_in(suite, name, lang, rng)
}

/// Generates one program with a fixed language — the dataset uses this
/// to make the SPEC C++ share deterministic rather than sampled.
pub fn generate_program_in(suite: Suite, name: &str, lang: Lang, rng: &mut StdRng) -> ProgramSpec {
    let p = suite.profile();
    let n = rng.gen_range(p.funcs.0..=p.funcs.1);

    let mut functions = Vec::with_capacity(n);
    for i in 0..n {
        let fname = if i == 0 {
            "main".to_owned()
        } else {
            format!(
                "{}_{}{}",
                VERBS[rng.gen_range(0..VERBS.len())],
                NOUNS[rng.gen_range(0..NOUNS.len())],
                i
            )
        };
        let mut f = FunctionSpec::named(fname);
        f.body_size = rng.gen_range(p.body.0..=p.body.1);
        if i != 0 {
            if rng.gen_bool(p.static_frac) {
                f.linkage = Linkage::Static;
                if rng.gen_bool(p.addr_taken_static_frac) {
                    f.address_taken = true;
                } else if rng.gen_bool(p.dead_frac) {
                    f.dead = true;
                }
            } else {
                if rng.gen_bool(p.addr_taken_extern_frac) {
                    f.address_taken = true;
                }
                if rng.gen_bool(p.intrinsic_no_endbr_frac) {
                    f.no_endbr_intrinsic = true;
                }
            }
        }
        if rng.gen_bool(p.switch_frac) {
            f.switch_cases = rng.gen_range(2..=8);
        }
        if lang == Lang::Cpp && rng.gen_bool(p.try_catch_frac) {
            f.landing_pads = rng.gen_range(1..=3);
        }
        if rng.gen_bool(p.cold_frac) && i != 0 {
            f.cold_part = true;
            f.part_called = rng.gen_bool(p.part_called_prob);
        }
        for _ in 0..rng.gen_range(0..=2usize) {
            f.plt_calls.push(LIBC[rng.gen_range(0..LIBC.len())].to_owned());
        }
        functions.push(f);
    }

    // Direct-call graph over a "callable pool" covering ~call_coverage of
    // the functions; edges always point at pool members.
    let pool: Vec<usize> =
        (1..n).filter(|&i| !functions[i].dead).filter(|_| rng.gen_bool(p.call_coverage)).collect();
    if !pool.is_empty() {
        for (i, f) in functions.iter_mut().enumerate().take(n) {
            if f.dead && rng.gen_bool(0.5) {
                continue; // some dead functions call nothing at all
            }
            let k = rng.gen_range(0..=3usize);
            for _ in 0..k {
                let c = pool[rng.gen_range(0..pool.len())];
                if c != i && !f.calls.contains(&c) {
                    f.calls.push(c);
                }
            }
        }
        // main always calls into the program.
        if functions[0].calls.is_empty() {
            let c = pool[rng.gen_range(0..pool.len())];
            if c != 0 {
                functions[0].calls.push(c);
            }
        }
    }

    // Tail-call structure, assigned BEFORE the referenced-ness guarantee
    // so that tail-only targets (statics reachable exclusively through
    // jumps) actually exist: shared targets (≥2 tail callers —
    // recoverable by SELECTTAILCALL) and single-caller targets (the §V-C
    // false-negative class).
    if n > 6 {
        // Prefer plain statics as shared targets: those are the functions
        // only SELECTTAILCALL can recover.
        let static_pool: Vec<usize> = (1..n)
            .filter(|&i| {
                functions[i].linkage == Linkage::Static
                    && !functions[i].address_taken
                    && !functions[i].dead
            })
            .collect();
        for t in 0..p.shared_tail_targets {
            let target = if !static_pool.is_empty() && (t % 2 == 0 || rng.gen_bool(0.5)) {
                static_pool[rng.gen_range(0..static_pool.len())]
            } else {
                rng.gen_range(1..n)
            };
            if functions[target].dead {
                continue;
            }
            let want = rng.gen_range(2..=3);
            let mut callers = 0;
            for _ in 0..10 {
                if callers >= want {
                    break;
                }
                let c = rng.gen_range(1..n);
                // Avoid the caller directly preceding the target in
                // layout order: its tail jump would share the target's
                // candidate interval, which no real compiler layout
                // correlates the way dense random picks would.
                if c != target
                    && c + 1 != target
                    && !functions[c].dead
                    && functions[c].tail_call.is_none()
                {
                    functions[c].tail_call = Some(target);
                    callers += 1;
                }
            }
        }
        if rng.gen_bool(p.single_tail_prob) {
            // A single-caller tail target: a plain static that receives
            // no direct calls stays invisible to configuration ④ (one
            // referer < 2) — the paper's 6.7% false-negative class.
            let uncalled_statics: Vec<usize> = static_pool
                .iter()
                .copied()
                .filter(|&i| {
                    !functions.iter().any(|g| g.calls.contains(&i))
                        && !functions.iter().any(|g| g.tail_call == Some(i))
                })
                .collect();
            let target = if !uncalled_statics.is_empty() && rng.gen_bool(0.6) {
                uncalled_statics[rng.gen_range(0..uncalled_statics.len())]
            } else {
                rng.gen_range(1..n)
            };
            for _ in 0..6 {
                let caller = rng.gen_range(1..n);
                if target != caller
                    && caller + 1 != target
                    && !functions[target].dead
                    && !functions[caller].dead
                    && functions[caller].tail_call.is_none()
                    && functions[target].tail_call != Some(caller)
                {
                    functions[caller].tail_call = Some(target);
                    break;
                }
            }
        }
    }

    // Guarantee referenced-ness: every live function without an entry
    // end-branch — plain statics and the no-endbr "intrinsic" externs
    // (which the paper's footnote 1 observes are "referenced via a
    // direct call") — must be reachable through a call or tail jump.
    for i in 1..n {
        let f = &functions[i];
        let needs_ref = (f.linkage == Linkage::Static && !f.address_taken) || f.no_endbr_intrinsic;
        if needs_ref && !f.dead {
            let called = functions.iter().enumerate().any(|(j, g)| j != i && g.calls.contains(&i));
            let tailed = functions.iter().any(|g| g.tail_call == Some(i));
            if !called && !tailed {
                let mut caller = rng.gen_range(0..n.min(8));
                if caller == i {
                    caller = 0;
                }
                if !functions[caller].dead {
                    functions[caller].calls.push(i);
                } else {
                    functions[0].calls.push(i);
                }
            }
        }
    }

    // setjmp usage (Figure 2a's `sort_files` pattern).
    if rng.gen_bool(p.setjmp_prob) {
        let i = if rng.gen_bool(0.5) { 0 } else { rng.gen_range(0..n) };
        if !functions[i].dead {
            functions[i].setjmp = true;
        }
    }

    let spec = ProgramSpec { name: name.to_owned(), lang, functions };
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_validate() {
        let mut rng = StdRng::seed_from_u64(1);
        for suite in Suite::ALL {
            for i in 0..12 {
                let p = generate_program(suite, &format!("prog{i}"), &mut rng);
                assert_eq!(p.validate(), Ok(()), "{:?} prog{i}", suite);
                assert!(!p.functions.is_empty());
                assert_eq!(p.functions[0].name, "main");
            }
        }
    }

    #[test]
    fn coreutils_and_binutils_are_pure_c() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_eq!(generate_program(Suite::Coreutils, "a", &mut rng).lang, Lang::C);
            assert_eq!(generate_program(Suite::Binutils, "b", &mut rng).lang, Lang::C);
        }
    }

    #[test]
    fn spec_suite_contains_cpp_with_landing_pads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cpp = 0;
        let mut pads = 0;
        for i in 0..30 {
            let p = generate_program(Suite::Spec, &format!("s{i}"), &mut rng);
            if p.lang == Lang::Cpp {
                cpp += 1;
                pads += p.functions.iter().filter(|f| f.landing_pads > 0).count();
            }
        }
        assert!(cpp >= 5, "expected a C++ share, got {cpp}/30");
        assert!(pads > 10, "expected landing pads in C++ programs, got {pads}");
    }

    #[test]
    fn live_plain_statics_are_always_referenced() {
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..10 {
            let p = generate_program(Suite::Binutils, &format!("p{i}"), &mut rng);
            for (idx, f) in p.functions.iter().enumerate() {
                if f.linkage == Linkage::Static && !f.address_taken && !f.dead {
                    let called = p.functions.iter().any(|g| g.calls.contains(&idx));
                    let tailed = p.functions.iter().any(|g| g.tail_call == Some(idx));
                    assert!(called || tailed, "{} is unreachable but not dead", f.name);
                }
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate_program(Suite::Spec, "x", &mut StdRng::seed_from_u64(99));
        let b = generate_program(Suite::Spec, "x", &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }
}
