//! Deterministic ELF fault injection — the mutation half of the
//! robustness harness.
//!
//! [`Mutator`] applies *structured* corruptions to a well-formed image:
//! instead of only flipping random bytes (which mostly lands in code or
//! padding), it aims at the places a hostile input actually attacks a
//! parser — header fields, the section/segment tables, size and offset
//! words, the CET property note, `.eh_frame`, and the PLT relocations.
//! Every corruption is a pure function of the seed, so a failing case
//! reproduces from its `(seed, corruption)` pair alone.
//!
//! The companion proptest (`tests/proptest_mutate.rs`) asserts the
//! pipeline contract over these mutants: `FunSeeker::identify` never
//! panics, never overruns its time budget, and returns either `Ok` with
//! diagnostics or a typed error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One structured corruption class — the mutator's grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Corruption {
    /// Scramble fields of the ELF file header (type, machine, shoff,
    /// shnum, shstrndx, entry, …) while keeping the magic intact.
    HeaderScramble,
    /// Overwrite one section-header entry with random bytes.
    SectionScramble,
    /// Overwrite one program-header entry with random bytes.
    SegmentScramble,
    /// Replace a size/offset word in a section header with a value near
    /// `u64::MAX` (the classic integer-overflow probe).
    OffsetOverflow,
    /// Truncate the image at a random point (mid-header, mid-table, or
    /// mid-section).
    TailTruncate,
    /// Flip bits inside `.note.gnu.property`.
    NoteBitFlip,
    /// Flip bits inside `.eh_frame` / `.gcc_except_table`.
    EhFrameBitFlip,
    /// Shuffle and damage the PLT relocation entries
    /// (`.rela.plt`/`.rel.plt`).
    RelocShuffle,
    /// Plain random byte flips anywhere in the image (baseline noise).
    RandomFlips,
}

impl Corruption {
    /// Every corruption class, in a stable order.
    pub const ALL: [Corruption; 9] = [
        Corruption::HeaderScramble,
        Corruption::SectionScramble,
        Corruption::SegmentScramble,
        Corruption::OffsetOverflow,
        Corruption::TailTruncate,
        Corruption::NoteBitFlip,
        Corruption::EhFrameBitFlip,
        Corruption::RelocShuffle,
        Corruption::RandomFlips,
    ];

    /// A short stable label (for campaign tables).
    pub fn label(self) -> &'static str {
        match self {
            Corruption::HeaderScramble => "header-scramble",
            Corruption::SectionScramble => "section-scramble",
            Corruption::SegmentScramble => "segment-scramble",
            Corruption::OffsetOverflow => "offset-overflow",
            Corruption::TailTruncate => "tail-truncate",
            Corruption::NoteBitFlip => "note-bit-flip",
            Corruption::EhFrameBitFlip => "ehframe-bit-flip",
            Corruption::RelocShuffle => "reloc-shuffle",
            Corruption::RandomFlips => "random-flips",
        }
    }
}

/// Byte layout facts the mutator needs from the pristine image, located
/// via the workspace's own parser *before* any damage is applied.
#[derive(Debug, Clone, Default)]
struct Layout {
    /// `(file_offset, len)` of the section-header table.
    shdr_table: Option<(usize, usize)>,
    /// `(file_offset, len)` of the program-header table.
    phdr_table: Option<(usize, usize)>,
    /// File ranges of named sections.
    note: Option<(usize, usize)>,
    eh: Vec<(usize, usize)>,
    relocs: Option<(usize, usize)>,
    /// Per-section-header entry size.
    shentsize: usize,
    phentsize: usize,
}

fn layout_of(bytes: &[u8]) -> Layout {
    let Ok(elf) = funseeker_elf::Elf::parse(bytes) else { return Layout::default() };
    let class = elf.class();
    let (shentsize, phentsize) =
        if class.is_wide() { (64usize, 56usize) } else { (40usize, 32usize) };
    let range = |name: &str| -> Option<(usize, usize)> {
        let sec = elf.section_by_name(name)?;
        let (start, end) = sec.file_range()?;
        (end <= bytes.len() && start < end).then(|| (start, end - start))
    };
    let table = |off: u64, n: usize, entsize: usize| -> Option<(usize, usize)> {
        let start = usize::try_from(off).ok()?;
        let len = n.checked_mul(entsize)?;
        (n > 0 && start.checked_add(len)? <= bytes.len()).then_some((start, len))
    };
    Layout {
        shdr_table: table(elf.header.shoff, usize::from(elf.header.shnum), shentsize),
        phdr_table: table(elf.header.phoff, usize::from(elf.header.phnum), phentsize),
        note: range(".note.gnu.property"),
        eh: [".eh_frame", ".gcc_except_table"].iter().filter_map(|n| range(n)).collect(),
        relocs: range(".rela.plt").or_else(|| range(".rel.plt")),
        shentsize,
        phentsize,
    }
}

/// A seeded source of structured ELF corruptions.
///
/// ```
/// use funseeker_corpus::{
///     compile, Arch, BuildConfig, Compiler, Corruption, FunctionSpec, Mutator, OptLevel,
///     ProgramSpec,
/// };
/// let spec = ProgramSpec {
///     name: "victim".into(),
///     lang: funseeker_corpus::Lang::C,
///     functions: vec![FunctionSpec::named("main")],
/// };
/// let cfg = BuildConfig { compiler: Compiler::Gcc, arch: Arch::X64, opt: OptLevel::O2, pie: true };
/// let pristine = compile(&spec, cfg, 7).bytes;
/// let mut m = Mutator::new(42);
/// let (mutant, applied) = m.mutate(&pristine);
/// assert_ne!(mutant, pristine);
/// assert!(Corruption::ALL.contains(&applied));
/// ```
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// A mutator with a fixed seed; the corruption stream is a pure
    /// function of it.
    pub fn new(seed: u64) -> Self {
        Mutator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Applies one randomly chosen corruption, returning the mutated
    /// image and which class was applied.
    pub fn mutate(&mut self, pristine: &[u8]) -> (Vec<u8>, Corruption) {
        let c = Corruption::ALL[self.rng.gen_range(0..Corruption::ALL.len())];
        (self.apply(pristine, c), c)
    }

    /// Applies one specific corruption class.
    ///
    /// Falls back to [`Corruption::RandomFlips`] behavior when the class
    /// has no target in this image (e.g. `NoteBitFlip` on an image with
    /// no property note) so every call damages *something*.
    pub fn apply(&mut self, pristine: &[u8], c: Corruption) -> Vec<u8> {
        let mut bytes = pristine.to_vec();
        if bytes.is_empty() {
            return bytes;
        }
        let layout = layout_of(pristine);
        let done = match c {
            Corruption::HeaderScramble => self.header_scramble(&mut bytes),
            Corruption::SectionScramble => {
                self.table_scramble(&mut bytes, layout.shdr_table, layout.shentsize)
            }
            Corruption::SegmentScramble => {
                self.table_scramble(&mut bytes, layout.phdr_table, layout.phentsize)
            }
            Corruption::OffsetOverflow => {
                self.offset_overflow(&mut bytes, layout.shdr_table, layout.shentsize)
            }
            Corruption::TailTruncate => {
                let keep = self.rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
                true
            }
            Corruption::NoteBitFlip => self.bit_flips(&mut bytes, layout.note),
            Corruption::EhFrameBitFlip => {
                let target = (!layout.eh.is_empty())
                    .then(|| layout.eh[self.rng.gen_range(0..layout.eh.len())]);
                self.bit_flips(&mut bytes, target)
            }
            Corruption::RelocShuffle => self.reloc_shuffle(&mut bytes, layout.relocs),
            Corruption::RandomFlips => false,
        };
        if !done {
            // Class had no target (or is RandomFlips): baseline noise.
            let n = self.rng.gen_range(1..24usize);
            for _ in 0..n {
                let pos = self.rng.gen_range(0..bytes.len());
                bytes[pos] = self.rng.gen();
            }
        }
        bytes
    }

    /// Scrambles fields of the file header past the 16-byte ident, so the
    /// image still *looks* like an ELF but its structure lies.
    fn header_scramble(&mut self, bytes: &mut [u8]) -> bool {
        if bytes.len() <= 16 {
            return false;
        }
        let header_end = bytes.len().min(64);
        let n = self.rng.gen_range(1..8usize);
        for _ in 0..n {
            let pos = self.rng.gen_range(16..header_end);
            // Mix small values and extreme ones: both "subtly wrong" and
            // "obviously hostile" header fields are interesting.
            bytes[pos] = if self.rng.gen_bool(0.5) { self.rng.gen() } else { 0xff };
        }
        true
    }

    /// Overwrites one table entry (section or program header) wholesale.
    fn table_scramble(
        &mut self,
        bytes: &mut [u8],
        table: Option<(usize, usize)>,
        entsize: usize,
    ) -> bool {
        let Some((start, len)) = table else { return false };
        if len < entsize {
            return false;
        }
        let entry = self.rng.gen_range(0..len / entsize);
        let at = start + entry * entsize;
        for b in &mut bytes[at..at + entsize] {
            if self.rng.gen_bool(0.7) {
                *b = self.rng.gen();
            }
        }
        true
    }

    /// Plants a near-`u64::MAX` value into a section header's offset or
    /// size field — the classic `checked_add` probe.
    fn offset_overflow(
        &mut self,
        bytes: &mut [u8],
        table: Option<(usize, usize)>,
        entsize: usize,
    ) -> bool {
        let Some((start, len)) = table else { return false };
        if len < entsize {
            return false;
        }
        let entry = self.rng.gen_range(0..len / entsize);
        // ELF64 Shdr: sh_addr @16, sh_offset @24, sh_size @32 (8 bytes
        // each); ELF32: sh_addr @12, sh_offset @16, sh_size @20 (4 each).
        let wide = entsize == 64;
        let fields: &[usize] = if wide { &[16, 24, 32] } else { &[12, 16, 20] };
        let field = fields[self.rng.gen_range(0..fields.len())];
        let width = if wide { 8 } else { 4 };
        let at = start + entry * entsize + field;
        let value = u64::MAX - self.rng.gen_range(0..0x1000u64);
        bytes[at..at + width].copy_from_slice(&value.to_le_bytes()[..width]);
        true
    }

    /// Flips 1–32 bits inside the target range.
    fn bit_flips(&mut self, bytes: &mut [u8], target: Option<(usize, usize)>) -> bool {
        let Some((start, len)) = target else { return false };
        if len == 0 {
            return false;
        }
        let n = self.rng.gen_range(1..32usize);
        for _ in 0..n {
            let pos = start + self.rng.gen_range(0..len);
            bytes[pos] ^= 1 << self.rng.gen_range(0..8u32);
        }
        true
    }

    /// Swaps whole relocation entries around and corrupts their symbol
    /// indices / offsets, desynchronizing the PLT index correspondence.
    fn reloc_shuffle(&mut self, bytes: &mut [u8], relocs: Option<(usize, usize)>) -> bool {
        let Some((start, len)) = relocs else { return false };
        let entsize = 24usize; // Elf64 Rela; close enough for Rel too
        let n = len / entsize;
        if n < 1 {
            return false;
        }
        for _ in 0..self.rng.gen_range(1..=n) {
            let a = start + self.rng.gen_range(0..n) * entsize;
            let b = start + self.rng.gen_range(0..n) * entsize;
            for i in 0..entsize {
                bytes.swap(a + i, b + i);
            }
        }
        // Damage one entry's r_info (symbol index + type).
        let at = start + self.rng.gen_range(0..n) * entsize + 8;
        for b in &mut bytes[at..at + 8] {
            *b = self.rng.gen();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Arch, BuildConfig, Compiler, FunctionSpec, Lang, OptLevel, ProgramSpec};

    fn pristine() -> Vec<u8> {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1];
        main.setjmp = true;
        let mut helper = FunctionSpec::named("helper");
        helper.landing_pads = 1;
        let spec =
            ProgramSpec { name: "mut".into(), lang: Lang::Cpp, functions: vec![main, helper] };
        let cfg =
            BuildConfig { compiler: Compiler::Gcc, arch: Arch::X64, opt: OptLevel::O2, pie: true };
        compile(&spec, cfg, 3).bytes
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = pristine();
        let (a, ca) = Mutator::new(9).mutate(&p);
        let (b, cb) = Mutator::new(9).mutate(&p);
        assert_eq!(ca, cb);
        assert_eq!(a, b);
        let (c, _) = Mutator::new(10).mutate(&p);
        assert!(c != a || Mutator::new(10).mutate(&p).0 == c);
    }

    #[test]
    fn every_class_changes_the_image() {
        let p = pristine();
        let mut m = Mutator::new(1);
        for c in Corruption::ALL {
            let out = m.apply(&p, c);
            assert_ne!(out, p, "{c:?} must damage the image");
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn targeted_classes_hit_their_section() {
        let p = pristine();
        let elf = funseeker_elf::Elf::parse(&p).unwrap();
        let (eh_start, eh_end) =
            elf.section_by_name(".eh_frame").and_then(|s| s.file_range()).unwrap();
        let mut m = Mutator::new(5);
        let out = m.apply(&p, Corruption::EhFrameBitFlip);
        assert_eq!(out.len(), p.len());
        let changed: Vec<usize> = (0..p.len()).filter(|&i| out[i] != p[i]).collect();
        assert!(!changed.is_empty());
        assert!(
            changed.iter().all(|&i| i >= eh_start && i < eh_end),
            "EhFrameBitFlip must stay inside .eh_frame/.gcc_except_table"
        );
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut m = Mutator::new(0);
        let (out, _) = m.mutate(&[]);
        assert!(out.is_empty());
    }
}
