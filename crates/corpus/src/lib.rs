//! Synthetic CET-enabled binary corpus for the FunSeeker reproduction.
//!
//! The paper evaluates on 8,136 binaries compiled from GNU Coreutils,
//! GNU Binutils and SPEC CPU 2017 with GCC 10 and Clang 13. Those
//! packages (and a licensed SPEC copy) are not reproducible here, so this
//! crate substitutes a **compiler-emission simulator**: a seeded pipeline
//!
//! ```text
//! ProgramSpec ──lower──▶ Units(+fixups) ──link──▶ ELF + GroundTruth
//! ```
//!
//! that reproduces every CET-relevant emission rule the paper measures
//! (§III): entry end-branches for non-static / address-taken functions,
//! post-`setjmp` end-branches, landing-pad end-branches, `notrack`
//! switch dispatch, `.cold`/`.part` fragment extraction, per-compiler
//! `.eh_frame` coverage (including Clang's missing x86 C FDEs), and the
//! split `.plt`/`.plt.sec` layout of CET binaries.
//!
//! Every emitted byte of `.text` is valid code that round-trips through
//! `funseeker-disasm` (checked by the self-test in this crate), and each
//! binary ships with exact [`GroundTruth`].
//!
//! # Quick example
//!
//! ```
//! use funseeker_corpus::{Dataset, DatasetParams};
//! let ds = Dataset::generate(&DatasetParams::tiny(), 42);
//! let bin = &ds.binaries[0];
//! println!("{} ({}): {} functions", bin.program, bin.config.label(),
//!          bin.truth.eval_entries().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod asm;
mod codegen;
pub mod config;
pub mod dataset;
mod link;
pub mod mutate;
pub mod spec;
pub mod truth;
pub mod workload;

pub use arch::Arch;
pub use codegen::INDIRECT_RETURN_FUNCTIONS;
pub use config::{BuildConfig, Compiler, OptLevel};
pub use dataset::{CorpusBinary, Dataset, DatasetParams};
pub use link::LinkedBinary;
pub use mutate::{Corruption, Mutator};
pub use spec::{FunctionSpec, Lang, Linkage, ProgramSpec};
pub use truth::{CallEdgeKind, CallEdgeTruth, FunctionTruth, GroundTruth};
pub use workload::{generate_program, Profile, Suite};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Emission options orthogonal to the build-configuration grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmissionOptions {
    /// Model `-mmanual-endbr` (§VI of the paper): the compiler no longer
    /// places an end-branch at every non-static entry; only functions
    /// whose address is genuinely used as an indirect-branch target —
    /// address-taken ones and exported-but-unreferenced ones (their
    /// address may escape across DSOs) — keep the marker. Everything
    /// else must be found through direct references.
    pub manual_endbr: bool,
    /// Omit `.symtab`/`.strtab`, like the stripped dataset the paper
    /// evaluates on (§III-A). Ground truth still ships alongside, and no
    /// identifier in this workspace reads symbols — asserted by tests.
    pub strip_symbols: bool,
}

/// Compiles one program spec under one build configuration.
///
/// Deterministic in `(spec, cfg, seed)`. Panics on an invalid spec — use
/// [`ProgramSpec::validate`] first for untrusted input.
pub fn compile(spec: &ProgramSpec, cfg: BuildConfig, seed: u64) -> LinkedBinary {
    compile_with(spec, cfg, EmissionOptions::default(), seed)
}

/// [`compile`] with explicit [`EmissionOptions`].
pub fn compile_with(
    spec: &ProgramSpec,
    cfg: BuildConfig,
    options: EmissionOptions,
    seed: u64,
) -> LinkedBinary {
    if let Err(e) = spec.validate() {
        panic!("invalid program spec: {e}");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let low = codegen::lower_with(spec, cfg, options, &mut rng);
    link::link_with(low, cfg, spec.lang, options)
}
