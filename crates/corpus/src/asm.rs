//! A tiny x86/x86-64 assembler for the corpus compiler.
//!
//! Emits exactly the instruction shapes real compilers produce around the
//! constructs that matter to function identification: CET markers, frame
//! prologues/epilogues, direct and indirect calls, `notrack` switch
//! dispatch, and a menu of deterministic filler instructions. Cross-unit
//! references are recorded as [`Fixup`]s and patched after layout.
//!
//! Every encoding emitted here is round-tripped through
//! `funseeker-disasm` in this module's tests, so the corpus can never
//! drift away from what the decoder understands.

use crate::arch::Arch;

/// What a fixup's displacement refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Entry address of emission unit `i` (function, fragment, thunk…).
    Unit(usize),
    /// `offset` bytes past the entry of unit `i`.
    UnitOffset(usize, usize),
    /// PLT stub `i` (in call order of discovery).
    Plt(usize),
    /// Byte offset into `.rodata`.
    Rodata(usize),
}

/// How the patch is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// 32-bit displacement relative to the end of the 4-byte field.
    Rel32,
    /// 32-bit absolute address.
    Abs32,
}

/// One pending reference inside a unit's code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixup {
    /// Byte offset of the 4-byte field within the unit.
    pub pos: usize,
    /// Patch style.
    pub kind: FixupKind,
    /// What the field refers to.
    pub target: Target,
}

/// Per-unit code emitter.
#[derive(Debug, Clone)]
pub struct Assembler {
    arch: Arch,
    /// Emitted bytes.
    pub code: Vec<u8>,
    /// Pending cross-unit references.
    pub fixups: Vec<Fixup>,
}

impl Assembler {
    /// Starts an empty unit for `arch`.
    pub fn new(arch: Arch) -> Self {
        Assembler { arch, code: Vec::new(), fixups: Vec::new() }
    }

    /// Current offset — usable as a label.
    pub fn here(&self) -> usize {
        self.code.len()
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    fn fixup32(&mut self, kind: FixupKind, target: Target) {
        self.fixups.push(Fixup { pos: self.code.len(), kind, target });
        self.emit(&[0, 0, 0, 0]);
    }

    /// Emits raw bytes (caller guarantees they decode).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.emit(bytes);
    }

    /// `jne rel32` to another unit — GCC's edge into a `.cold` fragment.
    pub fn jne_unit(&mut self, unit: usize) {
        self.emit(&[0x0f, 0x85]);
        self.fixup32(FixupKind::Rel32, Target::Unit(unit));
    }

    /// `endbr64` / `endbr32` per architecture.
    pub fn endbr(&mut self) {
        let bytes = self.arch.endbr();
        self.emit(&bytes);
    }

    /// Standard frame prologue (`push rbp; mov rbp, rsp; sub rsp, 0x20`)
    /// or the frameless `-O2` variant (`sub rsp, 0x18`).
    pub fn prologue(&mut self, frame_pointer: bool) {
        match (self.arch, frame_pointer) {
            (Arch::X64, true) => self.emit(&[0x55, 0x48, 0x89, 0xe5, 0x48, 0x83, 0xec, 0x20]),
            (Arch::X64, false) => self.emit(&[0x48, 0x83, 0xec, 0x18]),
            (Arch::X86, true) => self.emit(&[0x55, 0x89, 0xe5, 0x83, 0xec, 0x20]),
            (Arch::X86, false) => self.emit(&[0x83, 0xec, 0x18]),
        }
    }

    /// Matching epilogue, ending in `ret`.
    pub fn epilogue(&mut self, frame_pointer: bool) {
        match (self.arch, frame_pointer) {
            (Arch::X64, true) | (Arch::X86, true) => self.emit(&[0xc9, 0xc3]), // leave; ret
            (Arch::X64, false) => self.emit(&[0x48, 0x83, 0xc4, 0x18, 0xc3]),
            (Arch::X86, false) => self.emit(&[0x83, 0xc4, 0x18, 0xc3]),
        }
    }

    /// Epilogue that ends in a tail jump instead of `ret`.
    pub fn epilogue_tail_jmp(&mut self, frame_pointer: bool, target_unit: usize) {
        match (self.arch, frame_pointer) {
            (Arch::X64, true) | (Arch::X86, true) => self.emit(&[0xc9]),
            (Arch::X64, false) => self.emit(&[0x48, 0x83, 0xc4, 0x18]),
            (Arch::X86, false) => self.emit(&[0x83, 0xc4, 0x18]),
        }
        self.jmp_unit(target_unit);
    }

    /// `call rel32` to another unit.
    pub fn call_unit(&mut self, unit: usize) {
        self.emit(&[0xe8]);
        self.fixup32(FixupKind::Rel32, Target::Unit(unit));
    }

    /// `jmp rel32` to another unit (tail call / fragment edge).
    pub fn jmp_unit(&mut self, unit: usize) {
        self.emit(&[0xe9]);
        self.fixup32(FixupKind::Rel32, Target::Unit(unit));
    }

    /// `jmp rel32` back into a unit at a given offset (cold-fragment
    /// return edge).
    pub fn jmp_unit_offset(&mut self, unit: usize, offset: usize) {
        self.emit(&[0xe9]);
        self.fixup32(FixupKind::Rel32, Target::UnitOffset(unit, offset));
    }

    /// `call rel32` to PLT stub `i`.
    pub fn call_plt(&mut self, plt: usize) {
        self.emit(&[0xe8]);
        self.fixup32(FixupKind::Rel32, Target::Plt(plt));
    }

    /// Takes the address of a unit into `rax`/`eax`:
    /// x86-64 uses RIP-relative `lea`, x86 a 32-bit immediate `mov`.
    pub fn take_address(&mut self, unit: usize) {
        match self.arch {
            Arch::X64 => {
                self.emit(&[0x48, 0x8d, 0x05]); // lea rax, [rip+rel32]
                self.fixup32(FixupKind::Rel32, Target::Unit(unit));
            }
            Arch::X86 => {
                self.emit(&[0xb8]); // mov eax, imm32
                self.fixup32(FixupKind::Abs32, Target::Unit(unit));
            }
        }
    }

    /// `call rax` / `call eax` — indirect call through the pointer just
    /// taken.
    pub fn call_reg(&mut self) {
        self.emit(&[0xff, 0xd0]);
    }

    /// `test eax, eax; jne +skip` — the classic post-`setjmp` check.
    pub fn test_eax_jne(&mut self, skip: u8) {
        self.emit(&[0x85, 0xc0, 0x75, skip]);
    }

    /// `xor eax, eax` — common return-value zeroing.
    pub fn zero_eax(&mut self) {
        self.emit(&[0x31, 0xc0]);
    }

    /// `mov eax, imm32`.
    pub fn mov_eax_imm(&mut self, imm: u32) {
        self.emit(&[0xb8]);
        self.emit(&imm.to_le_bytes());
    }

    /// Unconditional short jump of `disp` bytes (intra-unit).
    pub fn jmp_short(&mut self, disp: i8) {
        self.emit(&[0xeb, disp as u8]);
    }

    /// `hlt`.
    pub fn hlt(&mut self) {
        self.emit(&[0xf4]);
    }

    /// `ud2`.
    pub fn ud2(&mut self) {
        self.emit(&[0x0f, 0x0b]);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.emit(&[0xc3]);
    }

    /// `mov ebx, [esp]; ret` — the body of `__x86.get_pc_thunk.bx`.
    pub fn pc_thunk_body(&mut self) {
        self.emit(&[0x8b, 0x1c, 0x24, 0xc3]);
    }

    /// Switch dispatch via `notrack jmp` (§II, Figure 1b).
    ///
    /// Emits the bounds check and the indirect dispatch; the jump table
    /// lives at `table` in `.rodata` with `cases` entries. Returns the
    /// *relative* entry width: 4-byte self-relative entries for the PIE
    /// x86-64 flavor, pointer-size absolute entries otherwise.
    pub fn switch_dispatch(&mut self, cases: usize, pie: bool, table: usize) -> SwitchStyle {
        debug_assert!((1..=127).contains(&cases));
        // cmp eax, cases-1 ; ja +N (skip the dispatch sequence)
        match (self.arch, pie) {
            (Arch::X64, true) => {
                self.emit(&[0x83, 0xf8, (cases - 1) as u8]);
                self.emit(&[0x77, 17]); // lea(7) + movsxd(4) + add(3) + notrack jmp(3)
                self.emit(&[0x48, 0x8d, 0x15]); // lea rdx, [rip+table]
                self.fixup32(FixupKind::Rel32, Target::Rodata(table));
                self.emit(&[0x48, 0x63, 0x04, 0x82]); // movsxd rax, [rdx+rax*4]
                self.emit(&[0x48, 0x01, 0xd0]); // add rax, rdx
                self.emit(&[0x3e, 0xff, 0xe0]); // notrack jmp rax
                SwitchStyle::RelativeToTable
            }
            (Arch::X64, false) => {
                self.emit(&[0x83, 0xf8, (cases - 1) as u8]);
                self.emit(&[0x77, 8]); // notrack jmp [rax*8+table] is 8 bytes
                self.emit(&[0x3e, 0xff, 0x24, 0xc5]);
                self.fixup32(FixupKind::Abs32, Target::Rodata(table));
                SwitchStyle::Absolute64
            }
            (Arch::X86, _) => {
                self.emit(&[0x83, 0xf8, (cases - 1) as u8]);
                self.emit(&[0x77, 8]); // notrack jmp [eax*4+table] is 8 bytes
                self.emit(&[0x3e, 0xff, 0x24, 0x85]);
                self.fixup32(FixupKind::Abs32, Target::Rodata(table));
                SwitchStyle::Absolute32
            }
        }
    }

    /// One filler instruction chosen by `selector`; deterministic and
    /// architecture-valid. Covers the common compiler vocabulary so the
    /// decoder is exercised broadly.
    pub fn filler(&mut self, selector: u64) {
        let imm = (selector >> 8) as u32 | 1;
        match selector % 14 {
            0 => self.mov_eax_imm(imm),
            1 => {
                self.emit(&[0xb9]); // mov ecx, imm32
                self.emit(&imm.to_le_bytes());
            }
            2 => self.emit(&[0x01, 0xc8]), // add eax, ecx
            3 => self.emit(&[0x31, 0xd2]), // xor edx, edx
            4 => match self.arch {
                Arch::X64 => self.emit(&[0x48, 0x8d, 0x45, 0xf8]), // lea rax, [rbp-8]
                Arch::X86 => self.emit(&[0x8d, 0x45, 0xf8]),       // lea eax, [ebp-8]
            },
            5 => self.emit(&[0x89, 0x45, 0xf8]), // mov [rbp-8], eax
            6 => self.emit(&[0x8b, 0x45, 0xf8]), // mov eax, [rbp-8]
            7 => self.emit(&[0x83, 0xf8, (imm & 0x7f) as u8]), // cmp eax, imm8
            8 => self.emit(&[0x0f, 0xb6, 0xc0]), // movzx eax, al
            9 => self.emit(&[0x85, 0xc0]),       // test eax, eax
            10 => self.emit(&[0x0f, 0xaf, 0xc1]), // imul eax, ecx
            11 => {
                // Conditional hop over a 2-byte instruction — realistic
                // if/else shape with a safe landing point.
                self.emit(&[0x74, 0x02, 0x31, 0xd2]); // je +2; xor edx, edx
            }
            12 => self.emit(&[0x0f, 0x28, 0xc1]), // movaps xmm0, xmm1
            _ => {
                // Unconditional hop over a 2-byte instruction — the
                // if/else join shape that floods J in configuration ③.
                self.emit(&[0xeb, 0x02, 0x01, 0xc8]); // jmp +2; add eax, ecx
            }
        }
    }

    /// 16-byte-alignment padding with the multi-byte NOPs GCC uses.
    pub fn align_pad(code: &mut Vec<u8>, align: usize) {
        while !code.len().is_multiple_of(align) {
            let gap = align - code.len() % align;
            let nop: &[u8] = match gap {
                1 => &[0x90],
                2 => &[0x66, 0x90],
                3 => &[0x0f, 0x1f, 0x00],
                4 => &[0x0f, 0x1f, 0x40, 0x00],
                5 => &[0x0f, 0x1f, 0x44, 0x00, 0x00],
                6 => &[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00],
                7 => &[0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00],
                _ => &[0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
            };
            code.extend_from_slice(nop);
        }
    }
}

/// Jump-table entry format produced by [`Assembler::switch_dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchStyle {
    /// 4-byte entries holding `case_addr - table_addr`.
    RelativeToTable,
    /// 8-byte absolute case addresses.
    Absolute64,
    /// 4-byte absolute case addresses.
    Absolute32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_disasm::{sweep_all, InsnKind};

    /// Decodes everything an assembler emitted and asserts full coverage
    /// (no decode errors, no gaps).
    fn assert_clean(asm: &Assembler) -> Vec<funseeker_disasm::Insn> {
        let mut code = asm.code.clone();
        // Patch fixup holes with harmless displacement values so branch
        // decoding has something to chew on.
        for f in &asm.fixups {
            code[f.pos..f.pos + 4].copy_from_slice(&0x10u32.to_le_bytes());
        }
        let swept = sweep_all(&code, 0x1000, asm.arch.mode());
        let insns = swept.to_insns();
        assert_eq!(swept.error_count, 0, "decode errors in emitted code");
        let mut expect = 0x1000u64;
        for i in &insns {
            assert_eq!(i.addr, expect, "gap or overlap at {expect:#x}");
            expect = i.end();
        }
        assert_eq!(expect, 0x1000 + code.len() as u64, "trailing undecoded bytes");
        insns
    }

    #[test]
    fn full_function_shape_decodes_cleanly_x64() {
        let mut a = Assembler::new(Arch::X64);
        a.endbr();
        a.prologue(true);
        for s in 0..40 {
            a.filler(s * 2654435761);
        }
        a.call_unit(3);
        a.call_plt(0);
        a.take_address(2);
        a.call_reg();
        a.test_eax_jne(4);
        a.switch_dispatch(5, true, 0);
        a.zero_eax();
        a.epilogue(true);
        let insns = assert_clean(&a);
        assert!(insns.iter().any(|i| i.kind == InsnKind::Endbr64));
        assert!(insns.iter().any(|i| matches!(i.kind, InsnKind::JmpInd { notrack: true })));
        assert!(insns.iter().any(|i| matches!(i.kind, InsnKind::Ret)));
    }

    #[test]
    fn full_function_shape_decodes_cleanly_x86() {
        let mut a = Assembler::new(Arch::X86);
        a.endbr();
        a.prologue(false);
        for s in 0..40 {
            a.filler(s * 0x9e3779b9);
        }
        a.call_unit(1);
        a.take_address(1);
        a.call_reg();
        a.switch_dispatch(7, false, 16);
        a.epilogue(false);
        let insns = assert_clean(&a);
        assert!(insns.iter().any(|i| i.kind == InsnKind::Endbr32));
        assert!(insns.iter().any(|i| matches!(i.kind, InsnKind::JmpInd { notrack: true })));
    }

    #[test]
    fn switch_dispatch_ja_skips_exactly_the_dispatch() {
        // The `ja` displacement must land exactly past the notrack jmp for
        // all three styles, or the fall-through default case would start
        // mid-instruction.
        for (arch, pie) in [(Arch::X64, true), (Arch::X64, false), (Arch::X86, false)] {
            let mut a = Assembler::new(arch);
            let start = a.here();
            a.switch_dispatch(4, pie, 0);
            let end = a.here();
            // The ja is always at start+3 with an 8-bit displacement at
            // start+4; its target must be `end`.
            let ja_end = start + 5;
            let disp = a.code[start + 4] as usize;
            assert_eq!(ja_end + disp, end, "arch {arch:?} pie {pie}");
        }
    }

    #[test]
    fn every_filler_variant_decodes_on_both_arches() {
        for arch in [Arch::X86, Arch::X64] {
            for v in 0..14u64 {
                let mut a = Assembler::new(arch);
                a.filler(v + (v << 13) + 0xabcd00);
                assert_clean(&a);
            }
        }
    }

    #[test]
    fn alignment_padding_is_all_nops() {
        for target in 1..=16usize {
            let mut code = vec![0u8; target];
            Assembler::align_pad(&mut code, 16);
            assert_eq!(code.len() % 16, 0);
            let pad = &code[target..];
            if pad.is_empty() {
                continue;
            }
            let insns = sweep_all(pad, 0, funseeker_disasm::Mode::Bits64).to_insns();
            assert!(insns.iter().all(|i| i.kind == InsnKind::Nop), "pad for {target}: {insns:?}");
        }
    }

    #[test]
    fn fixups_record_positions() {
        let mut a = Assembler::new(Arch::X64);
        a.call_unit(9);
        assert_eq!(a.fixups.len(), 1);
        assert_eq!(a.fixups[0].pos, 1);
        assert_eq!(a.fixups[0].target, Target::Unit(9));
        assert_eq!(a.fixups[0].kind, FixupKind::Rel32);
        assert_eq!(a.code.len(), 5);
    }

    #[test]
    fn pc_thunk_decodes() {
        let mut a = Assembler::new(Arch::X86);
        a.pc_thunk_body();
        let insns = assert_clean(&a);
        assert_eq!(insns.last().unwrap().kind, InsnKind::Ret);
    }
}
