//! Lowering: [`ProgramSpec`] → emission units with fixups.
//!
//! This is the corpus "compiler middle end". It turns each function spec
//! into machine code following the modeled compiler's CET emission rules,
//! synthesizes the entities a real toolchain adds (`_start`, x86 PIC
//! thunks, `.cold`/`.part` fragments), and records everything the linker
//! stage and the ground truth need.

use rand::rngs::StdRng;
use rand::Rng;

use crate::arch::Arch;
use crate::asm::{Assembler, Fixup, SwitchStyle};
use crate::config::{BuildConfig, Compiler};
use crate::spec::{Lang, Linkage, ProgramSpec};

/// One jump-table entry to patch into `.rodata` after layout.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TableEntry {
    /// Where the entry bytes live in `.rodata`.
    pub rodata_off: usize,
    /// Table base offset (for self-relative entries).
    pub table_off: usize,
    /// Unit whose label the entry points at.
    pub unit: usize,
    /// Label offset within that unit.
    pub label_off: usize,
    /// Entry format.
    pub style: SwitchStyle,
}

/// One LSDA call-site record in unit-relative terms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PadSite {
    /// Protected-region start offset.
    pub start: usize,
    /// Protected-region length.
    pub len: usize,
    /// Landing-pad offset within the unit.
    pub pad_off: usize,
}

/// One emission unit: a function, fragment, or synthesized entity.
#[derive(Debug, Clone)]
pub(crate) struct Unit {
    pub name: String,
    pub code: Vec<u8>,
    pub fixups: Vec<Fixup>,
    pub tables: Vec<TableEntry>,
    pub pad_sites: Vec<PadSite>,
    /// Offsets of end-branches following indirect-return call sites.
    pub setjmp_endbrs: Vec<usize>,
    pub endbr: bool,
    pub is_part: bool,
    pub is_thunk: bool,
    pub is_start: bool,
    pub has_symbol: bool,
    pub dead: bool,
    pub is_static: bool,
}

impl Unit {
    fn new(name: impl Into<String>) -> Self {
        Unit {
            name: name.into(),
            code: Vec::new(),
            fixups: Vec::new(),
            tables: Vec::new(),
            pad_sites: Vec::new(),
            setjmp_endbrs: Vec::new(),
            endbr: false,
            is_part: false,
            is_thunk: false,
            is_start: false,
            has_symbol: true,
            dead: false,
            is_static: false,
        }
    }
}

/// Result of lowering one program for one configuration.
#[derive(Debug, Clone)]
pub(crate) struct Lowered {
    pub units: Vec<Unit>,
    pub rodata: Vec<u8>,
    /// Imported function names, in PLT slot order.
    pub imports: Vec<String>,
    pub start_unit: usize,
}

/// The `setjmp` family GCC treats as indirect-return functions
/// ([gcc/calls.c `special_function_p`]) — FILTERENDBR's match list.
pub const INDIRECT_RETURN_FUNCTIONS: &[&str] =
    &["setjmp", "_setjmp", "sigsetjmp", "__sigsetjmp", "vfork", "getcontext", "savectx"];

struct LowerCtx<'a> {
    cfg: BuildConfig,
    options: crate::EmissionOptions,
    /// Under `-mmanual-endbr`: whether each function keeps its marker.
    manual_endbr_keep: Vec<bool>,
    spec: &'a ProgramSpec,
    imports: Vec<String>,
    rodata: Vec<u8>,
    /// Fragment unit index per spec function (when split).
    frag_of: Vec<Option<usize>>,
    /// (parent unit, resume offset) recorded while lowering parents.
    frag_resume: Vec<Option<(usize, usize)>>,
    thunk_unit: Option<usize>,
}

impl LowerCtx<'_> {
    fn import(&mut self, name: &str) -> usize {
        if let Some(i) = self.imports.iter().position(|n| n == name) {
            return i;
        }
        self.imports.push(name.to_owned());
        self.imports.len() - 1
    }
}

/// Lowers `spec` for `cfg`, using `rng` for all layout randomness.
pub(crate) fn lower_with(
    spec: &ProgramSpec,
    cfg: BuildConfig,
    options: crate::EmissionOptions,
    rng: &mut StdRng,
) -> Lowered {
    let n = spec.functions.len();
    let arch = cfg.arch;

    // Pre-assign indices: spec functions, then fragments, thunk, _start.
    let splits = cfg.compiler == Compiler::Gcc && cfg.opt.splits_cold();
    let mut frag_of = vec![None; n];
    let mut next = n;
    for (i, f) in spec.functions.iter().enumerate() {
        if f.cold_part && splits {
            frag_of[i] = Some(next);
            next += 1;
        }
    }
    let thunk_unit = if arch == Arch::X86 && cfg.pie {
        let u = next;
        next += 1;
        Some(u)
    } else {
        None
    };
    let start_unit = next;

    // Under -mmanual-endbr (§VI): a function keeps its end-branch only
    // when it is an indirect-branch target — address-taken, or exported
    // without any in-binary direct reference (its address can escape
    // across DSO boundaries, so the programmer must annotate it).
    let manual_endbr_keep: Vec<bool> = (0..n)
        .map(|i| {
            let f = &spec.functions[i];
            if f.no_endbr_intrinsic || f.dead {
                return f.address_taken;
            }
            let referenced =
                spec.functions.iter().any(|g| g.calls.contains(&i) || g.tail_call == Some(i));
            f.address_taken || (f.linkage == Linkage::External && !referenced)
        })
        .collect();

    let mut ctx = LowerCtx {
        cfg,
        options,
        manual_endbr_keep,
        spec,
        imports: Vec::new(),
        rodata: Vec::new(),
        frag_of,
        frag_resume: vec![None; n],
        thunk_unit,
    };

    // Seed .rodata with a few strings, like a real binary's literals.
    ctx.rodata.extend_from_slice(spec.name.as_bytes());
    ctx.rodata.push(0);
    ctx.rodata.extend_from_slice(b"usage: %s [options]\0");
    while !ctx.rodata.len().is_multiple_of(8) {
        ctx.rodata.push(0);
    }

    // Distribute address-taking: each address-taken function gets one
    // live taker (main by default, sometimes another live function).
    let main_idx = spec.main_index().expect("validated spec has main");
    let live: Vec<usize> = (0..n).filter(|&i| !spec.functions[i].dead).collect();
    let mut takes: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in spec.functions.iter().enumerate() {
        if f.address_taken && !f.dead {
            let taker = if rng.gen_bool(0.6) || live.len() <= 1 {
                main_idx
            } else {
                loop {
                    let t = live[rng.gen_range(0..live.len())];
                    if t != i {
                        break t;
                    }
                }
            };
            takes[taker].push(i);
        }
    }

    let mut units: Vec<Unit> = Vec::with_capacity(start_unit + 1);
    for (i, takes_i) in takes.iter().enumerate().take(n) {
        units.push(lower_function(&mut ctx, i, takes_i, rng));
    }
    // Fragments (resume offsets are now known).
    for i in 0..n {
        if let Some(frag_idx) = ctx.frag_of[i] {
            debug_assert_eq!(units.len(), frag_idx);
            units.push(lower_fragment(&mut ctx, i, rng));
        }
    }
    if let Some(t) = ctx.thunk_unit {
        debug_assert_eq!(units.len(), t);
        let mut u = Unit::new("__x86.get_pc_thunk.bx");
        let mut a = Assembler::new(arch);
        a.pc_thunk_body();
        u.code = a.code;
        u.is_thunk = true;
        u.is_static = true;
        // §V-A1: compilers sometimes omit the thunk's symbol.
        u.has_symbol = rng.gen_bool(0.75);
        units.push(u);
    }
    // _start: references main by address and enters libc.
    {
        debug_assert_eq!(units.len(), start_unit);
        let mut u = Unit::new("_start");
        let mut a = Assembler::new(arch);
        a.endbr();
        a.take_address(main_idx);
        let libc = ctx.import("__libc_start_main");
        a.call_plt(libc);
        a.hlt();
        u.code = a.code;
        u.fixups = a.fixups;
        u.endbr = true;
        u.is_start = true;
        units.push(u);
    }

    Lowered { units, rodata: ctx.rodata, imports: ctx.imports, start_unit }
}

fn lower_function(ctx: &mut LowerCtx<'_>, idx: usize, takes: &[usize], rng: &mut StdRng) -> Unit {
    let f = ctx.spec.functions[idx].clone();
    let cfg = ctx.cfg;
    let mut u = Unit::new(f.name.clone());
    u.dead = f.dead;
    u.is_static = f.linkage == Linkage::Static;

    let mut a = Assembler::new(cfg.arch);
    let endbr = if ctx.options.manual_endbr { ctx.manual_endbr_keep[idx] } else { f.gets_endbr() };
    if endbr {
        a.endbr();
    }
    u.endbr = endbr;
    let fp = cfg.opt.frame_pointer();
    a.prologue(fp);
    let body_start = a.here();

    // x86 PIE functions load the GOT pointer through the thunk.
    if let Some(t) = ctx.thunk_unit {
        if rng.gen_bool(0.5) {
            a.call_unit(t);
            // add ebx, imm32 — the classic GOT adjustment after the thunk.
            a.raw(&[0x81, 0xc3]);
            a.raw(&0x2f00u32.to_le_bytes());
        }
    }

    let fillers = ((f.body_size as f64) * cfg.opt.size_factor()).round().max(2.0) as usize;
    let mut filler_budget = fillers;
    let mut spend = |a: &mut Assembler, rng: &mut StdRng, n: usize| {
        for _ in 0..n.min(filler_budget) {
            a.filler(rng.gen());
        }
        filler_budget = filler_budget.saturating_sub(n);
    };

    spend(&mut a, rng, fillers / 3);

    // Cold-fragment edge. GCC reaches fragments three ways: a direct
    // call (the paper's 42.9% FP class), a conditional branch, or a
    // skip-guarded unconditional jump (what crude tail-call heuristics
    // misread as a tail call — the 57.1% FP class).
    if ctx.frag_of[idx].is_some() {
        let frag = ctx.frag_of[idx].unwrap();
        if f.part_called {
            a.call_unit(frag);
        } else if rng.gen_bool(0.5) {
            a.raw(&[0x85, 0xc0]); // test eax, eax
            a.jne_unit(frag);
        } else {
            a.raw(&[0x85, 0xc0]); // test eax, eax
            a.raw(&[0x74, 0x05]); // je +5 — skip the unconditional jmp
            a.jmp_unit(frag);
        }
        ctx.frag_resume[idx] = Some((idx, a.here()));
    }

    // setjmp-family call followed by an end-branch (§III-B2).
    if f.setjmp {
        let name = INDIRECT_RETURN_FUNCTIONS[rng.gen_range(0..INDIRECT_RETURN_FUNCTIONS.len())];
        let plt = ctx.import(name);
        a.call_plt(plt);
        u.setjmp_endbrs.push(a.here());
        a.endbr();
        a.test_eax_jne(2);
        a.zero_eax();
    }

    // Direct calls, PLT calls, address-takes, interleaved with filler.
    for &callee in &f.calls {
        a.call_unit(callee);
        spend(&mut a, rng, 2);
    }
    for name in &f.plt_calls {
        let plt = ctx.import(name);
        a.call_plt(plt);
        spend(&mut a, rng, 1);
    }
    for &taken in takes {
        a.take_address(taken);
        a.call_reg();
        spend(&mut a, rng, 1);
    }

    // Switch dispatch through a notrack jmp + jump table (§II Fig. 1).
    if f.switch_cases > 0 {
        let cases = f.switch_cases.clamp(2, 10);
        let width = match (cfg.arch, cfg.pie) {
            (Arch::X64, true) => 4,
            (Arch::X64, false) => 8,
            (Arch::X86, _) => 4,
        };
        while !ctx.rodata.len().is_multiple_of(8) {
            ctx.rodata.push(0);
        }
        let table_off = ctx.rodata.len();
        ctx.rodata.resize(table_off + cases * width, 0);

        let style = a.switch_dispatch(cases, cfg.pie, table_off);
        // Default block (the `ja` target), skipping the case blocks.
        a.mov_eax_imm(0xdef);
        a.jmp_short((cases * 7) as i8);
        // Case blocks: 7 bytes each (mov eax, k ; jmp end).
        for k in 0..cases {
            let label = a.here();
            a.mov_eax_imm(k as u32);
            a.jmp_short(((cases - 1 - k) * 7) as i8);
            u.tables.push(TableEntry {
                rodata_off: table_off + k * width,
                table_off,
                unit: idx,
                label_off: label,
                style,
            });
        }
    }

    spend(&mut a, rng, usize::MAX); // whatever filler budget remains

    let body_end = a.here();
    match f.tail_call {
        Some(t) if cfg.opt.tail_calls() => a.epilogue_tail_jmp(fp, t),
        Some(t) => {
            // -O0: no sibling-call optimization — the tail call degrades
            // to an ordinary call followed by the normal epilogue.
            a.call_unit(t);
            a.epilogue(fp);
        }
        None => {
            a.zero_eax();
            a.epilogue(fp);
        }
    }

    // C++ landing pads after the return (§III-B3).
    if ctx.spec.lang == Lang::Cpp && f.landing_pads > 0 {
        let pads = f.landing_pads.min(4);
        let region = (body_end - body_start).max(pads);
        let chunk = region / pads;
        let unwind = ctx.import("_Unwind_Resume");
        for p in 0..pads {
            let pad_off = a.here();
            a.endbr();
            a.filler(rng.gen());
            a.call_plt(unwind);
            u.pad_sites.push(PadSite { start: body_start + p * chunk, len: chunk.max(1), pad_off });
        }
    }

    u.code = a.code;
    u.fixups = a.fixups;
    u
}

fn lower_fragment(ctx: &mut LowerCtx<'_>, parent: usize, rng: &mut StdRng) -> Unit {
    let f = &ctx.spec.functions[parent];
    let suffix = if rng.gen_bool(0.5) { ".cold" } else { ".part.0" };
    let mut u = Unit::new(format!("{}{}", f.name, suffix));
    u.is_part = true;
    u.is_static = true;

    let mut a = Assembler::new(ctx.cfg.arch);
    // Fragments never get an end-branch: they are reached by direct
    // branches only.
    for _ in 0..rng.gen_range(2..6) {
        a.filler(rng.gen());
    }
    if f.part_called {
        a.ret();
    } else {
        let (p, resume) = ctx.frag_resume[parent].expect("parent lowered before fragment");
        a.jmp_unit_offset(p, resume);
    }
    u.code = a.code;
    u.fixups = a.fixups;
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use crate::spec::FunctionSpec;
    use rand::SeedableRng;

    fn cfg64() -> BuildConfig {
        BuildConfig { compiler: Compiler::Gcc, arch: Arch::X64, opt: OptLevel::O2, pie: true }
    }

    fn program() -> ProgramSpec {
        let mut main = FunctionSpec::named("main");
        main.calls = vec![1, 2];
        main.switch_cases = 4;
        main.setjmp = true;
        let mut helper = FunctionSpec::named("helper");
        helper.linkage = Linkage::Static;
        helper.cold_part = true;
        let mut cb = FunctionSpec::named("callback");
        cb.linkage = Linkage::Static;
        cb.address_taken = true;
        ProgramSpec { name: "demo".into(), lang: Lang::C, functions: vec![main, helper, cb] }
    }

    #[test]
    fn lowering_produces_expected_units() {
        let spec = program();
        let mut rng = StdRng::seed_from_u64(7);
        let low = lower_with(&spec, cfg64(), crate::EmissionOptions::default(), &mut rng);
        // 3 functions + 1 fragment + _start (no thunk on x64).
        assert_eq!(low.units.len(), 5);
        assert_eq!(low.units[0].name, "main");
        assert!(low.units[3].is_part);
        assert!(low.units[3].name.starts_with("helper."));
        assert!(low.units[4].is_start);
        // main called setjmp → one recorded post-call endbr.
        assert_eq!(low.units[0].setjmp_endbrs.len(), 1);
        // Jump table recorded for the switch.
        assert_eq!(low.units[0].tables.len(), 4);
        // Imports include a setjmp-family function and libc entry.
        assert!(low.imports.iter().any(|n| INDIRECT_RETURN_FUNCTIONS.contains(&n.as_str())));
        assert!(low.imports.iter().any(|n| n == "__libc_start_main"));
    }

    #[test]
    fn endbr_follows_linkage_rules() {
        let spec = program();
        let mut rng = StdRng::seed_from_u64(7);
        let low = lower_with(&spec, cfg64(), crate::EmissionOptions::default(), &mut rng);
        assert!(low.units[0].endbr, "main is extern");
        assert!(!low.units[1].endbr, "static helper has no endbr");
        assert!(low.units[2].endbr, "address-taken static has endbr");
        assert!(!low.units[3].endbr, "fragments never have endbr");
        assert!(low.units[4].endbr, "_start has endbr");
    }

    #[test]
    fn x86_pie_gets_thunk_unit() {
        let spec = program();
        let cfg =
            BuildConfig { compiler: Compiler::Gcc, arch: Arch::X86, opt: OptLevel::O0, pie: true };
        let mut rng = StdRng::seed_from_u64(3);
        let low = lower_with(&spec, cfg, crate::EmissionOptions::default(), &mut rng);
        let thunks: Vec<_> = low.units.iter().filter(|u| u.is_thunk).collect();
        assert_eq!(thunks.len(), 1);
        assert_eq!(thunks[0].name, "__x86.get_pc_thunk.bx");
        // O0 does not split cold fragments.
        assert!(low.units.iter().all(|u| !u.is_part));
    }

    #[test]
    fn clang_never_splits_fragments() {
        let spec = program();
        let cfg = BuildConfig {
            compiler: Compiler::Clang,
            arch: Arch::X64,
            opt: OptLevel::O3,
            pie: false,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let low = lower_with(&spec, cfg, crate::EmissionOptions::default(), &mut rng);
        assert!(low.units.iter().all(|u| !u.is_part));
    }

    #[test]
    fn cpp_landing_pads_are_recorded() {
        let mut spec = program();
        spec.lang = Lang::Cpp;
        spec.functions[0].landing_pads = 2;
        let mut rng = StdRng::seed_from_u64(11);
        let low = lower_with(&spec, cfg64(), crate::EmissionOptions::default(), &mut rng);
        assert_eq!(low.units[0].pad_sites.len(), 2);
        assert!(low.imports.iter().any(|n| n == "_Unwind_Resume"));
        // Each pad offset points at an end-branch in the code.
        for site in &low.units[0].pad_sites {
            assert_eq!(&low.units[0].code[site.pad_off..site.pad_off + 4], &cfg64().arch.endbr());
        }
    }

    #[test]
    fn lowering_is_deterministic_per_seed() {
        let spec = program();
        let a = lower_with(
            &spec,
            cfg64(),
            crate::EmissionOptions::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let b = lower_with(
            &spec,
            cfg64(),
            crate::EmissionOptions::default(),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(a.units.len(), b.units.len());
        for (x, y) in a.units.iter().zip(&b.units) {
            assert_eq!(x.code, y.code);
            assert_eq!(x.name, y.name);
        }
        assert_eq!(a.rodata, b.rodata);
        assert_eq!(a.imports, b.imports);
    }
}
