//! Target architecture descriptors.

use funseeker_disasm::Mode;
use funseeker_elf::{Class, Machine};

/// The two architectures of the study (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 32-bit x86.
    X86,
    /// 64-bit x86-64.
    X64,
}

impl Arch {
    /// Decode mode for this architecture.
    pub fn mode(self) -> Mode {
        match self {
            Arch::X86 => Mode::Bits32,
            Arch::X64 => Mode::Bits64,
        }
    }

    /// ELF class.
    pub fn class(self) -> Class {
        match self {
            Arch::X86 => Class::Elf32,
            Arch::X64 => Class::Elf64,
        }
    }

    /// ELF machine.
    pub fn machine(self) -> Machine {
        match self {
            Arch::X86 => Machine::X86,
            Arch::X64 => Machine::X86_64,
        }
    }

    /// Conventional image base for non-PIE executables.
    pub fn exec_base(self) -> u64 {
        match self {
            Arch::X86 => 0x0804_8000,
            Arch::X64 => 0x0040_0000,
        }
    }

    /// Conventional load base for PIEs (link-time addresses).
    pub fn pie_base(self) -> u64 {
        0x1000
    }

    /// The end-branch marker bytes for this architecture.
    pub fn endbr(self) -> [u8; 4] {
        match self {
            Arch::X86 => [0xf3, 0x0f, 0x1e, 0xfb], // endbr32
            Arch::X64 => [0xf3, 0x0f, 0x1e, 0xfa], // endbr64
        }
    }

    /// Pointer width in bytes.
    pub fn ptr_size(self) -> usize {
        match self {
            Arch::X86 => 4,
            Arch::X64 => 8,
        }
    }

    /// Short label used in tables ("x86" / "x64").
    pub fn label(self) -> &'static str {
        match self {
            Arch::X86 => "x86",
            Arch::X64 => "x64",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_consistency() {
        assert_eq!(Arch::X64.mode(), Mode::Bits64);
        assert_eq!(Arch::X86.mode(), Mode::Bits32);
        assert_eq!(Arch::X64.class(), Class::Elf64);
        assert_eq!(Arch::X86.class(), Class::Elf32);
        assert_eq!(Arch::X64.ptr_size(), 8);
        assert_eq!(Arch::X86.ptr_size(), 4);
        assert_eq!(Arch::X64.endbr()[3], 0xfa);
        assert_eq!(Arch::X86.endbr()[3], 0xfb);
        assert!(Arch::X86.exec_base() > 0x800_0000);
        assert_eq!(Arch::X64.label(), "x64");
    }
}
