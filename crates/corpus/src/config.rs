//! Build configurations: compiler × architecture × optimization × PIE.

use crate::arch::Arch;

/// The compiler whose CET emission behavior a binary models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compiler {
    /// GCC 10-style emission: FDEs for every function, `.plt.sec` second
    /// PLT, `.cold`/`.part` fragment extraction at higher `-O` levels.
    Gcc,
    /// Clang 13-style emission: single `.plt`, **no FDEs for x86 C
    /// code** (the paper's key FETCH/Ghidra failure mode), no fragment
    /// extraction.
    Clang,
}

impl Compiler {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Compiler::Gcc => "GCC",
            Compiler::Clang => "Clang",
        }
    }
}

/// Optimization level (§III-A: six levels per compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// `-O0`
    O0,
    /// `-O1`
    O1,
    /// `-O2`
    O2,
    /// `-O3`
    O3,
    /// `-Os`
    Os,
    /// `-Ofast`
    Ofast,
}

impl OptLevel {
    /// All six levels in the study's order.
    pub const ALL: [OptLevel; 6] =
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os, OptLevel::Ofast];

    /// Whether the optimizer keeps frame pointers (`-O0`/`-O1` here).
    pub fn frame_pointer(self) -> bool {
        matches!(self, OptLevel::O0 | OptLevel::O1)
    }

    /// Whether hot/cold splitting (`.cold` / `.part` fragments) can
    /// happen at this level.
    pub fn splits_cold(self) -> bool {
        !matches!(self, OptLevel::O0 | OptLevel::O1)
    }

    /// Whether sibling-call optimization (direct tail calls) is on.
    pub fn tail_calls(self) -> bool {
        !matches!(self, OptLevel::O0)
    }

    /// Rough body-size multiplier relative to `-O2` (O0 code is bloated).
    pub fn size_factor(self) -> f64 {
        match self {
            OptLevel::O0 => 1.8,
            OptLevel::O1 => 1.2,
            OptLevel::O2 => 1.0,
            OptLevel::O3 | OptLevel::Ofast => 1.15,
            OptLevel::Os => 0.8,
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Os => "Os",
            OptLevel::Ofast => "Ofast",
        }
    }
}

/// One point in the build-configuration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildConfig {
    /// Modeled compiler.
    pub compiler: Compiler,
    /// Target architecture.
    pub arch: Arch,
    /// Optimization level.
    pub opt: OptLevel,
    /// Position-independent executable?
    pub pie: bool,
}

impl BuildConfig {
    /// The paper's 24-configuration grid (2 compilers × 2 archs × 6 opt
    /// levels), with PIE alternating so both flavors are covered across
    /// the grid as in §III-A.
    pub fn grid() -> Vec<BuildConfig> {
        let mut out = Vec::with_capacity(24);
        for compiler in [Compiler::Gcc, Compiler::Clang] {
            for arch in [Arch::X86, Arch::X64] {
                for (i, &opt) in OptLevel::ALL.iter().enumerate() {
                    out.push(BuildConfig { compiler, arch, opt, pie: i % 2 == 1 });
                }
            }
        }
        out
    }

    /// The full 48-way grid including both PIE flavors everywhere.
    pub fn full_grid() -> Vec<BuildConfig> {
        let mut out = Vec::with_capacity(48);
        for compiler in [Compiler::Gcc, Compiler::Clang] {
            for arch in [Arch::X86, Arch::X64] {
                for &opt in &OptLevel::ALL {
                    for pie in [false, true] {
                        out.push(BuildConfig { compiler, arch, opt, pie });
                    }
                }
            }
        }
        out
    }

    /// Image base address for this configuration.
    pub fn base(self) -> u64 {
        if self.pie {
            self.arch.pie_base()
        } else {
            self.arch.exec_base()
        }
    }

    /// Whether this configuration emits FDE records for C functions.
    ///
    /// Models the paper's observation that Clang does not create an FDE
    /// for every function in 32-bit C binaries (§IV-C, §V-C).
    pub fn emits_c_fdes(self) -> bool {
        !(self.compiler == Compiler::Clang && self.arch == Arch::X86)
    }

    /// Compact label like `GCC-x64-O2-pie`.
    pub fn label(self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.compiler.label(),
            self.arch.label(),
            self.opt.label(),
            if self.pie { "pie" } else { "nopie" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_24_unique_points() {
        let g = BuildConfig::grid();
        assert_eq!(g.len(), 24);
        let mut set = std::collections::HashSet::new();
        for c in &g {
            assert!(set.insert((c.compiler, c.arch, c.opt)));
        }
        // Both PIE flavors appear.
        assert!(g.iter().any(|c| c.pie));
        assert!(g.iter().any(|c| !c.pie));
    }

    #[test]
    fn full_grid_has_48_points() {
        assert_eq!(BuildConfig::full_grid().len(), 48);
    }

    #[test]
    fn clang_x86_suppresses_c_fdes() {
        let mut cfg = BuildConfig {
            compiler: Compiler::Clang,
            arch: Arch::X86,
            opt: OptLevel::O2,
            pie: false,
        };
        assert!(!cfg.emits_c_fdes());
        cfg.arch = Arch::X64;
        assert!(cfg.emits_c_fdes());
        cfg.compiler = Compiler::Gcc;
        cfg.arch = Arch::X86;
        assert!(cfg.emits_c_fdes());
    }

    #[test]
    fn opt_level_knobs() {
        assert!(OptLevel::O0.frame_pointer());
        assert!(!OptLevel::O2.frame_pointer());
        assert!(OptLevel::O2.splits_cold());
        assert!(!OptLevel::O1.splits_cold());
        assert!(!OptLevel::O0.tail_calls());
        assert!(OptLevel::Os.size_factor() < OptLevel::O0.size_factor());
    }

    #[test]
    fn labels_are_stable() {
        let cfg =
            BuildConfig { compiler: Compiler::Gcc, arch: Arch::X64, opt: OptLevel::O2, pie: true };
        assert_eq!(cfg.label(), "GCC-x64-O2-pie");
        assert_eq!(cfg.base(), 0x1000);
        let cfg = BuildConfig {
            compiler: Compiler::Clang,
            arch: Arch::X86,
            opt: OptLevel::Os,
            pie: false,
        };
        assert_eq!(cfg.label(), "Clang-x86-Os-nopie");
        assert_eq!(cfg.base(), 0x0804_8000);
    }
}
