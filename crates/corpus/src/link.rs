//! The corpus "linker": lays out sections, synthesizes the PLT/GOT,
//! patches fixups, emits exception metadata, and assembles the final ELF.

use funseeker_eh::{EhFrameBuilder, ExceptTableBuilder, LsdaBuilder};
use funseeker_elf::section::{SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE};
use funseeker_elf::{
    reloc, Class, ElfBuilder, ObjectType, Reloc, Symbol, SymbolBinding, SymbolType,
};

use crate::arch::Arch;
use crate::asm::{FixupKind, SwitchStyle, Target};
use crate::codegen::Lowered;
use crate::config::{BuildConfig, Compiler};
use crate::spec::Lang;
use crate::truth::{CallEdgeKind, CallEdgeTruth, FunctionTruth, GroundTruth};

/// PLT stub size used by both modeled compilers.
const PLT_ENTSIZE: u64 = 16;

/// Result of linking one lowered program.
#[derive(Debug, Clone)]
pub struct LinkedBinary {
    /// The complete ELF image.
    pub bytes: Vec<u8>,
    /// Exact ground truth for evaluation.
    pub truth: GroundTruth,
}

/// Lays out and links a lowered program.
pub(crate) fn link_with(
    mut low: Lowered,
    cfg: BuildConfig,
    lang: Lang,
    options: crate::EmissionOptions,
) -> LinkedBinary {
    let arch = cfg.arch;
    let base = cfg.base();
    let ptr = arch.ptr_size() as u64;
    let nplt = low.imports.len() as u64;

    // ---- section address assignment ----
    // Order: .dynsym .dynstr .rel(a).plt | .plt [.plt.sec] .text | .rodata
    // .gcc_except_table .eh_frame | .got.plt — with page-ish gaps between
    // permission groups, the way linkers place them.
    let mut cursor = base + 0x400;
    let align_to = |c: u64, a: u64| c.div_ceil(a) * a;

    // CET capability note — what marks the output as a CET-enabled
    // binary to loaders and analysis tools (§II).
    let note_addr = cursor;
    let note_bytes = funseeker_elf::build_cet_note(
        arch.class() == Class::Elf64,
        funseeker_elf::CetProperties { ibt: true, shstk: true },
    );
    cursor = align_to(note_addr + note_bytes.len() as u64, 8);

    let dynsym_addr = cursor;
    let dynsym_size = (nplt + 1) * arch.class().sym_size() as u64;
    cursor = dynsym_addr + dynsym_size;
    let dynstr_addr = cursor;
    let dynstr_size: u64 = low.imports.iter().map(|n| n.len() as u64 + 1).sum::<u64>() + 1;
    cursor = dynstr_addr + dynstr_size;
    let relplt_addr = align_to(cursor, 8);
    let relplt_entsize = if arch.class() == Class::Elf64 {
        arch.class().rela_size() as u64
    } else {
        arch.class().rel_size() as u64
    };
    cursor = relplt_addr + nplt * relplt_entsize;

    // Executable group.
    cursor = align_to(cursor, 0x1000);
    let plt_addr = cursor;
    let plt_size = (nplt + 1) * PLT_ENTSIZE;
    cursor = plt_addr + plt_size;
    let (plt_sec_addr, plt_sec_size) = if cfg.compiler == Compiler::Gcc && nplt > 0 {
        let a = align_to(cursor, 16);
        (Some(a), nplt * PLT_ENTSIZE)
    } else {
        (None, 0)
    };
    if let Some(a) = plt_sec_addr {
        cursor = a + plt_sec_size;
    }
    let text_addr = align_to(cursor, 16);

    // Unit placement inside .text.
    let mut unit_addrs = Vec::with_capacity(low.units.len());
    let mut ucursor = text_addr;
    for u in &low.units {
        ucursor = align_to(ucursor, 16);
        unit_addrs.push(ucursor);
        ucursor += u.code.len() as u64;
    }
    let text_end = ucursor;
    let text_size = text_end - text_addr;

    // Read-only data group.
    cursor = align_to(text_end, 0x1000);
    let rodata_addr = cursor;
    cursor += low.rodata.len() as u64;

    // .gcc_except_table (content is address-independent: LPStart omitted,
    // call-site offsets are function-relative).
    let mut except = ExceptTableBuilder::new(align_to(cursor, 4));
    let except_addr = align_to(cursor, 4);
    let mut lsda_addr_of_unit: Vec<Option<u64>> = vec![None; low.units.len()];
    for (i, u) in low.units.iter().enumerate() {
        if u.pad_sites.is_empty() {
            continue;
        }
        let mut lsda = LsdaBuilder::new();
        for site in &u.pad_sites {
            lsda.call_site(funseeker_eh::CallSite {
                start: site.start as u64,
                len: site.len as u64,
                landing_pad: site.pad_off as u64,
                action: 1,
            });
        }
        lsda_addr_of_unit[i] = Some(except.add(&lsda));
    }
    let (except_bytes, _) = except.finish();
    cursor = except_addr + except_bytes.len() as u64;

    // .eh_frame: which units get FDEs depends on the modeled compiler.
    let eh_frame_addr = align_to(cursor, 8);
    let any_lsda = lsda_addr_of_unit.iter().any(Option::is_some);
    let mut eh = EhFrameBuilder::new(eh_frame_addr, any_lsda);
    let mut emitted_fdes = 0usize;
    let mut hdr_entries: Vec<(u64, u64)> = Vec::new();
    for i in 0..low.units.len() {
        let lsda = lsda_addr_of_unit[i];
        let emit = if cfg.compiler == Compiler::Clang && arch == Arch::X86 {
            // The paper's Clang/x86 behavior: FDEs only where exception
            // handling demands them — none at all in C binaries.
            lsda.is_some()
        } else {
            true
        };
        if emit {
            let fde_addr = eh.add_fde(unit_addrs[i], low.units[i].code.len() as u64, lsda);
            hdr_entries.push((unit_addrs[i], fde_addr));
            emitted_fdes += 1;
        }
    }
    debug_assert!(lang == Lang::Cpp || !any_lsda, "LSDAs only come from C++ units");
    let eh_bytes = if emitted_fdes > 0 { eh.finish() } else { Vec::new() };
    cursor = eh_frame_addr + eh_bytes.len() as u64;

    // .eh_frame_hdr: the sorted FDE index real linkers add.
    let eh_hdr_addr = align_to(cursor, 4);
    let eh_hdr_bytes = if emitted_fdes > 0 {
        funseeker_eh::build_eh_frame_hdr(eh_hdr_addr, eh_frame_addr, hdr_entries)
    } else {
        Vec::new()
    };
    cursor = eh_hdr_addr + eh_hdr_bytes.len() as u64;

    // Writable group: .got.plt.
    cursor = align_to(cursor, 0x1000);
    let got_addr = cursor;
    let got_size = (3 + nplt) * ptr;

    // ---- PLT stub code ----
    let call_stub_addr = |i: usize| -> u64 {
        match plt_sec_addr {
            Some(sec) => sec + PLT_ENTSIZE * i as u64, // GCC: calls go to .plt.sec
            None => plt_addr + PLT_ENTSIZE * (i as u64 + 1),
        }
    };
    let got_slot = |i: usize| got_addr + (3 + i as u64) * ptr;

    let plt_bytes = build_plt(arch, plt_addr, got_addr, got_slot, nplt as usize);
    let plt_sec_bytes = plt_sec_addr
        .map(|sec| build_plt_sec(arch, sec, got_slot, nplt as usize))
        .unwrap_or_default();

    // ---- fixups ----
    // Patching resolves every direct transfer, so this is also where the
    // emitted call edges become ground truth: a `Rel32` fixup preceded
    // by an `e8`/`e9` opcode byte is exactly a `call rel32`/`jmp rel32`
    // site (every other Rel32 user — RIP-relative `lea`, `jne` — has a
    // different byte at `pos - 1`).
    let mut call_edges: Vec<CallEdgeTruth> = Vec::new();
    let rodata_at = |off: usize| rodata_addr + off as u64;
    for ui in 0..low.units.len() {
        let fixups = low.units[ui].fixups.clone();
        let unit_addr = unit_addrs[ui];
        for f in fixups {
            let target = match f.target {
                Target::Unit(i) => unit_addrs[i],
                Target::UnitOffset(i, off) => unit_addrs[i] + off as u64,
                Target::Plt(i) => call_stub_addr(i),
                Target::Rodata(off) => rodata_at(off),
            };
            if f.kind == FixupKind::Rel32 && f.pos >= 1 {
                let kind = match (low.units[ui].code[f.pos - 1], f.target) {
                    (0xe8, _) => Some(CallEdgeKind::Direct),
                    (0xe9, Target::Unit(i)) => Some(if low.units[i].is_part {
                        CallEdgeKind::Fragment
                    } else {
                        CallEdgeKind::Tail
                    }),
                    // `jmp` back into the parent mid-function (fragment
                    // resume) and non-transfer Rel32 users are not edges.
                    _ => None,
                };
                if let Some(kind) = kind {
                    call_edges.push(CallEdgeTruth {
                        site: unit_addr + f.pos as u64 - 1,
                        caller: unit_addr,
                        callee: target,
                        kind,
                    });
                }
            }
            let field = &mut low.units[ui].code[f.pos..f.pos + 4];
            let value = match f.kind {
                FixupKind::Rel32 => {
                    let next = unit_addr + f.pos as u64 + 4;
                    (target.wrapping_sub(next)) as u32
                }
                FixupKind::Abs32 => target as u32,
            };
            field.copy_from_slice(&value.to_le_bytes());
        }
    }

    // Jump-table entries into .rodata.
    let mut rodata = low.rodata.clone();
    for u in &low.units {
        for te in &u.tables {
            let case_addr = unit_addrs[te.unit] + te.label_off as u64;
            match te.style {
                SwitchStyle::RelativeToTable => {
                    let rel = (case_addr.wrapping_sub(rodata_at(te.table_off))) as u32;
                    rodata[te.rodata_off..te.rodata_off + 4].copy_from_slice(&rel.to_le_bytes());
                }
                SwitchStyle::Absolute64 => {
                    rodata[te.rodata_off..te.rodata_off + 8]
                        .copy_from_slice(&case_addr.to_le_bytes());
                }
                SwitchStyle::Absolute32 => {
                    rodata[te.rodata_off..te.rodata_off + 4]
                        .copy_from_slice(&(case_addr as u32).to_le_bytes());
                }
            }
        }
    }

    // ---- .text image ----
    let mut text = Vec::with_capacity(text_size as usize);
    for (u, &addr) in low.units.iter().zip(&unit_addrs) {
        let pad_to = (addr - text_addr) as usize;
        let gap = pad_to - text.len();
        extend_nops(&mut text, gap);
        text.extend_from_slice(&u.code);
    }

    // ---- symbol tables ----
    // Symbol shndx only needs to be a nonzero "defined" index for the
    // consumers in this workspace (ground-truth extraction checks
    // defined-vs-undefined, not the exact section).
    let text_shndx = 4u16;
    let mut symbols = Vec::new();
    symbols.push(Symbol {
        name: format!("{}.c", "program"),
        value: 0,
        size: 0,
        symbol_type: SymbolType::File,
        binding: SymbolBinding::Local,
        shndx: 0xfff1, // SHN_ABS
    });
    for (u, &addr) in low.units.iter().zip(&unit_addrs) {
        if !u.has_symbol {
            continue;
        }
        symbols.push(Symbol {
            name: u.name.clone(),
            value: addr,
            size: u.code.len() as u64,
            symbol_type: SymbolType::Func,
            binding: if u.is_static || u.is_part {
                SymbolBinding::Local
            } else {
                SymbolBinding::Global
            },
            shndx: text_shndx,
        });
    }

    let dynsyms: Vec<Symbol> = low
        .imports
        .iter()
        .map(|n| Symbol {
            name: n.clone(),
            value: 0,
            size: 0,
            symbol_type: SymbolType::Func,
            binding: SymbolBinding::Global,
            shndx: 0,
        })
        .collect();

    let jump_slot =
        if arch == Arch::X64 { reloc::R_X86_64_JUMP_SLOT } else { reloc::R_386_JMP_SLOT };
    let relocs: Vec<Reloc> = (0..nplt as usize)
        .map(|i| Reloc {
            offset: got_slot(i),
            rtype: jump_slot,
            // Dynamic symbol indices start at 1 (index 0 is the null
            // symbol); imports are all global so sorting keeps order.
            symbol: i as u32 + 1,
            addend: 0,
        })
        .collect();

    // ---- assemble the ELF ----
    let mut b = ElfBuilder::new(
        arch.class(),
        arch.machine(),
        if cfg.pie { ObjectType::SharedObject } else { ObjectType::Executable },
    );
    b.entry(unit_addrs[low.start_unit]);
    // Section order defines sh indices; .text must be index `text_shndx`:
    // null(0) .dynsym(1) .dynstr(2) rel(a).plt(3) .plt(4)… — adjust: we
    // declare .text fourth section overall below, so compute its index.
    b.section(
        ".note.gnu.property",
        funseeker_elf::SectionType::Note,
        SHF_ALLOC,
        note_addr,
        note_bytes,
        None,
        0,
        8,
        0,
    );
    b.symbol_table(".dynsym", dynsym_addr, &dynsyms);
    b.plt_relocations(relplt_addr, &relocs);
    b.progbits(".plt", plt_addr, SHF_ALLOC | SHF_EXECINSTR, plt_bytes);
    if let Some(sec) = plt_sec_addr {
        b.progbits(".plt.sec", sec, SHF_ALLOC | SHF_EXECINSTR, plt_sec_bytes);
    }
    b.text(".text", text_addr, text);
    b.progbits(".rodata", rodata_addr, SHF_ALLOC, rodata);
    if !except_bytes.is_empty() {
        b.progbits(".gcc_except_table", except_addr, SHF_ALLOC, except_bytes);
    }
    if !eh_bytes.is_empty() {
        b.progbits(".eh_frame", eh_frame_addr, SHF_ALLOC, eh_bytes);
    }
    if !eh_hdr_bytes.is_empty() {
        b.progbits(".eh_frame_hdr", eh_hdr_addr, SHF_ALLOC, eh_hdr_bytes);
    }
    b.progbits(".got.plt", got_addr, SHF_ALLOC | SHF_WRITE, vec![0u8; got_size as usize]);
    if !options.strip_symbols {
        b.symbol_table(".symtab", 0, &symbols);
    }
    let bytes = b.build().expect("corpus layout always encodable");

    // ---- ground truth ----
    let mut functions: Vec<FunctionTruth> = low
        .units
        .iter()
        .zip(&unit_addrs)
        .map(|(u, &addr)| FunctionTruth {
            name: u.name.clone(),
            addr,
            size: u.code.len() as u64,
            is_part: u.is_part,
            is_thunk: u.is_thunk,
            has_symbol: u.has_symbol,
            dead: u.dead,
            has_endbr: u.endbr,
            is_static: u.is_static,
        })
        .collect();
    functions.sort_by_key(|f| f.addr);

    let setjmp_return_endbrs = low
        .units
        .iter()
        .zip(&unit_addrs)
        .flat_map(|(u, &addr)| u.setjmp_endbrs.iter().map(move |&o| addr + o as u64))
        .collect();
    let landing_pad_endbrs = low
        .units
        .iter()
        .zip(&unit_addrs)
        .flat_map(|(u, &addr)| u.pad_sites.iter().map(move |s| addr + s.pad_off as u64))
        .collect();

    call_edges.sort_by_key(|e| e.site);

    LinkedBinary {
        bytes,
        truth: GroundTruth {
            functions,
            text_range: (text_addr, text_end),
            setjmp_return_endbrs,
            landing_pad_endbrs,
            call_edges,
        },
    }
}

/// Appends exactly `n` bytes of valid multi-byte NOP padding.
fn extend_nops(out: &mut Vec<u8>, mut n: usize) {
    while n > 0 {
        let take = n.min(8);
        let nop: &[u8] = match take {
            1 => &[0x90],
            2 => &[0x66, 0x90],
            3 => &[0x0f, 0x1f, 0x00],
            4 => &[0x0f, 0x1f, 0x40, 0x00],
            5 => &[0x0f, 0x1f, 0x44, 0x00, 0x00],
            6 => &[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00],
            7 => &[0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00],
            _ => &[0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
        };
        out.extend_from_slice(nop);
        n -= take;
    }
}

/// Builds `.plt` stub code. Entry 0 is the resolver trampoline; entries
/// 1..=n are per-import stubs.
fn build_plt(
    arch: Arch,
    plt_addr: u64,
    got_addr: u64,
    got_slot: impl Fn(usize) -> u64,
    n: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity((n + 1) * PLT_ENTSIZE as usize);
    match arch {
        Arch::X64 => {
            // PLT0: push [rip+got+8]; jmp [rip+got+16]; pad.
            let p0 = plt_addr;
            out.extend_from_slice(&[0xff, 0x35]);
            out.extend_from_slice(&(((got_addr + 8).wrapping_sub(p0 + 6)) as u32).to_le_bytes());
            out.extend_from_slice(&[0xff, 0x25]);
            out.extend_from_slice(&(((got_addr + 16).wrapping_sub(p0 + 12)) as u32).to_le_bytes());
            out.extend_from_slice(&[0x0f, 0x1f, 0x40, 0x00]);
            for i in 0..n {
                let entry = plt_addr + PLT_ENTSIZE * (i as u64 + 1);
                out.extend_from_slice(&[0xf3, 0x0f, 0x1e, 0xfa]); // endbr64
                out.push(0x68); // push imm32 (reloc index)
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.push(0xe9); // jmp PLT0
                out.extend_from_slice(&((plt_addr.wrapping_sub(entry + 14)) as u32).to_le_bytes());
                out.extend_from_slice(&[0x66, 0x90]);
            }
        }
        Arch::X86 => {
            out.extend_from_slice(&[0xff, 0x35]);
            out.extend_from_slice(&((got_addr + 4) as u32).to_le_bytes());
            out.extend_from_slice(&[0xff, 0x25]);
            out.extend_from_slice(&((got_addr + 8) as u32).to_le_bytes());
            out.extend_from_slice(&[0x0f, 0x1f, 0x40, 0x00]);
            for i in 0..n {
                out.extend_from_slice(&[0xf3, 0x0f, 0x1e, 0xfb]); // endbr32
                out.extend_from_slice(&[0xff, 0x25]); // jmp [got slot]
                out.extend_from_slice(&(got_slot(i) as u32).to_le_bytes());
                out.extend_from_slice(&[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00]);
            }
        }
    }
    out
}

/// Builds `.plt.sec` (GCC's second PLT: the stubs calls actually target).
fn build_plt_sec(arch: Arch, sec_addr: u64, got_slot: impl Fn(usize) -> u64, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * PLT_ENTSIZE as usize);
    for i in 0..n {
        match arch {
            Arch::X64 => {
                let entry = sec_addr + PLT_ENTSIZE * i as u64;
                out.extend_from_slice(&[0xf3, 0x0f, 0x1e, 0xfa]);
                out.extend_from_slice(&[0xff, 0x25]); // jmp [rip+got slot]
                out.extend_from_slice(
                    &((got_slot(i).wrapping_sub(entry + 10)) as u32).to_le_bytes(),
                );
                out.extend_from_slice(&[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00]);
            }
            Arch::X86 => {
                out.extend_from_slice(&[0xf3, 0x0f, 0x1e, 0xfb]);
                out.extend_from_slice(&[0xff, 0x25]);
                out.extend_from_slice(&(got_slot(i) as u32).to_le_bytes());
                out.extend_from_slice(&[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00]);
            }
        }
    }
    out
}
