//! Differential test: corpus-emitted code vs GNU objdump.
//!
//! The corpus assembler hand-encodes every instruction it emits; this
//! test has binutils disassemble whole corpus binaries (both
//! architectures) and checks instruction boundaries agree with our
//! decoder everywhere. Skipped when objdump is unavailable.

use std::collections::BTreeMap;
use std::process::Command;

use funseeker_corpus::{BuildConfig, Dataset, DatasetParams};
use funseeker_disasm::sweep_all;
use funseeker_elf::Elf;

fn objdump_starts(path: &std::path::Path, x86: bool) -> Option<BTreeMap<u64, usize>> {
    let mut cmd = Command::new("objdump");
    cmd.args(["-d", "-w", "--section=.text"]);
    if x86 {
        cmd.args(["-m", "i386"]);
    }
    let out = cmd.arg(path).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.trim_start().splitn(3, '\t');
        let addr_part = parts.next()?.trim_end_matches(':');
        let Ok(addr) = u64::from_str_radix(addr_part.trim(), 16) else { continue };
        let Some(bytes_part) = parts.next() else { continue };
        let mnemonic = parts.next().unwrap_or("");
        if mnemonic.contains("(bad)") || mnemonic.is_empty() {
            continue;
        }
        map.insert(addr, bytes_part.split_whitespace().count());
    }
    Some(map)
}

#[test]
fn corpus_binaries_agree_with_objdump() {
    // Quick availability probe.
    if Command::new("objdump")
        .arg("--version")
        .output()
        .map(|o| !o.status.success())
        .unwrap_or(true)
    {
        eprintln!("skipping: objdump unavailable");
        return;
    }

    let mut params = DatasetParams::tiny();
    params.programs = (2, 1, 2);
    params.configs = BuildConfig::grid();
    let ds = Dataset::generate(&params, 0xD1FF);

    let dir = std::env::temp_dir().join("funseeker_corpus_diff");
    std::fs::create_dir_all(&dir).unwrap();

    let mut checked_binaries = 0usize;
    let mut checked_insns = 0usize;
    // A representative subsample across configurations keeps the test fast.
    for (i, bin) in ds.binaries.iter().enumerate() {
        if i % 7 != 0 {
            continue;
        }
        let path = dir.join(format!("bin_{i}"));
        std::fs::write(&path, &bin.bytes).unwrap();
        let x86 = bin.config.arch == funseeker_corpus::Arch::X86;
        let Some(expected) = objdump_starts(&path, x86) else { continue };
        assert!(!expected.is_empty(), "objdump produced nothing for {}", bin.program);

        let elf = Elf::parse(&bin.bytes).unwrap();
        let (text_addr, text) = elf.section_bytes(".text").unwrap();
        let ours: BTreeMap<u64, usize> = sweep_all(text, text_addr, bin.config.arch.mode())
            .stream
            .iter()
            .map(|insn| (insn.addr, insn.len as usize))
            .collect();

        for (addr, len) in &expected {
            assert_eq!(
                ours.get(addr),
                Some(len),
                "{} {}: mismatch at {addr:#x} (objdump {len} bytes)",
                bin.program,
                bin.config.label()
            );
        }
        // And the reverse: we decode nothing objdump didn't (boundary sets
        // are identical because neither side errors on corpus output).
        assert_eq!(ours.len(), expected.len(), "{}: instruction count", bin.program);
        checked_binaries += 1;
        checked_insns += expected.len();
    }
    assert!(checked_binaries >= 10, "too few binaries checked ({checked_binaries})");
    assert!(checked_insns > 10_000, "too few instructions checked ({checked_insns})");
    eprintln!(
        "verified {checked_insns} instructions across {checked_binaries} binaries against objdump"
    );
}
