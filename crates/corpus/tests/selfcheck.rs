//! End-to-end self-check: every binary the corpus emits must be fully
//! consistent when read back through the workspace's own substrates —
//! the same path the identifiers will use.

use std::collections::BTreeSet;

use funseeker_corpus::{Compiler, Dataset, DatasetParams, Lang, Suite};
use funseeker_disasm::sweep_all;
use funseeker_eh::parse_eh_frame;
use funseeker_elf::{Elf, PltMap};

fn dataset() -> Dataset {
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = funseeker_corpus::BuildConfig::grid();
    Dataset::generate(&params, 0xC0FFEE)
}

#[test]
fn all_binaries_parse_and_sweep_cleanly() {
    let ds = dataset();
    assert_eq!(ds.len(), 8 * 24);
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap_or_else(|e| panic!("{}: {e}", bin.program));
        let (text_addr, text) = elf.section_bytes(".text").expect("has .text");
        assert_eq!(text_addr, bin.truth.text_range.0);
        assert_eq!(text_addr + text.len() as u64, bin.truth.text_range.1);

        // The entire .text must decode with zero errors: the modeled
        // compilers never put data in .text (§IV-B).
        let mode = bin.config.arch.mode();
        let swept = sweep_all(text, text_addr, mode);
        let insns = swept.to_insns();
        assert_eq!(
            swept.error_count,
            0,
            "{} {}: decode errors in .text",
            bin.program,
            bin.config.label()
        );

        // Every ground-truth entry must fall on an instruction boundary.
        let starts: BTreeSet<u64> = insns.iter().map(|i| i.addr).collect();
        for f in &bin.truth.functions {
            assert!(
                starts.contains(&f.addr),
                "{} {}: function {} at {:#x} not on an instruction boundary",
                bin.program,
                bin.config.label(),
                f.name,
                f.addr
            );
        }
    }
}

#[test]
fn endbr_placement_matches_ground_truth() {
    let ds = dataset();
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let (text_addr, text) = elf.section_bytes(".text").unwrap();
        let endbrs: BTreeSet<u64> = sweep_all(text, text_addr, bin.config.arch.mode())
            .stream
            .iter()
            .filter(|i| i.kind.is_endbr())
            .map(|i| i.addr)
            .collect();

        for f in &bin.truth.functions {
            assert_eq!(
                endbrs.contains(&f.addr),
                f.has_endbr,
                "{} {}: endbr mismatch for {}",
                bin.program,
                bin.config.label(),
                f.name
            );
        }
        // Every endbr is accounted for: function entry, setjmp return,
        // or landing pad — the paper's complete location taxonomy (§III-B).
        let entry_set: BTreeSet<u64> =
            bin.truth.functions.iter().filter(|f| f.has_endbr).map(|f| f.addr).collect();
        let setjmp: BTreeSet<u64> = bin.truth.setjmp_return_endbrs.iter().copied().collect();
        let pads: BTreeSet<u64> = bin.truth.landing_pad_endbrs.iter().copied().collect();
        for &e in &endbrs {
            assert!(
                entry_set.contains(&e) || setjmp.contains(&e) || pads.contains(&e),
                "{} {}: unexplained endbr at {e:#x}",
                bin.program,
                bin.config.label()
            );
        }
    }
}

#[test]
fn plt_resolves_indirect_return_functions() {
    let ds = dataset();
    let mut saw_setjmp_family = 0;
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let plt = PltMap::from_elf(&elf).unwrap();
        assert!(!plt.is_empty(), "{}: no PLT entries resolved", bin.program);
        // __libc_start_main is always imported by _start.
        assert!(
            plt.iter().any(|(_, n)| n == "__libc_start_main"),
            "{}: __libc_start_main missing from PLT map",
            bin.program
        );
        if plt.iter().any(|(_, n)| funseeker_corpus::INDIRECT_RETURN_FUNCTIONS.contains(&n)) {
            saw_setjmp_family += 1;
        }
    }
    assert!(saw_setjmp_family > 0, "no binary imported a setjmp-family function");
}

#[test]
fn eh_frame_matches_compiler_model() {
    let ds = dataset();
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let wide = bin.config.arch == funseeker_corpus::Arch::X64;
        let fdes = match elf.section_bytes(".eh_frame") {
            Some((addr, data)) => parse_eh_frame(data, addr, wide).unwrap().fdes,
            None => Vec::new(),
        };
        let is_clang_x86 = bin.config.compiler == Compiler::Clang
            && bin.config.arch == funseeker_corpus::Arch::X86;
        if is_clang_x86 {
            // C binaries: no FDEs at all (the paper's FETCH failure mode).
            // C++ binaries: FDEs only for functions with LSDAs.
            assert!(
                fdes.len() <= bin.truth.functions.len(),
                "{}: unexpected FDE count",
                bin.program
            );
            if bin.truth.landing_pad_endbrs.is_empty() {
                assert!(
                    fdes.is_empty(),
                    "{} {}: Clang x86 C must have no FDEs",
                    bin.program,
                    bin.config.label()
                );
            }
        } else {
            // Everything (functions, fragments, thunks, _start) has an FDE.
            assert_eq!(
                fdes.len(),
                bin.truth.functions.len(),
                "{} {}: FDE count",
                bin.program,
                bin.config.label()
            );
            let fde_begins: BTreeSet<u64> = fdes.iter().map(|f| f.pc_begin).collect();
            for f in &bin.truth.functions {
                assert!(fde_begins.contains(&f.addr), "{}: no FDE for {}", bin.program, f.name);
            }
        }
    }
}

#[test]
fn lsda_landing_pads_match_ground_truth() {
    let ds = dataset();
    let mut checked_pads = 0usize;
    for bin in &ds.binaries {
        if bin.truth.landing_pad_endbrs.is_empty() {
            continue;
        }
        let elf = Elf::parse(&bin.bytes).unwrap();
        let wide = bin.config.arch == funseeker_corpus::Arch::X64;
        let (eh_addr, eh_data) =
            elf.section_bytes(".eh_frame").expect("C++ binaries carry .eh_frame");
        let (gx_addr, gx_data) = elf.section_bytes(".gcc_except_table").expect("LSDAs present");
        let fdes = parse_eh_frame(eh_data, eh_addr, wide).unwrap().fdes;

        let mut pads = BTreeSet::new();
        for fde in &fdes {
            if let Some(lsda) = fde.lsda {
                let parsed =
                    funseeker_eh::parse_lsda(gx_data, gx_addr, lsda, fde.pc_begin, wide).unwrap();
                pads.extend(parsed.landing_pads);
            }
        }
        let expect: BTreeSet<u64> = bin.truth.landing_pad_endbrs.iter().copied().collect();
        assert_eq!(pads, expect, "{} {}: landing pads", bin.program, bin.config.label());
        checked_pads += pads.len();
    }
    assert!(checked_pads > 0, "dataset contained no landing pads to check");
}

#[test]
fn symtab_covers_symbolled_functions() {
    let ds = dataset();
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let syms = elf.symbols().unwrap();
        let func_syms: BTreeSet<u64> =
            syms.iter().filter(|s| s.is_defined_func()).map(|s| s.value).collect();
        for f in &bin.truth.functions {
            assert_eq!(
                func_syms.contains(&f.addr),
                f.has_symbol,
                "{}: symbol presence mismatch for {}",
                bin.program,
                f.name
            );
        }
    }
}

#[test]
fn cpp_programs_appear_only_in_spec_suite() {
    let ds = dataset();
    for bin in &ds.binaries {
        if !bin.truth.landing_pad_endbrs.is_empty() {
            assert_eq!(bin.suite, Suite::Spec);
        }
    }
    // And the SPEC share of C++ is material, as in the paper.
    let spec_with_pads = ds
        .binaries
        .iter()
        .filter(|b| b.suite == Suite::Spec && !b.truth.landing_pad_endbrs.is_empty())
        .count();
    assert!(spec_with_pads > 0);
    let _ = Lang::Cpp; // suite/lang linkage is asserted at generation time
}

#[test]
fn eh_frame_hdr_indexes_every_fde() {
    let ds = dataset();
    let mut checked = 0;
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let wide = bin.config.arch == funseeker_corpus::Arch::X64;
        let Some((hdr_addr, hdr)) = elf.section_bytes(".eh_frame_hdr") else {
            // Clang x86 C binaries have no exception info at all.
            assert!(
                elf.section_bytes(".eh_frame").is_none(),
                "{}: eh_frame without hdr",
                bin.program
            );
            continue;
        };
        let parsed = funseeker_eh::parse_eh_frame_hdr(hdr, hdr_addr, wide).unwrap();
        let (eh_addr, eh_data) = elf.section_bytes(".eh_frame").unwrap();
        assert_eq!(parsed.eh_frame_ptr, Some(eh_addr));
        let fdes = parse_eh_frame(eh_data, eh_addr, wide).unwrap().fdes;
        let begins: BTreeSet<u64> = fdes.iter().map(|f| f.pc_begin).collect();
        let indexed: BTreeSet<u64> = parsed.table.iter().map(|&(loc, _)| loc).collect();
        assert_eq!(begins, indexed, "{} {}", bin.program, bin.config.label());
        // Table is sorted, as the unwinder requires.
        assert!(parsed.table.windows(2).all(|w| w[0].0 <= w[1].0));
        checked += 1;
    }
    assert!(checked > 100);
}

#[test]
fn call_edge_truth_matches_emitted_bytes() {
    use funseeker_corpus::CallEdgeKind;
    let ds = dataset();
    let (mut direct, mut tails, mut fragments, mut plt_callees) = (0usize, 0usize, 0usize, 0usize);
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let (text_addr, text) = elf.section_bytes(".text").unwrap();
        let entries = bin.truth.eval_entries();
        let parts = bin.truth.part_entries();
        let in_text = |a: u64| a >= text_addr && a < text_addr + text.len() as u64;

        assert!(
            bin.truth.call_edges.windows(2).all(|w| w[0].site <= w[1].site),
            "{}: call edges must be sorted by site",
            bin.program
        );
        for e in &bin.truth.call_edges {
            let ctx = || format!("{} {}: edge at {:#x}", bin.program, bin.config.label(), e.site);
            assert!(in_text(e.site), "{}: site outside .text", ctx());
            assert!(
                bin.truth.by_addr(e.caller).is_some(),
                "{}: caller {:#x} is not a unit",
                ctx(),
                e.caller
            );
            // The opcode byte and its resolved displacement must agree
            // with the recorded edge exactly.
            let off = (e.site - text_addr) as usize;
            let expect_op = match e.kind {
                CallEdgeKind::Direct => 0xe8,
                CallEdgeKind::Tail | CallEdgeKind::Fragment => 0xe9,
            };
            assert_eq!(text[off], expect_op, "{}: opcode", ctx());
            let rel = i32::from_le_bytes(text[off + 1..off + 5].try_into().unwrap());
            let resolved = (e.site + 5).wrapping_add(rel as i64 as u64);
            assert_eq!(resolved, e.callee, "{}: displacement disagrees with callee", ctx());
            match e.kind {
                CallEdgeKind::Direct => {
                    direct += 1;
                    if !in_text(e.callee) {
                        plt_callees += 1; // import via PLT stub
                    }
                }
                CallEdgeKind::Tail => {
                    tails += 1;
                    assert!(entries.contains(&e.callee), "{}: tail callee not a function", ctx());
                    assert_ne!(e.callee, e.caller, "{}: self tail call", ctx());
                }
                CallEdgeKind::Fragment => {
                    fragments += 1;
                    assert!(parts.contains(&e.callee), "{}: fragment callee not a part", ctx());
                }
            }
        }
    }
    // The workload must exercise every flavor, or the call-graph
    // evaluation would be vacuous.
    assert!(direct > 0 && tails > 0 && fragments > 0 && plt_callees > 0);
}

#[test]
fn cet_note_marks_every_corpus_binary() {
    let ds = dataset();
    for bin in &ds.binaries {
        let elf = Elf::parse(&bin.bytes).unwrap();
        let props = funseeker_elf::cet_properties(&elf).unwrap();
        assert!(props.full(), "{}: corpus binaries are CET-enabled by definition", bin.program);
    }
}

#[test]
fn stripped_emission_changes_nothing_for_identifiers() {
    // The paper evaluates on stripped binaries; no identifier here reads
    // .symtab, so stripped and unstripped images must yield identical
    // function sets.
    use funseeker_corpus::{compile_with, DatasetParams, EmissionOptions};
    let specs = funseeker_corpus::Dataset::program_specs(&DatasetParams::tiny(), 4);
    let cfg = funseeker_corpus::BuildConfig::grid()[2];
    for (_, spec) in specs.iter().take(3) {
        let normal = compile_with(spec, cfg, EmissionOptions::default(), 9);
        let stripped = compile_with(
            spec,
            cfg,
            EmissionOptions { strip_symbols: true, ..Default::default() },
            9,
        );
        // The stripped image really has no symbol table.
        let elf = Elf::parse(&stripped.bytes).unwrap();
        assert!(elf.symbols().unwrap().is_empty());
        assert!(elf.section_by_name(".symtab").is_none());
        // Ground truth is identical; so is every identifier's output.
        assert_eq!(normal.truth, stripped.truth);
        let seeker = funseeker::FunSeeker::new();
        assert_eq!(
            seeker.identify(&normal.bytes).unwrap().functions,
            seeker.identify(&stripped.bytes).unwrap().functions
        );
    }
}
