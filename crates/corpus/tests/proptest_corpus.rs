//! Property tests for the corpus compiler: arbitrary valid program
//! specs must lower, link, and satisfy the pipeline invariants.

use funseeker_corpus::{
    compile, compile_with, Arch, BuildConfig, Compiler, EmissionOptions, FunctionSpec, Lang,
    Linkage, OptLevel, ProgramSpec,
};
use funseeker_disasm::sweep_all;
use funseeker_elf::Elf;
use proptest::prelude::*;

/// Strategy: a structurally valid program spec.
fn arb_spec() -> impl Strategy<Value = ProgramSpec> {
    (2usize..14, any::<u64>(), any::<bool>())
        .prop_map(|(n, bits, cpp)| {
            let lang = if cpp { Lang::Cpp } else { Lang::C };
            let mut functions = Vec::with_capacity(n);
            for i in 0..n {
                let mut f =
                    FunctionSpec::named(if i == 0 { "main".into() } else { format!("f{i}") });
                let r = bits.rotate_left((i * 7) as u32);
                f.body_size = 2 + (r % 20) as usize;
                if i != 0 {
                    if r & 1 == 1 {
                        f.linkage = Linkage::Static;
                        if r & 2 == 2 {
                            f.address_taken = true;
                        } else if r & 4 == 4 {
                            f.dead = true;
                        }
                    }
                    // Call a previous function sometimes (never self).
                    if r & 8 == 8 && i >= 2 {
                        f.calls.push((r % (i as u64 - 1)) as usize + 1);
                    }
                    if r & 16 == 16 && i >= 2 {
                        let t = (r % i as u64) as usize;
                        if t != i {
                            f.tail_call = Some(t);
                        }
                    }
                }
                if r & 32 == 32 {
                    f.switch_cases = 2 + (r % 6) as usize;
                }
                if lang == Lang::Cpp && r & 64 == 64 {
                    f.landing_pads = 1 + (r % 3) as usize;
                }
                if r & 128 == 128 && i != 0 {
                    f.cold_part = true;
                    f.part_called = r & 256 == 256;
                }
                functions.push(f);
            }
            ProgramSpec { name: "prop".into(), lang, functions }
        })
        .prop_filter("valid spec", |spec| spec.validate().is_ok())
}

fn arb_config() -> impl Strategy<Value = BuildConfig> {
    (any::<bool>(), any::<bool>(), 0usize..6, any::<bool>()).prop_map(|(gcc, x64, opt, pie)| {
        BuildConfig {
            compiler: if gcc { Compiler::Gcc } else { Compiler::Clang },
            arch: if x64 { Arch::X64 } else { Arch::X86 },
            opt: OptLevel::ALL[opt],
            pie,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every compiled binary parses, sweeps with zero decode errors, and
    /// places all ground-truth entries on instruction boundaries.
    #[test]
    fn compiled_binaries_uphold_invariants(spec in arb_spec(), cfg in arb_config(), seed in any::<u64>()) {
        let built = compile(&spec, cfg, seed);
        let elf = Elf::parse(&built.bytes).expect("parses");
        let (text_addr, text) = elf.section_bytes(".text").expect("has .text");

        let swept = sweep_all(text, text_addr, cfg.arch.mode());
        let starts: std::collections::BTreeSet<u64> = swept.stream.iter().map(|i| i.addr).collect();
        prop_assert_eq!(swept.error_count, 0);
        for f in &built.truth.functions {
            prop_assert!(starts.contains(&f.addr), "{} not on boundary", f.name);
        }
    }

    /// FunSeeker never misses a live, endbr-carrying function, and never
    /// reports an address outside .text.
    #[test]
    fn funseeker_invariants_hold(spec in arb_spec(), cfg in arb_config(), seed in any::<u64>()) {
        let built = compile(&spec, cfg, seed);
        let analysis = funseeker::FunSeeker::new().identify(&built.bytes).expect("analyzable");
        let (lo, hi) = built.truth.text_range;
        for &f in &analysis.functions {
            prop_assert!(f >= lo && f < hi);
        }
        for f in built.truth.functions.iter().filter(|f| !f.is_part && f.has_endbr) {
            prop_assert!(analysis.functions.contains(&f.addr), "missed endbr function {}", f.name);
        }
    }

    /// Manual-endbr emission only ever removes end-branches, never adds.
    #[test]
    fn manual_endbr_is_a_reduction(spec in arb_spec(), cfg in arb_config(), seed in any::<u64>()) {
        let normal = compile(&spec, cfg, seed);
        let manual = compile_with(&spec, cfg, EmissionOptions { manual_endbr: true, ..Default::default() }, seed);
        let count = |b: &funseeker_corpus::LinkedBinary| {
            b.truth.functions.iter().filter(|f| f.has_endbr).count()
        };
        prop_assert!(count(&manual) <= count(&normal));
        // And both binaries keep all their entries on boundaries.
        prop_assert_eq!(normal.truth.functions.len(), manual.truth.functions.len());
    }
}
