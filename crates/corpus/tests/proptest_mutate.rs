//! Mutation fuzz harness: the pipeline contract over hostile images.
//!
//! For every `(seed, corruption-class)` pair the mutator damages a
//! pristine corpus-built binary and `FunSeeker::identify` must
//!
//! 1. never panic,
//! 2. never overrun a generous per-case time budget, and
//! 3. return either `Ok` (possibly with degradation diagnostics) or a
//!    typed error — both of which are *answers*, not crashes.
//!
//! Case count comes from `FUNSEEKER_MUTATION_CASES` (default 256; ci.sh
//! runs 1000). Failures reproduce from the printed seed alone.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use funseeker::FunSeeker;
use funseeker_corpus::{
    compile, Arch, BuildConfig, Compiler, Corruption, FunctionSpec, Lang, Mutator, OptLevel,
    ProgramSpec,
};
use proptest::prelude::*;

/// Upper bound per identify() call. The pipeline is linear in the input
/// size and these images are tens of KiB, so normal runs take well under
/// a millisecond; the budget only exists to catch accidental
/// super-linear blowups on hostile metadata.
const TIME_BUDGET: Duration = Duration::from_secs(10);

/// Pristine images are compiled once and shared across all cases.
fn pristine_images() -> &'static [Vec<u8>] {
    static IMAGES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let mut images = Vec::new();
        for (lang, compiler, seed) in
            [(Lang::Cpp, Compiler::Gcc, 11), (Lang::C, Compiler::Clang, 12)]
        {
            let mut main = FunctionSpec::named("main");
            main.calls = vec![1, 2];
            main.setjmp = true;
            let mut worker = FunctionSpec::named("worker");
            if lang == Lang::Cpp {
                worker.landing_pads = 2;
            }
            worker.calls = vec![2];
            let mut leaf = FunctionSpec::named("leaf");
            leaf.address_taken = true;
            let spec = ProgramSpec {
                name: "fuzz-victim".into(),
                lang,
                functions: vec![main, worker, leaf],
            };
            let cfg = BuildConfig { compiler, arch: Arch::X64, opt: OptLevel::O2, pie: true };
            images.push(compile(&spec, cfg, seed).bytes);
        }
        images
    })
}

fn cases() -> u32 {
    std::env::var("FUNSEEKER_MUTATION_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// The contract every mutant must satisfy.
fn check_contract(mutant: &[u8], what: &str) -> Result<(), TestCaseError> {
    let start = Instant::now();
    // catch_unwind is deliberately absent: a panic anywhere in the
    // pipeline fails the proptest case directly, which is the point.
    let outcome = FunSeeker::new().identify(mutant);
    let elapsed = start.elapsed();
    prop_assert!(
        elapsed < TIME_BUDGET,
        "{what}: identify took {elapsed:?} (budget {TIME_BUDGET:?})"
    );
    match outcome {
        Ok(analysis) => {
            // Degraded-but-Ok results must still be internally coherent.
            let (lo, hi) = analysis.text_range;
            prop_assert!(
                analysis.functions.iter().all(|&f| f >= lo && f < hi),
                "{what}: function outside text range"
            );
            prop_assert!(analysis.filtered_endbrs <= analysis.endbr_count);
            // Strict mode must agree with the diagnostics.
            let strict = FunSeeker::new().strict(true).identify(mutant);
            if analysis.diagnostics.is_empty() {
                prop_assert!(strict.is_ok(), "{what}: strict failed with no diagnostics");
            } else {
                prop_assert!(
                    matches!(strict, Err(funseeker::Error::Strict(_))),
                    "{what}: strict mode must reject degraded input"
                );
            }
        }
        Err(e) => {
            // Typed rejection: the Display chain must render (this also
            // walks the source chain without panicking).
            let mut msg = e.to_string();
            let mut src: Option<&dyn std::error::Error> = std::error::Error::source(&e);
            while let Some(s) = src {
                msg.push_str(": ");
                msg.push_str(&s.to_string());
                src = s.source();
            }
            prop_assert!(!msg.is_empty());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random corruption class per case, across all pristine images.
    #[test]
    fn identify_survives_mutation(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        for (i, pristine) in pristine_images().iter().enumerate() {
            let (mutant, class) = m.mutate(pristine);
            check_contract(&mutant, &format!("seed {seed}, image {i}, {class:?}"))?;
        }
    }

    /// Every corruption class exercised explicitly per case, so rare
    /// classes don't depend on the random pick.
    #[test]
    fn identify_survives_every_class(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        let pristine = &pristine_images()[(seed % 2) as usize];
        for class in Corruption::ALL {
            let mutant = m.apply(pristine, class);
            check_contract(&mutant, &format!("seed {seed}, {class:?}"))?;
        }
    }

    /// Second-generation mutants: damage an already-damaged image.
    #[test]
    fn identify_survives_stacked_mutation(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        let (first, c1) = m.mutate(&pristine_images()[0]);
        let (second, c2) = m.mutate(&first);
        check_contract(&second, &format!("seed {seed}, {c1:?} then {c2:?}"))?;
    }
}

#[test]
fn pristine_images_analyze_cleanly() {
    for (i, image) in pristine_images().iter().enumerate() {
        let analysis = FunSeeker::new().strict(true).identify(image).unwrap_or_else(|e| {
            panic!("pristine image {i} must pass strict analysis: {e}");
        });
        assert!(analysis.diagnostics.is_empty());
        assert!(!analysis.functions.is_empty());
    }
}
