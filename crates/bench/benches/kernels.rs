//! Per-kernel isolation: each vectorized sweep kernel against its scalar
//! reference, per tier, on identical input.
//!
//! The whole-sweep benchmark (`sweep_shards`) measures the kernels
//! diluted by the decoder; this group isolates the three scans — ENDBR
//! needle search, padding-run skipping, bulk first-byte classification —
//! so the per-tier speedups (and the SSE2/SWAR fallbacks' costs) are
//! visible on their own. Inputs are a tiled real `.text` (realistic byte
//! mix: needles rare, no long pad runs) plus a synthetic padded buffer
//! for the run-skipper's best case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use funseeker_bench::single_binary;
use funseeker_disasm::kernels::{classify_block, find_endbr, pad_run_end};
use funseeker_disasm::{KernelTier, Mode};
use funseeker_elf::Elf;

/// Tiles one binary's `.text` until the buffer crosses `target` bytes.
fn tiled_text(target: usize) -> Vec<u8> {
    let bin = single_binary();
    let elf = Elf::parse(&bin.bytes).unwrap();
    let (_, text) = elf.section_bytes(".text").unwrap();
    let mut code = Vec::with_capacity(target + text.len());
    while code.len() < target {
        code.extend_from_slice(text);
    }
    code
}

fn supported() -> Vec<KernelTier> {
    KernelTier::ALL.into_iter().filter(|t| t.is_supported()).collect()
}

fn bench(c: &mut Criterion) {
    let code = tiled_text(1 << 20);

    // ENDBR needle scan over realistic bytes (candidates are sparse, so
    // this is dominated by the wide 0xF3 compare).
    let mut g = c.benchmark_group("kernel_endbr_scan");
    g.throughput(Throughput::Bytes(code.len() as u64));
    for tier in supported() {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{tier:?}")), &tier, |b, &t| {
            b.iter(|| std::hint::black_box(find_endbr(&code, t).len()))
        });
    }
    g.finish();

    // Padding-run skip: one maximal NOP run (inter-function padding's
    // best case — the sweep skips it in a handful of wide compares).
    let pad = vec![0x90u8; 64 << 10];
    let mut g = c.benchmark_group("kernel_pad_skip");
    g.throughput(Throughput::Bytes(pad.len() as u64));
    for tier in supported() {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{tier:?}")), &tier, |b, &t| {
            b.iter(|| std::hint::black_box(pad_run_end(&pad, 0, pad.len(), 0x90, t)))
        });
    }
    g.finish();

    // Bulk first-byte classification, block-at-a-time over the whole
    // region — exactly how the sweep hot loop consumes it.
    let mut g = c.benchmark_group("kernel_classify");
    g.throughput(Throughput::Bytes(code.len() as u64));
    for tier in supported() {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{tier:?}")), &tier, |b, &t| {
            b.iter(|| {
                let mut acc = 0u64;
                for block in code.chunks(64) {
                    let cls = classify_block(block, Mode::Bits64, t);
                    acc ^= cls.pad ^ cls.one;
                }
                std::hint::black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
