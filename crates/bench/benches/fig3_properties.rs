//! Figure 3 bench: extracting the three syntactic properties
//! (EndBrAtHead / DirJmpTarget / DirCallTarget) for every function.

use criterion::{criterion_group, criterion_main, Criterion};
use funseeker_bench::{bench_dataset, single_binary};

fn bench(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("property_venn_corpus", |b| {
        b.iter(|| std::hint::black_box(funseeker_eval::fig3::run(&ds).total()))
    });
    let bin = single_binary();
    g.bench_function("property_venn_one_binary", |b| {
        b.iter(|| std::hint::black_box(funseeker_eval::fig3::classify_binary(&bin).total()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
