//! Zero-copy I/O path: `FSC3` record encode, mmap-backed decode, and
//! the pre-encoded reply-bytes memcpy the daemon serves duplicate
//! requests from.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use funseeker::{Analysis, Config, FunSeeker};
use funseeker_batch::{cache, hash_bytes, mix64, ResultCache};
use funseeker_bench::bench_dataset;
use funseeker_elf::Image;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset();
    let config = Config::c4();
    let fp = cache::config_fingerprint(&config);
    let seeker = FunSeeker::with_config(config);
    let analyses: Vec<(u64, Analysis)> = ds
        .binaries
        .iter()
        .map(|b| (hash_bytes(&b.bytes), seeker.identify(&b.bytes).expect("corpus parses")))
        .collect();
    let records: Vec<(u64, Vec<u8>)> = analyses
        .iter()
        .map(|(h, a)| (mix64(*h, fp), cache::encode(*h, fp, a).expect("encodes")))
        .collect();
    let record_bytes: u64 = records.iter().map(|(_, r)| r.len() as u64).sum();

    let mut g = c.benchmark_group("io");
    g.sample_size(20);

    // v3 encode: analysis -> on-disk/wire record.
    g.throughput(Throughput::Bytes(record_bytes));
    g.bench_function("encode_v3", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (h, a) in &analyses {
                total += cache::encode(*h, fp, a).expect("encodes").len();
            }
            std::hint::black_box(total)
        })
    });

    // v3 decode from a memory-mapped file — the disk cache's read path.
    let dir = std::env::temp_dir().join(format!("funseeker-io-crit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let paths: Vec<(u64, std::path::PathBuf)> = records
        .iter()
        .enumerate()
        .map(|(i, (key, record))| {
            let path = dir.join(format!("{i:04}.v3"));
            std::fs::write(&path, record).expect("write record");
            (*key, path)
        })
        .collect();
    g.bench_function("decode_v3_mmap", |b| {
        b.iter(|| {
            let mut functions = 0usize;
            for (key, path) in &paths {
                let image = Image::load(path).expect("record readable");
                let analysis = cache::decode(*key, &image).expect("round trip");
                functions += analysis.functions.len();
            }
            std::hint::black_box(functions)
        })
    });

    // Duplicate-reply memcpy: probing the cached wire bytes and cloning
    // the Arc, versus re-encoding the analysis per request.
    let mem = ResultCache::new();
    let (key0, record0) = &records[0];
    let (h0, a0) = &analyses[0];
    mem.insert(*key0, Arc::new(a0.clone()));
    let _ = mem.set_wire(*key0, Arc::new(record0.clone()));
    g.throughput(Throughput::Bytes(record0.len() as u64));
    g.bench_function("reply_bytes_hit", |b| {
        b.iter(|| {
            let bytes = mem.wire(*key0).expect("wire attached");
            std::hint::black_box(bytes.len())
        })
    });
    g.bench_function("reply_reencode", |b| {
        b.iter(|| {
            let record = cache::encode(*h0, fp, a0).expect("encodes");
            std::hint::black_box(record.len())
        })
    });

    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
