//! Component ablations beyond the paper's tables: substrate throughput
//! (ELF parse, linear sweep, EH parse, PLT resolution) and the
//! SELECTTAILCALL referer-threshold sweep called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use funseeker_bench::single_binary;
use funseeker_disasm::sweep_all;
use funseeker_elf::{Elf, PltMap};

fn bench(c: &mut Criterion) {
    let bin = single_binary();
    let elf = Elf::parse(&bin.bytes).unwrap();
    let (text_addr, text) = elf.section_bytes(".text").unwrap();
    let mode = bin.config.arch.mode();

    let mut g = c.benchmark_group("components");

    g.throughput(Throughput::Bytes(bin.bytes.len() as u64));
    g.bench_function("elf_parse", |b| {
        b.iter(|| std::hint::black_box(Elf::parse(&bin.bytes).unwrap().sections.len()))
    });
    g.bench_function("plt_map", |b| {
        let elf = Elf::parse(&bin.bytes).unwrap();
        b.iter(|| std::hint::black_box(PltMap::from_elf(&elf).unwrap().len()))
    });

    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("linear_sweep", |b| {
        b.iter(|| std::hint::black_box(sweep_all(text, text_addr, mode).stream.len()))
    });

    if let Some((eh_addr, eh)) = elf.section_bytes(".eh_frame") {
        g.throughput(Throughput::Bytes(eh.len() as u64));
        g.bench_function("eh_frame_parse", |b| {
            b.iter(|| {
                std::hint::black_box(
                    funseeker_eh::parse_eh_frame(eh, eh_addr, true).unwrap().fdes.len(),
                )
            })
        });
    }

    // Ablation: SELECTTAILCALL's "multiple referers" threshold.
    let parsed = funseeker::parse::parse(&bin.bytes).unwrap();
    let sweep = funseeker::disassemble::disassemble(&parsed);
    for min_referers in [1usize, 2, 3] {
        let cfg = funseeker::Config { min_tail_referers: min_referers, ..funseeker::Config::c4() };
        let seeker = funseeker::FunSeeker::with_config(cfg);
        g.bench_with_input(
            BenchmarkId::new("selecttailcall_min_referers", min_referers),
            &min_referers,
            |b, _| {
                b.iter(|| std::hint::black_box(seeker.run_stages(&parsed, &sweep).functions.len()))
            },
        );
    }
    // Corpus generation throughput (binaries/second of the simulator).
    g.bench_function("corpus_generate_tiny", |b| {
        b.iter(|| {
            let ds = funseeker_corpus::Dataset::generate(
                &funseeker_corpus::DatasetParams::tiny(),
                std::hint::black_box(11),
            );
            std::hint::black_box(ds.len())
        })
    });

    // ARM BTI extension: fixed-width sweep + identify.
    let arm = funseeker_aarch64::generate(funseeker_aarch64::ArmParams::default(), 7);
    g.throughput(Throughput::Bytes(arm.bytes.len() as u64));
    g.bench_function("arm_bti_identify", |b| {
        let seeker = funseeker_aarch64::BtiSeeker::new();
        b.iter(|| std::hint::black_box(seeker.identify(&arm.bytes).unwrap().functions.len()))
    });

    // Superset endbr pattern scan vs the plain pipeline.
    let scan_cfg = funseeker::Config { endbr_pattern_scan: true, ..funseeker::Config::c4() };
    let scan_seeker = funseeker::FunSeeker::with_config(scan_cfg);
    g.bench_function("endbr_pattern_scan_pipeline", |b| {
        b.iter(|| std::hint::black_box(scan_seeker.identify(&bin.bytes).unwrap().functions.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
