//! Batch-engine corpus throughput: cold-cache, warm-cache, and
//! no-cache rows over a duplicated corpus (each image twice, the
//! structure real corpora have across optimization sweeps and reruns).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use funseeker::Config;
use funseeker_batch::{run, run_with_cache, BatchOptions, ResultCache};
use funseeker_bench::bench_dataset;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut images: Vec<Vec<u8>> = Vec::with_capacity(ds.binaries.len() * 2);
    for _ in 0..2 {
        images.extend(ds.binaries.iter().map(|b| b.bytes.clone()));
    }
    let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();

    let mut g = c.benchmark_group("batch_corpus");
    g.sample_size(10);
    g.throughput(Throughput::Elements(images.len() as u64));

    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            let out = run(&images, &configs, &BatchOptions::default());
            std::hint::black_box(out.stats.unique_images)
        })
    });

    let warm_cache = ResultCache::new();
    let _ = run_with_cache(&images, &configs, &BatchOptions::default(), &warm_cache);
    g.bench_function("warm_cache", |b| {
        b.iter(|| {
            let out = run_with_cache(&images, &configs, &BatchOptions::default(), &warm_cache);
            std::hint::black_box(out.stats.cache_hits)
        })
    });

    let no_cache = BatchOptions { cache: false, ..BatchOptions::default() };
    g.bench_function("no_cache", |b| {
        b.iter(|| {
            let out = run(&images, &configs, &no_cache);
            std::hint::black_box(out.results.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
