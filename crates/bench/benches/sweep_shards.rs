//! Sequential vs sharded linear sweep (the `par_sweep` speedup claim).
//!
//! The corpus binaries are small, so a multi-MB `.text` is synthesized by
//! tiling a real corpus text section — same instruction mix, megabytes of
//! it. Shard counts cover the interesting range: 1 (pure sequential path
//! plus stitch bookkeeping), the typical small-core counts, and 16 (the
//! pipeline's cap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use funseeker_bench::single_binary;
use funseeker_disasm::{par_sweep, sweep_all, Insn, LinearSweep};
use funseeker_elf::Elf;

/// Tiles one binary's `.text` until the buffer crosses `target` bytes.
fn tiled_text(target: usize) -> (Vec<u8>, funseeker_disasm::Mode) {
    let bin = single_binary();
    let elf = Elf::parse(&bin.bytes).unwrap();
    let (_, text) = elf.section_bytes(".text").unwrap();
    let mut code = Vec::with_capacity(target + text.len());
    while code.len() < target {
        code.extend_from_slice(text);
    }
    (code, bin.config.arch.mode())
}

fn bench(c: &mut Criterion) {
    let (code, mode) = tiled_text(4 << 20);
    let base = 0x40_1000u64;

    let mut g = c.benchmark_group("sweep_shards");
    g.throughput(Throughput::Bytes(code.len() as u64));

    g.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(sweep_all(&code, base, mode).stream.len()))
    });
    // The pre-packed-stream representation: the plain decode iterator
    // collected into 32-byte `Insn` values — the old `sweep_all` body.
    // Keeping it benchmarked quantifies what the fast paths plus the
    // 6-byte structure-of-arrays stream buy on identical input.
    g.bench_function("legacy_aos", |b| {
        b.iter(|| {
            let insns: Vec<Insn> = LinearSweep::new(&code, base, mode).collect();
            std::hint::black_box(insns.len())
        })
    });
    for shards in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &n| {
            b.iter(|| std::hint::black_box(par_sweep(&code, base, mode, n).stream.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
