//! Table I bench: cost of classifying every end-branch location
//! (function entry vs indirect-return point vs landing pad) over the
//! corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use funseeker_bench::bench_dataset;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("classify_all_endbrs", |b| {
        b.iter(|| {
            let t1 = funseeker_eval::table1::run(&ds);
            std::hint::black_box(t1.groups.len())
        })
    });
    let bin = funseeker_bench::single_binary();
    g.bench_function("classify_one_binary", |b| {
        b.iter(|| std::hint::black_box(funseeker_eval::table1::classify_binary(&bin)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
