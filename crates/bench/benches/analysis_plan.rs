//! Shared-plan analysis: the plan-once four-configuration derivation vs
//! the naive four independent stage runs, over the benchmark corpus's
//! prepared images (parse + sweep excluded — this isolates the back
//! end the [`funseeker::AnalysisPlan`] fuses).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use funseeker::{prepare, AnalysisPlan, Config, FunSeeker, Prepared, Scratch};
use funseeker_bench::bench_dataset;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset();
    let images: Vec<&[u8]> = ds.binaries.iter().map(|b| b.bytes.as_slice()).collect();
    let prepared: Vec<Prepared<'_>> =
        images.iter().map(|b| prepare(b).expect("bench binary prepares")).collect();
    let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();

    let mut g = c.benchmark_group("analysis_plan");
    g.throughput(Throughput::Elements(prepared.len() as u64));

    // Four full stage pipelines per binary, shared scratch arena — the
    // pre-plan analyze stage at its best.
    let mut scratch = Scratch::new();
    g.bench_function("naive_4config", |b| {
        b.iter(|| {
            let mut functions = 0usize;
            for p in &prepared {
                for cfg in &configs {
                    let a = FunSeeker::with_config(*cfg).run_stages_with(
                        &p.parsed,
                        &p.index,
                        &mut scratch,
                    );
                    functions += a.functions.len();
                }
            }
            std::hint::black_box(functions)
        })
    });

    // One plan rebuild per binary, each configuration derived by set
    // algebra.
    let mut plan = AnalysisPlan::new();
    g.bench_function("plan_4config", |b| {
        b.iter(|| {
            let mut functions = 0usize;
            for p in &prepared {
                plan.rebuild(&p.parsed, &p.index, &mut scratch);
                for cfg in &configs {
                    let a = plan.derive(cfg, &p.parsed, &p.index, &mut scratch);
                    functions += a.functions.len();
                }
            }
            std::hint::black_box(functions)
        })
    });

    // The plan rebuild alone — what a single-configuration caller pays
    // on top of the sweep before the (near-free) derivation.
    g.bench_function("plan_rebuild", |b| {
        b.iter(|| {
            for p in &prepared {
                plan.rebuild(&p.parsed, &p.index, &mut scratch);
                std::hint::black_box(plan.filtered_entry_count());
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
