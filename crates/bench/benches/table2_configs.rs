//! Table II bench: the four FunSeeker configurations (1)-(4) per binary —
//! how much each stage (FILTERENDBR, J, SELECTTAILCALL) costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funseeker::{Config, FunSeeker};
use funseeker_bench::single_binary;

fn bench(c: &mut Criterion) {
    let bin = single_binary();
    let mut g = c.benchmark_group("table2");
    for (label, cfg) in Config::table2() {
        let seeker = FunSeeker::with_config(cfg);
        g.bench_with_input(BenchmarkId::new("config", label), &bin.bytes, |b, bytes| {
            b.iter(|| std::hint::black_box(seeker.identify(bytes).unwrap().functions.len()))
        });
    }
    // Stage reuse: parse+sweep once, run all four stage combinations.
    g.bench_function("all_four_shared_sweep", |b| {
        b.iter(|| {
            let parsed = funseeker::parse::parse(&bin.bytes).unwrap();
            let sweep = funseeker::disassemble::disassemble(&parsed);
            let mut n = 0;
            for (_, cfg) in Config::table2() {
                n += FunSeeker::with_config(cfg).run_stages(&parsed, &sweep).functions.len();
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
