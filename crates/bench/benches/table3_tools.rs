//! Table III bench — the §V-D timing comparison: per-binary analysis
//! time for each identifier. The paper's headline is FunSeeker being
//! ~5× faster than FETCH; the measured ratio on this corpus is printed
//! by `experiments -- table3` and tracked here per tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use funseeker_baselines::{
    FetchLike, FunSeekerTool, FunctionIdentifier, GhidraLike, IdaLike, NaiveEndbr,
};
use funseeker_bench::single_binary;

fn bench(c: &mut Criterion) {
    let bin = single_binary();
    let tools: Vec<Box<dyn FunctionIdentifier>> = vec![
        Box::new(FunSeekerTool::new()),
        Box::new(IdaLike),
        Box::new(GhidraLike),
        Box::new(FetchLike),
        Box::new(NaiveEndbr),
    ];
    let mut g = c.benchmark_group("table3");
    g.throughput(Throughput::Bytes(bin.bytes.len() as u64));
    for tool in &tools {
        g.bench_with_input(BenchmarkId::new("identify", tool.name()), &bin.bytes, |b, bytes| {
            b.iter(|| std::hint::black_box(tool.identify(bytes).unwrap().len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
