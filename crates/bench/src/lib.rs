//! Shared fixtures for the Criterion benchmarks.
//!
//! One bench target per paper table/figure plus component ablations —
//! see `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use funseeker_corpus::{BuildConfig, CorpusBinary, Dataset, DatasetParams};

/// A small but representative benchmark corpus: every build
/// configuration, a few programs per suite, fixed seed.
pub fn bench_dataset() -> Dataset {
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = BuildConfig::grid();
    Dataset::generate(&params, 0xBE7C4)
}

/// One mid-sized x86-64 GCC binary for per-binary benchmarks.
pub fn single_binary() -> CorpusBinary {
    let ds = bench_dataset();
    ds.binaries
        .into_iter()
        .filter(|b| {
            b.config.arch == funseeker_corpus::Arch::X64
                && b.config.compiler == funseeker_corpus::Compiler::Gcc
        })
        .max_by_key(|b| b.bytes.len())
        .expect("dataset is non-empty")
}
