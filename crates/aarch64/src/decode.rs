//! AArch64 (A64) instruction classification.
//!
//! A64 is a fixed-width 32-bit ISA, so "disassembly" reduces to masking
//! each aligned word — there is no length-decoding problem and no
//! resynchronization concern, which is why the paper calls the BTI
//! extension straightforward (§VI). Only the instruction classes function
//! identification needs are distinguished.

/// Classification of one A64 instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum A64Kind {
    /// `BTI` (no operand) — valid target of both call and jump.
    Bti,
    /// `BTI c` — valid *call* target: the marker at function entries.
    BtiC,
    /// `BTI j` — valid *jump* target: switch labels, not entries.
    BtiJ,
    /// `BTI jc` — valid target of either.
    BtiJc,
    /// `PACIASP`/`PACIBSP` — pointer-authentication prologue that also
    /// acts as an implicit BTI landing pad.
    PacSp,
    /// `BL imm26` — direct call.
    Bl {
        /// Absolute destination.
        target: u64,
    },
    /// `B imm26` — direct jump (tail calls, intra-function jumps).
    B {
        /// Absolute destination.
        target: u64,
    },
    /// Conditional branch (`B.cond`, `CBZ`, `CBNZ`, `TBZ`, `TBNZ`).
    BCond {
        /// Absolute destination.
        target: u64,
    },
    /// `BLR Xn` — indirect call (checked against BTI c).
    Blr,
    /// `BR Xn` — indirect jump (checked against BTI j).
    Br,
    /// `RET {Xn}`.
    Ret,
    /// `NOP`.
    Nop,
    /// Anything else.
    Other,
}

impl A64Kind {
    /// Whether this marker makes the address a valid *call* target
    /// (what Intel's `ENDBR` + FunSeeker's `E` correspond to).
    pub fn is_call_landing(self) -> bool {
        matches!(self, A64Kind::Bti | A64Kind::BtiC | A64Kind::BtiJc | A64Kind::PacSp)
    }

    /// Whether this marker is a *jump-only* landing pad (`BTI j`).
    pub fn is_jump_only_landing(self) -> bool {
        matches!(self, A64Kind::BtiJ)
    }

    /// Direct branch destination, if any.
    pub fn direct_target(self) -> Option<u64> {
        match self {
            A64Kind::Bl { target } | A64Kind::B { target } | A64Kind::BCond { target } => {
                Some(target)
            }
            _ => None,
        }
    }
}

fn sext(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Classifies the A64 word at `addr`.
pub fn decode_a64(word: u32, addr: u64) -> A64Kind {
    // Hint space: D503201F | op<<5.
    match word {
        0xD503_201F => return A64Kind::Nop,
        0xD503_241F => return A64Kind::Bti,
        0xD503_245F => return A64Kind::BtiC,
        0xD503_249F => return A64Kind::BtiJ,
        0xD503_24DF => return A64Kind::BtiJc,
        0xD503_233F | 0xD503_237F => return A64Kind::PacSp,
        _ => {}
    }
    // BL / B: imm26.
    if word & 0xFC00_0000 == 0x9400_0000 {
        let off = sext(u64::from(word & 0x03FF_FFFF), 26) * 4;
        return A64Kind::Bl { target: addr.wrapping_add(off as u64) };
    }
    if word & 0xFC00_0000 == 0x1400_0000 {
        let off = sext(u64::from(word & 0x03FF_FFFF), 26) * 4;
        return A64Kind::B { target: addr.wrapping_add(off as u64) };
    }
    // B.cond: 0101010x…, imm19.
    if word & 0xFF00_0010 == 0x5400_0000 {
        let off = sext(u64::from((word >> 5) & 0x7FFFF), 19) * 4;
        return A64Kind::BCond { target: addr.wrapping_add(off as u64) };
    }
    // CBZ/CBNZ: x011010x, imm19.
    if word & 0x7E00_0000 == 0x3400_0000 {
        let off = sext(u64::from((word >> 5) & 0x7FFFF), 19) * 4;
        return A64Kind::BCond { target: addr.wrapping_add(off as u64) };
    }
    // TBZ/TBNZ: x011011x, imm14.
    if word & 0x7E00_0000 == 0x3600_0000 {
        let off = sext(u64::from((word >> 5) & 0x3FFF), 14) * 4;
        return A64Kind::BCond { target: addr.wrapping_add(off as u64) };
    }
    // BLR / BR / RET: D63F0000 / D61F0000 / D65F0000 | Rn<<5.
    match word & 0xFFFF_FC1F {
        0xD63F_0000 => return A64Kind::Blr,
        0xD61F_0000 => return A64Kind::Br,
        0xD65F_0000 => return A64Kind::Ret,
        _ => {}
    }
    A64Kind::Other
}

/// Sweeps an AArch64 code region word by word.
pub fn sweep_a64(code: &[u8], base: u64) -> impl Iterator<Item = (u64, A64Kind)> + '_ {
    code.chunks_exact(4).enumerate().map(move |(i, w)| {
        let addr = base + (i as u64) * 4;
        let word = u32::from_le_bytes(w.try_into().expect("chunks_exact(4)"));
        (addr, decode_a64(word, addr))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_space_markers() {
        assert_eq!(decode_a64(0xD503245F, 0), A64Kind::BtiC);
        assert_eq!(decode_a64(0xD503249F, 0), A64Kind::BtiJ);
        assert_eq!(decode_a64(0xD50324DF, 0), A64Kind::BtiJc);
        assert_eq!(decode_a64(0xD503241F, 0), A64Kind::Bti);
        assert_eq!(decode_a64(0xD503233F, 0), A64Kind::PacSp);
        assert_eq!(decode_a64(0xD503201F, 0), A64Kind::Nop);
        assert!(A64Kind::BtiC.is_call_landing());
        assert!(A64Kind::PacSp.is_call_landing());
        assert!(!A64Kind::BtiJ.is_call_landing());
        assert!(A64Kind::BtiJ.is_jump_only_landing());
    }

    #[test]
    fn direct_branches() {
        // bl +8 at 0x1000: 0x94000002.
        assert_eq!(decode_a64(0x9400_0002, 0x1000), A64Kind::Bl { target: 0x1008 });
        // b -4: imm26 = -1 → 0x17FFFFFF.
        assert_eq!(decode_a64(0x17FF_FFFF, 0x1000), A64Kind::B { target: 0xFFC });
        // b.eq +16: 0x54000080.
        assert_eq!(decode_a64(0x5400_0080, 0x2000), A64Kind::BCond { target: 0x2010 });
        // cbz x0, +8: 0xB4000040.
        assert_eq!(decode_a64(0xB400_0040, 0x3000), A64Kind::BCond { target: 0x3008 });
        // tbz w0, #0, +8: 0x36000040.
        assert_eq!(decode_a64(0x3600_0040, 0x4000), A64Kind::BCond { target: 0x4008 });
    }

    #[test]
    fn indirect_and_ret() {
        assert_eq!(decode_a64(0xD63F_0100, 0), A64Kind::Blr); // blr x8
        assert_eq!(decode_a64(0xD61F_0100, 0), A64Kind::Br); // br x8
        assert_eq!(decode_a64(0xD65F_03C0, 0), A64Kind::Ret); // ret (x30)
    }

    #[test]
    fn ordinary_instructions_are_other() {
        for w in
            [0x9100_0000u32 /* add */, 0xF940_0000 /* ldr */, 0xAA00_03E0 /* mov */]
        {
            assert_eq!(decode_a64(w, 0), A64Kind::Other);
        }
    }

    #[test]
    fn sweep_walks_words() {
        let mut code = Vec::new();
        code.extend_from_slice(&0xD503_245Fu32.to_le_bytes()); // bti c
        code.extend_from_slice(&0xD65F_03C0u32.to_le_bytes()); // ret
        let out: Vec<_> = sweep_a64(&code, 0x1000).collect();
        assert_eq!(out, vec![(0x1000, A64Kind::BtiC), (0x1004, A64Kind::Ret)]);
    }

    #[test]
    fn target_arithmetic_round_trips() {
        // Encode bl to every multiple-of-4 displacement in a range and
        // decode back.
        for disp in (-64i64..64).map(|d| d * 4) {
            let imm26 = ((disp / 4) as u32) & 0x03FF_FFFF;
            let word = 0x9400_0000 | imm26;
            let addr = 0x10_0000u64;
            assert_eq!(
                decode_a64(word, addr),
                A64Kind::Bl { target: addr.wrapping_add(disp as u64) },
                "disp {disp}"
            );
        }
    }
}
