//! BTI-enabled AArch64 corpus emitter.
//!
//! Mirrors the x86 corpus generator's semantics on ARM: functions with
//! external linkage or a taken address start with `BTI c` (or `PACIASP`
//! when return-address signing is modeled), statics do not, switch labels
//! get `BTI j`, and direct `B` edges form tail calls. Emits a minimal
//! ELF64/AArch64 image plus exact ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use funseeker_elf::{Class, ElfBuilder, Machine, ObjectType, Symbol, SymbolBinding, SymbolType};

/// `e_machine` value for AArch64.
pub const EM_AARCH64: u16 = 183;

/// One generated ARM function's ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmFunctionTruth {
    /// Name.
    pub name: String,
    /// Entry address.
    pub addr: u64,
    /// Starts with a call-valid landing pad (`BTI c`/`jc`/`PACIASP`).
    pub has_bti: bool,
    /// Dead code (never referenced).
    pub dead: bool,
}

/// A generated BTI binary with ground truth.
#[derive(Debug, Clone)]
pub struct ArmBinary {
    /// The ELF image.
    pub bytes: Vec<u8>,
    /// Ground truth, sorted by address.
    pub functions: Vec<ArmFunctionTruth>,
    /// `[start, end)` of `.text`.
    pub text_range: (u64, u64),
}

impl ArmBinary {
    /// Ground-truth entry set.
    pub fn entries(&self) -> std::collections::BTreeSet<u64> {
        self.functions.iter().map(|f| f.addr).collect()
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArmParams {
    /// Number of functions.
    pub functions: usize,
    /// Fraction with static linkage (no `BTI c`).
    pub static_frac: f64,
    /// Fraction of statics with their address taken (`BTI c` anyway).
    pub addr_taken_frac: f64,
    /// Fraction of statics that are dead.
    pub dead_frac: f64,
    /// Use `PACIASP` instead of `BTI c` for this fraction of marked
    /// functions (return-address signing, an implicit landing pad).
    pub pac_frac: f64,
    /// Fraction of functions containing a `BR`-based switch with
    /// `BTI j` labels.
    pub switch_frac: f64,
    /// Shared tail-call targets per binary.
    pub shared_tails: usize,
}

impl Default for ArmParams {
    fn default() -> Self {
        ArmParams {
            functions: 40,
            static_frac: 0.22,
            addr_taken_frac: 0.45,
            dead_frac: 0.03,
            pac_frac: 0.3,
            switch_frac: 0.12,
            shared_tails: 1,
        }
    }
}

const TEXT_BASE: u64 = 0x40_0000;

struct Fn_ {
    marked: bool,
    pac: bool,
    dead: bool,
    is_static: bool,
    addr_taken: bool,
    calls: Vec<usize>,
    tail: Option<usize>,
    has_switch: bool,
    body: usize,
}

/// Generates one BTI-enabled binary.
pub fn generate(params: ArmParams, seed: u64) -> ArmBinary {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.functions.max(4);

    // --- plan functions ---
    let mut plan: Vec<Fn_> = (0..n)
        .map(|i| {
            let is_static = i != 0 && rng.gen_bool(params.static_frac);
            let addr_taken = is_static && rng.gen_bool(params.addr_taken_frac);
            let dead = is_static && !addr_taken && rng.gen_bool(params.dead_frac);
            let marked = !is_static || addr_taken;
            Fn_ {
                marked,
                pac: marked && rng.gen_bool(params.pac_frac),
                dead,
                is_static,
                addr_taken,
                calls: Vec::new(),
                tail: None,
                has_switch: rng.gen_bool(params.switch_frac),
                body: rng.gen_range(4..24),
            }
        })
        .collect();

    // Call graph over ~half the functions.
    let pool: Vec<usize> = (1..n).filter(|&i| !plan[i].dead && rng.gen_bool(0.5)).collect();
    if !pool.is_empty() {
        for (i, f) in plan.iter_mut().enumerate().take(n) {
            for _ in 0..rng.gen_range(0..3usize) {
                let c = pool[rng.gen_range(0..pool.len())];
                if c != i && !f.calls.contains(&c) {
                    f.calls.push(c);
                }
            }
        }
    }
    // Shared tail targets.
    for _ in 0..params.shared_tails {
        let target = rng.gen_range(1..n);
        if plan[target].dead {
            continue;
        }
        let mut callers = 0;
        for _ in 0..8 {
            let c = rng.gen_range(1..n);
            if c != target && c + 1 != target && !plan[c].dead && plan[c].tail.is_none() {
                plan[c].tail = Some(target);
                callers += 1;
            }
            if callers >= 2 {
                break;
            }
        }
    }
    // Referenced-ness guarantee for live unmarked statics.
    for i in 1..n {
        if plan[i].is_static && !plan[i].addr_taken && !plan[i].dead {
            let called = plan.iter().any(|f| f.calls.contains(&i));
            let tailed = plan.iter().any(|f| f.tail == Some(i));
            if !called && !tailed {
                plan[0].calls.push(i);
            }
        }
    }

    // --- emit code (two passes: size, then addresses + fixups) ---
    let word = |v: u32, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
    let size_of = |f: &Fn_| -> usize {
        let mut words = 0usize;
        if f.marked {
            words += 1;
        }
        words += f.body;
        words += f.calls.len();
        if f.addr_taken { /* taker emits the ADRP pair */ }
        if f.has_switch {
            words += 3 /* dispatch */ + 2 * 3 /* labels */;
        }
        words += 1; // ret or tail b
        words
    };
    let mut addrs = Vec::with_capacity(n);
    let mut cursor = TEXT_BASE;
    for f in &plan {
        // 16-byte align entries like real toolchains.
        cursor = cursor.div_ceil(16) * 16;
        addrs.push(cursor);
        cursor += (size_of(f) * 4) as u64;
    }

    let mut text: Vec<u8> = Vec::new();
    for (i, f) in plan.iter().enumerate() {
        while TEXT_BASE + text.len() as u64 != addrs[i] {
            word(0xD503_201F, &mut text); // nop padding
        }
        if f.marked {
            word(if f.pac { 0xD503_233F } else { 0xD503_245F }, &mut text);
        }
        // Filler: mov/add/orr immediates (valid, data-processing only).
        for k in 0..f.body {
            let filler = [0x9100_0421u32, 0xAA01_03E2, 0xD280_0023, 0x8B02_0063][k % 4];
            word(filler, &mut text);
        }
        for &callee in &f.calls {
            let here = TEXT_BASE + text.len() as u64;
            let disp = (addrs[callee].wrapping_sub(here) as i64) / 4;
            word(0x9400_0000 | ((disp as u32) & 0x03FF_FFFF), &mut text);
        }
        if f.has_switch {
            // Dispatch: adr x9, table-ish; br x9 — with two BTI j labels.
            word(0xD280_0049, &mut text); // mov x9, #2 (stand-in)
            word(0x8B09_0129, &mut text); // add x9, x9, x9
            word(0xD61F_0120, &mut text); // br x9
            for _ in 0..2 {
                word(0xD503_249F, &mut text); // bti j — jump-only label
                word(0x9100_0421, &mut text); // add
                word(0xD280_0023, &mut text); // mov (fall through to next case)
            }
        }
        if let Some(t) = f.tail {
            let here = TEXT_BASE + text.len() as u64;
            let disp = (addrs[t].wrapping_sub(here) as i64) / 4;
            word(0x1400_0000 | ((disp as u32) & 0x03FF_FFFF), &mut text);
        } else {
            word(0xD65F_03C0, &mut text); // ret
        }
    }
    let text_end = TEXT_BASE + text.len() as u64;

    // --- ELF + symbols ---
    let mut b = ElfBuilder::new(Class::Elf64, Machine::Other(EM_AARCH64), ObjectType::Executable);
    b.entry(addrs[0]);
    b.section(
        ".note.gnu.property",
        funseeker_elf::SectionType::Note,
        funseeker_elf::section::SHF_ALLOC,
        TEXT_BASE - 0x200,
        crate::note::build_bti_note(crate::note::BtiProperties { bti: true, pac: true }),
        None,
        0,
        8,
        0,
    );
    b.text(".text", TEXT_BASE, text);
    let symbols: Vec<Symbol> = plan
        .iter()
        .enumerate()
        .map(|(i, f)| Symbol {
            name: if i == 0 { "main".into() } else { format!("fn_{i}") },
            value: addrs[i],
            size: (size_of(f) * 4) as u64,
            symbol_type: SymbolType::Func,
            binding: if f.is_static { SymbolBinding::Local } else { SymbolBinding::Global },
            shndx: 1,
        })
        .collect();
    b.symbol_table(".symtab", 0, &symbols);
    let bytes = b.build().expect("ARM corpus layout encodable");

    let functions = plan
        .iter()
        .enumerate()
        .map(|(i, f)| ArmFunctionTruth {
            name: if i == 0 { "main".into() } else { format!("fn_{i}") },
            addr: addrs[i],
            has_bti: f.marked,
            dead: f.dead,
        })
        .collect();

    ArmBinary { bytes, functions, text_range: (TEXT_BASE, text_end) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::sweep_a64;

    #[test]
    fn generated_binary_is_consistent() {
        let bin = generate(ArmParams::default(), 11);
        let elf = funseeker_elf::Elf::parse(&bin.bytes).unwrap();
        assert_eq!(elf.header.machine, Machine::Other(EM_AARCH64));
        let (addr, text) = elf.section_bytes(".text").unwrap();
        assert_eq!((addr, addr + text.len() as u64), bin.text_range);

        // Every marked function starts with a call-valid landing pad;
        // every unmarked one does not.
        let landings: std::collections::BTreeSet<u64> =
            sweep_a64(text, addr).filter(|(_, k)| k.is_call_landing()).map(|(a, _)| a).collect();
        for f in &bin.functions {
            assert_eq!(landings.contains(&f.addr), f.has_bti, "{}", f.name);
        }
    }

    #[test]
    fn switch_labels_are_bti_j_not_c() {
        let params = ArmParams { switch_frac: 1.0, ..Default::default() };
        let bin = generate(params, 3);
        let elf = funseeker_elf::Elf::parse(&bin.bytes).unwrap();
        let (addr, text) = elf.section_bytes(".text").unwrap();
        let btij = sweep_a64(text, addr).filter(|(_, k)| k.is_jump_only_landing()).count();
        assert!(btij > 0, "switch labels must carry BTI j");
        // None of them coincides with a function entry.
        let entries = bin.entries();
        for (a, k) in sweep_a64(text, addr) {
            if k.is_jump_only_landing() {
                assert!(!entries.contains(&a));
            }
        }
    }

    #[test]
    fn determinism() {
        let a = generate(ArmParams::default(), 5);
        let b = generate(ArmParams::default(), 5);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.functions, b.functions);
    }
}
