//! BTI-based function identification — FunSeeker's algorithm transplanted
//! to AArch64 (§VI of the paper: "end-branch instructions in both
//! architectures behave almost the same").
//!
//! The mapping is direct:
//!
//! | x86 concept | AArch64 counterpart |
//! |---|---|
//! | `ENDBR64` at entries | `BTI c` / `BTI jc` / `PACIASP` |
//! | `notrack` switch labels | `BTI j` (jump-only, **not** entries) |
//! | direct `call` targets `C` | `BL` targets |
//! | direct `jmp` targets `J` | `B` targets |
//! | SELECTTAILCALL | identical — reused from the core crate |
//!
//! Two x86 complications vanish on ARM: fixed-width instructions make
//! the sweep trivially exact, and `BTI j` *syntactically* distinguishes
//! the jump-only landing pads that FILTERENDBR had to infer from LSDAs
//! on x86.

use std::collections::BTreeSet;

use funseeker::tailcall::select_tail_calls;
use funseeker_elf::Elf;

use crate::decode::sweep_a64;
use crate::emit::EM_AARCH64;

/// Analysis result for one AArch64 binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmAnalysis {
    /// Identified function entries.
    pub functions: BTreeSet<u64>,
    /// Number of call-valid landing pads seen.
    pub landing_count: usize,
    /// Number of jump-only (`BTI j`) pads skipped.
    pub bti_j_count: usize,
    /// Tail-call targets selected from `B` edges.
    pub tail_target_count: usize,
}

/// Configuration for the BTI identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtiConfig {
    /// Include tail-call selection over `B` targets.
    pub select_tail_calls: bool,
    /// Condition (2) threshold, as on x86.
    pub min_tail_referers: usize,
}

impl Default for BtiConfig {
    fn default() -> Self {
        BtiConfig { select_tail_calls: true, min_tail_referers: 2 }
    }
}

/// The BTI-based identifier.
#[derive(Debug, Clone, Default)]
pub struct BtiSeeker {
    config: BtiConfig,
}

impl BtiSeeker {
    /// Full default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// With an explicit configuration.
    pub fn with_config(config: BtiConfig) -> Self {
        BtiSeeker { config }
    }

    /// Identifies function entries in a raw AArch64 ELF image.
    pub fn identify(&self, bytes: &[u8]) -> Result<ArmAnalysis, funseeker::Error> {
        let elf = Elf::parse(bytes)?;
        if elf.header.machine != funseeker_elf::Machine::Other(EM_AARCH64) {
            // Not ARM — the caller wanted the x86 pipeline.
            return Err(funseeker::Error::NoText);
        }
        let (text_addr, text) = elf.section_bytes(".text").ok_or(funseeker::Error::NoText)?;
        let text_end = text_addr + text.len() as u64;
        let in_text = |a: u64| a >= text_addr && a < text_end;

        let mut landings = BTreeSet::new();
        let mut bti_j = 0usize;
        let mut call_targets = BTreeSet::new();
        let mut jmp_edges: Vec<(u64, u64)> = Vec::new();
        for (addr, kind) in sweep_a64(text, text_addr) {
            if kind.is_call_landing() {
                landings.insert(addr);
            } else if kind.is_jump_only_landing() {
                bti_j += 1;
            }
            match kind {
                crate::decode::A64Kind::Bl { target } if in_text(target) => {
                    call_targets.insert(target);
                }
                crate::decode::A64Kind::B { target } if in_text(target) => {
                    jmp_edges.push((addr, target));
                }
                _ => {}
            }
        }

        let landing_count = landings.len();
        let mut functions = landings;
        functions.extend(call_targets.iter().copied());

        let mut tail_count = 0;
        if self.config.select_tail_calls {
            // SELECTTAILCALL takes its candidates as a sorted slice; the
            // BTreeSet iterates in exactly that order.
            let candidates: Vec<u64> = functions.iter().copied().collect();
            let tails = select_tail_calls(
                &candidates,
                &jmp_edges,
                self.config.min_tail_referers,
                &[text_addr],
            );
            tail_count = tails.len();
            functions.extend(tails);
        }

        Ok(ArmAnalysis {
            functions,
            landing_count,
            bti_j_count: bti_j,
            tail_target_count: tail_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{generate, ArmParams};

    #[test]
    fn accuracy_on_generated_bti_binaries() {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for seed in 0..30u64 {
            let bin = generate(ArmParams::default(), seed);
            let truth = bin.entries();
            let a = BtiSeeker::new().identify(&bin.bytes).unwrap();
            tp += a.functions.intersection(&truth).count();
            fp += a.functions.difference(&truth).count();
            fn_ += truth.difference(&a.functions).count();
        }
        let prec = tp as f64 / (tp + fp) as f64;
        let rec = tp as f64 / (tp + fn_) as f64;
        assert!(prec > 0.99, "precision {prec:.4}");
        assert!(rec > 0.99, "recall {rec:.4}");
    }

    #[test]
    fn bti_j_labels_are_never_reported() {
        let params = ArmParams { switch_frac: 1.0, ..Default::default() };
        let bin = generate(params, 9);
        let a = BtiSeeker::new().identify(&bin.bytes).unwrap();
        assert!(a.bti_j_count > 0);
        // All reported functions are genuine entries or dead-code misses;
        // no BTI j address sneaks in (they are all non-entries by
        // construction, so precision tells the story).
        let truth = bin.entries();
        for f in &a.functions {
            assert!(truth.contains(f), "false positive at {f:#x}");
        }
    }

    #[test]
    fn residual_misses_are_dead_code() {
        for seed in 0..10u64 {
            let bin = generate(ArmParams::default(), seed);
            let truth = bin.entries();
            let a = BtiSeeker::new().identify(&bin.bytes).unwrap();
            for missed in truth.difference(&a.functions) {
                let f = bin.functions.iter().find(|f| f.addr == *missed).unwrap();
                assert!(f.dead, "live function {} missed", f.name);
            }
        }
    }

    #[test]
    fn rejects_x86_images() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        assert!(BtiSeeker::new().identify(&bytes).is_err());
    }
}
