//! Textual rendering of classified A64 instructions.

use crate::decode::A64Kind;

/// Formats one classified instruction. Unclassified words render as a
/// raw `.inst` directive, the honest fallback.
pub fn format_a64(word: u32, addr: u64) -> String {
    match crate::decode::decode_a64(word, addr) {
        A64Kind::Bti => "bti".to_owned(),
        A64Kind::BtiC => "bti c".to_owned(),
        A64Kind::BtiJ => "bti j".to_owned(),
        A64Kind::BtiJc => "bti jc".to_owned(),
        A64Kind::PacSp => {
            if word == 0xD503_233F {
                "paciasp".to_owned()
            } else {
                "pacibsp".to_owned()
            }
        }
        A64Kind::Bl { target } => format!("bl {target:#x}"),
        A64Kind::B { target } => format!("b {target:#x}"),
        A64Kind::BCond { target } => {
            // Distinguish the three conditional families for readability.
            if word & 0xFF00_0010 == 0x5400_0000 {
                const COND: [&str; 16] = [
                    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt",
                    "le", "al", "nv",
                ];
                format!("b.{} {target:#x}", COND[(word & 0xf) as usize])
            } else if word & 0x7E00_0000 == 0x3400_0000 {
                let mnem = if word & 0x0100_0000 != 0 { "cbnz" } else { "cbz" };
                let reg = word & 0x1f;
                let wide = word >> 31 == 1;
                format!("{mnem} {}{reg}, {target:#x}", if wide { 'x' } else { 'w' })
            } else {
                let mnem = if word & 0x0100_0000 != 0 { "tbnz" } else { "tbz" };
                let reg = word & 0x1f;
                let bit = ((word >> 31) << 5) | ((word >> 19) & 0x1f);
                format!("{mnem} w{reg}, #{bit}, {target:#x}")
            }
        }
        A64Kind::Blr => format!("blr x{}", (word >> 5) & 0x1f),
        A64Kind::Br => format!("br x{}", (word >> 5) & 0x1f),
        A64Kind::Ret => {
            let rn = (word >> 5) & 0x1f;
            if rn == 30 {
                "ret".to_owned()
            } else {
                format!("ret x{rn}")
            }
        }
        A64Kind::Nop => "nop".to_owned(),
        A64Kind::Other => format!(".inst {word:#010x}"),
    }
}

/// Renders a whole code region, one line per word.
pub fn format_region(code: &[u8], base: u64) -> String {
    let mut out = String::new();
    for (addr, _) in crate::decode::sweep_a64(code, base) {
        let off = (addr - base) as usize;
        let word = u32::from_le_bytes(code[off..off + 4].try_into().expect("aligned"));
        out.push_str(&format!("{addr:#x}: {}\n", format_a64(word, addr)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_the_classified_vocabulary() {
        assert_eq!(format_a64(0xD503_245F, 0), "bti c");
        assert_eq!(format_a64(0xD503_249F, 0), "bti j");
        assert_eq!(format_a64(0xD503_233F, 0), "paciasp");
        assert_eq!(format_a64(0xD503_237F, 0), "pacibsp");
        assert_eq!(format_a64(0x9400_0002, 0x1000), "bl 0x1008");
        assert_eq!(format_a64(0x1400_0002, 0x1000), "b 0x1008");
        assert_eq!(format_a64(0x5400_0040, 0x1000), "b.eq 0x1008");
        assert_eq!(format_a64(0x5400_0041, 0x1000), "b.ne 0x1008");
        assert_eq!(format_a64(0xB400_0040, 0x1000), "cbz x0, 0x1008");
        assert_eq!(format_a64(0x3500_0040, 0x1000), "cbnz w0, 0x1008");
        assert_eq!(format_a64(0x3600_0040, 0x1000), "tbz w0, #0, 0x1008");
        assert_eq!(format_a64(0xD63F_0100, 0), "blr x8");
        assert_eq!(format_a64(0xD61F_0100, 0), "br x8");
        assert_eq!(format_a64(0xD65F_03C0, 0), "ret");
        assert_eq!(format_a64(0xD65F_0040, 0), "ret x2");
        assert_eq!(format_a64(0xD503_201F, 0), "nop");
        assert_eq!(format_a64(0x9100_0421, 0), ".inst 0x91000421");
    }

    #[test]
    fn region_rendering_lines_up() {
        let mut code = Vec::new();
        code.extend_from_slice(&0xD503_245Fu32.to_le_bytes());
        code.extend_from_slice(&0xD65F_03C0u32.to_le_bytes());
        let s = format_region(&code, 0x4000);
        assert_eq!(s, "0x4000: bti c\n0x4004: ret\n");
    }

    #[test]
    fn generated_binary_renders_without_inst_at_entries() {
        let bin = crate::emit::generate(crate::emit::ArmParams::default(), 1);
        let elf = funseeker_elf::Elf::parse(&bin.bytes).unwrap();
        let (addr, text) = elf.section_bytes(".text").unwrap();
        let rendered = format_region(text, addr);
        // Every marked entry appears as a bti/pac line at its address.
        for f in bin.functions.iter().filter(|f| f.has_bti) {
            let needle_b = format!("{:#x}: bti c", f.addr);
            let needle_p = format!("{:#x}: paciasp", f.addr);
            assert!(
                rendered.contains(&needle_b) || rendered.contains(&needle_p),
                "{} at {:#x} not rendered as a landing pad",
                f.name,
                f.addr
            );
        }
    }
}
