//! ARM BTI extension of the FunSeeker reproduction — the paper's §VI
//! future work, implemented.
//!
//! ARMv8.5's Branch Target Identification plays the same role as Intel
//! CET's Indirect Branch Tracking: indirect-branch targets must carry a
//! `BTI` marker (or a `PACIASP`, which doubles as one). This crate
//! transplants FunSeeker's algorithm to AArch64:
//!
//! * [`decode`] — a fixed-width A64 classifier (`BTI c/j/jc`, `PACIASP`,
//!   `BL`/`B`/conditional branches, `BLR`/`BR`/`RET`),
//! * [`emit`] — a seeded BTI-enabled AArch64 corpus generator with exact
//!   ground truth,
//! * [`identify`] — the BTI-based identifier, reusing the core crate's
//!   SELECTTAILCALL verbatim.
//!
//! ```
//! use funseeker_aarch64::{generate, ArmParams, BtiSeeker};
//! let bin = generate(ArmParams::default(), 42);
//! let analysis = BtiSeeker::new().identify(&bin.bytes).unwrap();
//! assert!(!analysis.functions.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod emit;
pub mod format;
pub mod identify;
pub mod note;

pub use decode::{decode_a64, sweep_a64, A64Kind};
pub use emit::{generate, ArmBinary, ArmFunctionTruth, ArmParams, EM_AARCH64};
pub use format::{format_a64, format_region};
pub use identify::{ArmAnalysis, BtiConfig, BtiSeeker};
pub use note::{bti_properties, build_bti_note, BtiProperties};
