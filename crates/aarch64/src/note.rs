//! `.note.gnu.property` for AArch64 — BTI / PAC feature bits.
//!
//! The ARM equivalent of x86's CET note: the loader enforces BTI only
//! when `GNU_PROPERTY_AARCH64_FEATURE_1_AND` carries the BTI bit
//! (`-mbranch-protection=bti|standard`).

use funseeker_elf::{Elf, Reader};

/// `GNU_PROPERTY_AARCH64_FEATURE_1_AND` property type.
pub const GNU_PROPERTY_AARCH64_FEATURE_1_AND: u32 = 0xc000_0000;
/// BTI bit.
pub const GNU_PROPERTY_AARCH64_FEATURE_1_BTI: u32 = 1 << 0;
/// PAC bit (return-address signing).
pub const GNU_PROPERTY_AARCH64_FEATURE_1_PAC: u32 = 1 << 1;

/// Declared branch-protection capabilities of an AArch64 binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtiProperties {
    /// Branch Target Identification enforced.
    pub bti: bool,
    /// Pointer authentication for return addresses.
    pub pac: bool,
}

/// Builds the note contents (8-byte property alignment as on ELF64).
pub fn build_bti_note(props: BtiProperties) -> Vec<u8> {
    let mut word = 0u32;
    if props.bti {
        word |= GNU_PROPERTY_AARCH64_FEATURE_1_BTI;
    }
    if props.pac {
        word |= GNU_PROPERTY_AARCH64_FEATURE_1_PAC;
    }
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&4u32.to_le_bytes()); // namesz
    out.extend_from_slice(&16u32.to_le_bytes()); // descsz (8 hdr + 4 data + 4 pad)
    out.extend_from_slice(&5u32.to_le_bytes()); // NT_GNU_PROPERTY_TYPE_0
    out.extend_from_slice(b"GNU\0");
    out.extend_from_slice(&GNU_PROPERTY_AARCH64_FEATURE_1_AND.to_le_bytes());
    out.extend_from_slice(&4u32.to_le_bytes()); // pr_datasz
    out.extend_from_slice(&word.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // pad to 8
    out
}

/// Parses the BTI/PAC bits from an AArch64 ELF's property note.
pub fn bti_properties(elf: &Elf<'_>) -> BtiProperties {
    let Some((_, data)) = elf.section_bytes(".note.gnu.property") else {
        return BtiProperties::default();
    };
    let mut out = BtiProperties::default();
    let mut r = Reader::new(data);
    while r.remaining() >= 12 {
        let Ok(namesz) = r.u32() else { break };
        let Ok(descsz) = r.u32() else { break };
        let Ok(ntype) = r.u32() else { break };
        let Ok(name) = r.bytes(namesz as usize) else { break };
        let is_gnu = ntype == 5 && name == b"GNU\0";
        let pad = (namesz as usize).next_multiple_of(4) - namesz as usize;
        if r.skip(pad).is_err() {
            break;
        }
        let desc_start = r.position();
        if is_gnu {
            let Ok(mut d) = Reader::at(data, desc_start) else { break };
            let desc_end = desc_start + descsz as usize;
            while d.position() + 8 <= desc_end {
                let Ok(pr_type) = d.u32() else { break };
                let Ok(pr_size) = d.u32() else { break };
                if pr_type == GNU_PROPERTY_AARCH64_FEATURE_1_AND && pr_size >= 4 {
                    if let Ok(word) = d.u32() {
                        out.bti |= word & GNU_PROPERTY_AARCH64_FEATURE_1_BTI != 0;
                        out.pac |= word & GNU_PROPERTY_AARCH64_FEATURE_1_PAC != 0;
                    }
                    let _ = d.skip((pr_size as usize).saturating_sub(4));
                } else if d.skip(pr_size as usize).is_err() {
                    break;
                }
                let pad = (pr_size as usize).next_multiple_of(8) - pr_size as usize;
                let _ = d.skip(pad.min(d.remaining()));
            }
        }
        let skip = (descsz as usize).next_multiple_of(4).min(r.remaining());
        if r.skip(skip).is_err() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_elf::section::SHF_ALLOC;
    use funseeker_elf::{Class, ElfBuilder, Machine, ObjectType, SectionType};

    #[test]
    fn round_trips() {
        for (bti, pac) in [(false, false), (true, false), (false, true), (true, true)] {
            let props = BtiProperties { bti, pac };
            let mut b = ElfBuilder::new(
                Class::Elf64,
                Machine::Other(crate::emit::EM_AARCH64),
                ObjectType::Executable,
            );
            b.text(".text", 0x1000, vec![0; 4]);
            b.section(
                ".note.gnu.property",
                SectionType::Note,
                SHF_ALLOC,
                0x400,
                build_bti_note(props),
                None,
                0,
                8,
                0,
            );
            let bytes = b.build().unwrap();
            let elf = funseeker_elf::Elf::parse(&bytes).unwrap();
            assert_eq!(bti_properties(&elf), props);
        }
    }

    #[test]
    fn absent_note_is_unprotected() {
        let mut b = ElfBuilder::new(
            Class::Elf64,
            Machine::Other(crate::emit::EM_AARCH64),
            ObjectType::Executable,
        );
        b.text(".text", 0x1000, vec![0; 4]);
        let bytes = b.build().unwrap();
        let elf = funseeker_elf::Elf::parse(&bytes).unwrap();
        assert_eq!(bti_properties(&elf), BtiProperties::default());
    }
}
