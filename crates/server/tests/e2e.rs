//! End-to-end daemon tests: wire results must be bit-identical to
//! direct library analysis, backpressure must be an explicit `Busy`,
//! single-flight must collapse duplicate work, and shutdown must drain
//! in-flight requests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use funseeker::{Config, FunSeeker};
use funseeker_client::proto::Source;
use funseeker_client::{Client, ClientError};
use funseeker_server::{Server, ServerConfig};

fn own_exe() -> Vec<u8> {
    std::fs::read("/proc/self/exe").unwrap()
}

/// A distinct-but-parseable variant of an image: trailing padding is
/// outside every ELF-described region, so the analysis is unchanged but
/// the content hash (and thus every cache key) differs.
fn padded(image: &[u8], tag: u64) -> Vec<u8> {
    let mut v = image.to_vec();
    v.extend_from_slice(&tag.to_le_bytes());
    v
}

#[test]
fn wire_results_are_bit_identical_to_direct_analysis() {
    let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
    let mut client = Client::connect(&server.addr().to_string()).unwrap();
    let image = own_exe();
    let prepared = funseeker::prepare(&image).unwrap();
    for (id, config) in
        [(1u8, Config::c1()), (2, Config::c2()), (3, Config::c3()), (4, Config::c4())]
    {
        let reply = client.analyze_with(&image, id, false).unwrap();
        let direct = FunSeeker::with_config(config).identify_prepared(&prepared);
        assert_eq!(reply.analysis, direct, "config {id}");
    }
    // The call-graph flag is part of the key: it computes separately and
    // carries the interprocedural summary.
    let reply = client.analyze_with(&image, 4, true).unwrap();
    let mut config = Config::c4();
    config.interproc = true;
    let direct = FunSeeker::with_config(config).identify_prepared(&prepared);
    assert_eq!(reply.analysis, direct);
    assert!(reply.analysis.interproc.is_some());
    server.join();
}

#[test]
fn connection_cap_refuses_with_busy_not_a_hang() {
    use funseeker_client::proto;
    let mut config = ServerConfig::tcp("127.0.0.1:0");
    config.max_connections = 1;
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();
    let mut first = Client::connect(&addr).unwrap();
    first.ping().unwrap();
    // The second connection is accepted only to be told Busy (an
    // unsolicited frame, per the spec) and closed; read it raw.
    let hostport = addr.strip_prefix("tcp:").unwrap();
    let mut second = std::net::TcpStream::connect(hostport).unwrap();
    second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let payload = proto::read_frame(&mut second, proto::DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("an immediate Busy frame");
    match proto::decode_response(&payload).unwrap() {
        funseeker_client::Response::Busy { .. } => {}
        other => panic!("expected Busy from the connection cap, got {other:?}"),
    }
    assert!(
        proto::read_frame(&mut second, proto::DEFAULT_MAX_FRAME).unwrap().is_none(),
        "refused connection is closed after the Busy frame"
    );
    drop(first);
    server.join();
}

#[test]
fn saturated_analyze_slots_refuse_with_busy() {
    let mut config = ServerConfig::tcp("127.0.0.1:0");
    config.analyze_slots = 1;
    config.queue_cap = 0;
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();
    let image = own_exe();

    // Background load: continuously submit fresh distinct images so the
    // single analyze slot stays occupied.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let saw_busy = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (addr, image, stop) = (&addr, &image, &stop);
        for worker in 0..2u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut tag = worker.wrapping_mul(1 << 32);
                while !stop.load(Ordering::Relaxed) {
                    tag += 1;
                    match client.analyze(&padded(image, tag)) {
                        Ok(_) | Err(ClientError::Busy { .. }) => {}
                        Err(other) => panic!("unexpected error under load: {other}"),
                    }
                }
            });
        }
        // Probe with distinct images until one is refused at the gate.
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut tag = u64::MAX;
        while saw_busy.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "never observed Busy under saturated slots");
            tag -= 1;
            if let Err(e) = client.analyze(&padded(image, tag)) {
                assert!(e.is_busy(), "only Busy is acceptable here: {e}");
                saw_busy.fetch_add(1, Ordering::Relaxed);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.get("busy_total").unwrap() >= 1);
    server.join();
}

#[test]
fn concurrent_identical_submissions_compute_once() {
    let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
    let addr = server.addr().to_string();
    let image = padded(&own_exe(), 0x51f7);
    let direct = FunSeeker::new().identify(&image).unwrap();

    const CLIENTS: usize = 16;
    let start = Barrier::new(CLIENTS);
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                let mut client = Client::connect(&addr).unwrap();
                start.wait();
                let reply = client.analyze(&image).unwrap();
                assert_eq!(reply.analysis, direct);
                assert!(matches!(reply.source, Source::Computed | Source::Shared | Source::Memory));
            });
        }
    });
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("images_analyzed"),
        Some(1),
        "sixteen identical submissions must cost one analysis"
    );
    server.join();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
    let addr = server.addr().to_string();
    let image = padded(&own_exe(), 0xd4a1);

    std::thread::scope(|s| {
        let addr = &addr;
        let handle = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.analyze(&image)
        });
        // Wait until the request is past admission — running in a gate
        // slot or already replied — then initiate shutdown. Work that
        // was admitted must complete, so the submitter sees a result.
        let mut observer = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = observer.stats().unwrap();
            if stats.get("running").unwrap() >= 1 || stats.get("results_total").unwrap() >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "request never reached a gate slot");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
        let reply = handle.join().unwrap().expect("admitted work drains to a clean result");
        assert!(!reply.analysis.functions.is_empty());
    });
    server.join();

    // After the drain a fresh connect must fail: nothing is listening.
    assert!(Client::connect(&addr).is_err());
}
