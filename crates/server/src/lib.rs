//! **funseeker-server** — the analysis daemon: analysis-as-a-service
//! over the batch engine.
//!
//! [`Server`] binds a unix or TCP socket and serves the version-1
//! framed protocol defined in [`funseeker_client::proto`] (normative
//! spec: `DESIGN.md` §5). Each connection gets a handler thread; each
//! `ANALYZE` request flows through the same layers the batch scheduler
//! uses, in order:
//!
//! 1. **Probe** — [`funseeker_batch::probe`] checks the in-memory
//!    [`funseeker_batch::ResultCache`] and optional
//!    [`funseeker_batch::DiskCache`]; a hit replies without parsing.
//! 2. **Ballast** — large request bodies acquire
//!    [`funseeker_batch::Ballast`] *before* being read off the socket,
//!    so resident memory stays bounded under any submission flood;
//!    refusal is an explicit `BUSY` reply.
//! 3. **Single-flight** — concurrent identical submissions collapse to
//!    one computation ([`singleflight`]); followers share the leader's
//!    result.
//! 4. **Gate** — at most `analyze_slots` analyses run concurrently,
//!    with a bounded wait queue; overflow replies `BUSY` immediately.
//! 5. **Analyze** — [`funseeker_batch::analyze_hashed`] on the handler
//!    thread, reusing its thread-local scratch arena; results are
//!    bit-identical to a local [`funseeker::FunSeeker`] run and land in
//!    the caches on the way out.
//!
//! Live counters are served over the wire ([`stats`]); shutdown (the
//! `SHUTDOWN` request or [`Server::shutdown`]) drains in-flight work
//! before the daemon exits.
//!
//! ```
//! use funseeker_client::Client;
//! use funseeker_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
//! let mut client = Client::connect(&server.addr().to_string()).unwrap();
//! let image = std::fs::read("/proc/self/exe").unwrap();
//! let reply = client.analyze(&image).unwrap();
//! assert!(!reply.analysis.functions.is_empty());
//! server.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod server;
pub mod singleflight;
pub mod stats;

pub use server::{Server, ServerConfig};
