//! Live daemon counters and the `STATS_OK` text rendering.
//!
//! Every counter is a relaxed atomic — the hot path pays one
//! `fetch_add` per event, and a `stats` request reads a consistent-
//! enough snapshot without stopping the world. The wire rendering is
//! `name value\n` lines (one counter per line), which old SDKs parse
//! leniently: unknown names are kept, unparsable lines are skipped.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters accumulated over the daemon's lifetime.
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Frames successfully decoded as requests.
    pub requests_total: AtomicU64,
    /// `ANALYZE` requests admitted past framing (including ones later
    /// refused `Busy`).
    pub analyze_total: AtomicU64,
    /// `RESULT` frames written.
    pub results_total: AtomicU64,
    /// `BUSY` frames written (admission refusals).
    pub busy_total: AtomicU64,
    /// `ERROR` frames written.
    pub errors_total: AtomicU64,
    /// Connections torn down by a framing-level protocol defect.
    pub proto_errors_total: AtomicU64,
    /// `ANALYZE` requests served by joining a concurrent in-flight
    /// analysis of the same (image, config).
    pub singleflight_shared: AtomicU64,
    /// (image, config) pairs actually computed by this daemon.
    pub images_analyzed: AtomicU64,
    /// `RESULT` frames whose payload was served from the cached
    /// pre-encoded reply bytes (no per-request re-serialization).
    pub reply_bytes_hits: AtomicU64,
    /// Cache hits the disk layer (rather than memory) served.
    pub disk_hits: AtomicU64,
    /// Wall nanoseconds spent in the parse stage.
    pub parse_ns_total: AtomicU64,
    /// Wall nanoseconds spent in the linear sweep stage.
    pub sweep_ns_total: AtomicU64,
    /// Wall nanoseconds spent in the analyze stage.
    pub analyze_ns_total: AtomicU64,
    /// Request bytes read off sockets (frames, including prefixes).
    pub bytes_in_total: AtomicU64,
    /// Response bytes written to sockets (frames, including prefixes).
    pub bytes_out_total: AtomicU64,
}

/// Point-in-time gauges sampled when rendering a `stats` reply; the
/// server fills this from its caches and admission gates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Microseconds since the daemon started.
    pub uptime_us: u64,
    /// Result-cache hits (memory layer, lifetime).
    pub cache_hits: u64,
    /// Result-cache misses (memory layer, lifetime).
    pub cache_misses: u64,
    /// Entries resident in the in-memory result cache.
    pub cache_entries: u64,
    /// Handler connections currently open.
    pub connections_open: u64,
    /// Analyses blocked waiting for an analyze slot.
    pub queue_depth: u64,
    /// Analyses running right now.
    pub running: u64,
    /// Configured concurrent analyze slots.
    pub analyze_slots: u64,
    /// Estimated request bytes currently admitted.
    pub inflight_bytes: u64,
    /// High-water mark of the in-flight byte estimate.
    pub peak_inflight_bytes: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Relaxed increment helper for the hot path.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper for byte and nanosecond totals.
    pub fn add(counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }

    /// Renders the `STATS_OK` body: one `name value` line per counter,
    /// in the order documented by `DESIGN.md` §5.
    pub fn render(&self, g: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut s = String::with_capacity(640);
        let mut line = |name: &str, value: u64| {
            s.push_str(name);
            s.push(' ');
            s.push_str(&value.to_string());
            s.push('\n');
        };
        line("proto_version", u64::from(funseeker_client::proto::VERSION));
        line("uptime_us", g.uptime_us);
        line("connections_total", c(&self.connections_total));
        line("connections_open", g.connections_open);
        line("requests_total", c(&self.requests_total));
        line("analyze_total", c(&self.analyze_total));
        line("results_total", c(&self.results_total));
        line("busy_total", c(&self.busy_total));
        line("errors_total", c(&self.errors_total));
        line("proto_errors_total", c(&self.proto_errors_total));
        line("cache_hits", g.cache_hits);
        line("cache_misses", g.cache_misses);
        line("cache_entries", g.cache_entries);
        line("disk_hits", c(&self.disk_hits));
        line("singleflight_shared", c(&self.singleflight_shared));
        line("images_analyzed", c(&self.images_analyzed));
        line("reply_bytes_hits", c(&self.reply_bytes_hits));
        line("queue_depth", g.queue_depth);
        line("running", g.running);
        line("analyze_slots", g.analyze_slots);
        line("inflight_bytes", g.inflight_bytes);
        line("peak_inflight_bytes", g.peak_inflight_bytes);
        line("parse_ns_total", c(&self.parse_ns_total));
        line("sweep_ns_total", c(&self.sweep_ns_total));
        line("analyze_ns_total", c(&self.analyze_ns_total));
        line("bytes_in_total", c(&self.bytes_in_total));
        line("bytes_out_total", c(&self.bytes_out_total));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_client::ServerStats;

    #[test]
    fn render_parses_back_through_the_sdk() {
        let counters = Counters::new();
        Counters::bump(&counters.requests_total);
        Counters::bump(&counters.requests_total);
        Counters::add(&counters.bytes_in_total, 12345);
        let gauges =
            Gauges { cache_hits: 3, cache_misses: 1, analyze_slots: 2, ..Gauges::default() };
        let text = counters.render(&gauges);
        let stats = ServerStats::parse(&text);
        assert_eq!(stats.get("requests_total"), Some(2));
        assert_eq!(stats.get("bytes_in_total"), Some(12345));
        assert_eq!(stats.get("cache_hits"), Some(3));
        assert_eq!(stats.get("analyze_slots"), Some(2));
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        // Every line is a well-formed `name value` pair.
        assert_eq!(stats.iter().count(), text.lines().count());
    }
}
