//! Single-flight deduplication of concurrent identical submissions.
//!
//! When a thousand clients submit the same image under the same
//! configuration at once, exactly one handler (the *leader*) runs the
//! analysis; the rest (*followers*) drop their copies of the image,
//! release their admission ballast, and block cheaply on a condvar
//! until the leader publishes an [`Outcome`]. The table is keyed by
//! the cache key (`mix64(image_hash, config_fingerprint)`), so the
//! same image under different configurations — or with and without the
//! call-graph flag — flies separately.
//!
//! The leader publishes exactly one outcome per flight: success,
//! typed failure, or `Busy` (the leader itself was refused an analyze
//! slot, and its followers must be refused too rather than waiting on
//! nothing). Publication removes the flight from the table, so the next
//! request for the key starts fresh — which is correct, because a
//! successful outcome is in the result cache by then.
//!
//! Followers per flight are **bounded** ([`FlightTable::join`]'s
//! `max_waiters`): each parked follower is a whole handler thread, so
//! past the cap new arrivals are refused `Busy` — cheap for the client
//! to retry, and the retry usually lands after publication and hits the
//! result cache instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use funseeker::Analysis;
use funseeker_client::proto::ErrorCode;

/// What a flight's leader produced, broadcast to every follower.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The analysis completed (possibly served from a cache layer the
    /// leader raced into).
    Done(Arc<Analysis>),
    /// The analysis failed with a typed error.
    Failed(ErrorCode, String),
    /// The leader was refused admission; followers are refused too.
    Busy {
        /// Queue depth the leader observed at refusal.
        queue_depth: u32,
        /// In-flight byte estimate the leader observed at refusal.
        inflight_bytes: u64,
    },
}

/// One in-flight analysis that followers can wait on.
#[derive(Debug, Default)]
pub struct Flight {
    outcome: Mutex<Option<Outcome>>,
    published: Condvar,
    /// Followers admitted to this flight (bumped under the table lock
    /// in [`FlightTable::join`], so the cap is race-free).
    waiters: AtomicUsize,
}

impl Flight {
    /// Blocks until the leader publishes, up to `timeout`. `None` means
    /// the wait timed out (the leader wedged or the table was poisoned);
    /// the caller should reply with an internal error rather than hang.
    pub fn wait(&self, timeout: Duration) -> Option<Outcome> {
        let guard = self.outcome.lock().unwrap();
        let (guard, result) =
            self.published.wait_timeout_while(guard, timeout, |o| o.is_none()).unwrap();
        if result.timed_out() {
            None
        } else {
            guard.clone()
        }
    }
}

/// The caller's role in a flight, decided atomically by
/// [`FlightTable::join`].
#[derive(Debug)]
pub enum Role {
    /// First in: run the analysis and [`FlightTable::publish`].
    Leader,
    /// Joined an existing flight: wait on it.
    Follower(Arc<Flight>),
    /// The flight already has `max_waiters` followers parked on it; the
    /// caller must be refused `Busy` instead of piling onto the condvar.
    /// Each parked follower is a whole handler thread, so an unbounded
    /// pile-up under a thundering herd turns one slow analysis into
    /// thousands of blocked threads and a seconds-long tail.
    Saturated {
        /// Followers already waiting when this caller was refused.
        waiters: usize,
    },
}

/// The map of in-flight analyses, keyed by cache key.
#[derive(Debug, Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Joins the flight for `key`, creating it if absent. Exactly one
    /// concurrent caller per key becomes [`Role::Leader`]; a leader
    /// **must** eventually [`FlightTable::publish`] or its followers
    /// wait out their timeout. At most `max_waiters` callers may follow
    /// one flight; the rest get [`Role::Saturated`].
    pub fn join(&self, key: u64, max_waiters: usize) -> Role {
        let mut flights = self.flights.lock().unwrap();
        match flights.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let flight = e.get();
                let waiters = flight.waiters.load(Ordering::Relaxed);
                if waiters >= max_waiters {
                    return Role::Saturated { waiters };
                }
                flight.waiters.store(waiters + 1, Ordering::Relaxed);
                Role::Follower(flight.clone())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Arc::new(Flight::default()));
                Role::Leader
            }
        }
    }

    /// Publishes the leader's outcome, waking every follower, and
    /// retires the flight.
    pub fn publish(&self, key: u64, outcome: Outcome) {
        let flight = self.flights.lock().unwrap().remove(&key);
        if let Some(flight) = flight {
            *flight.outcome.lock().unwrap() = Some(outcome);
            flight.published.notify_all();
        }
    }

    /// Number of flights currently in the air.
    pub fn inflight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn one_leader_many_followers() {
        let table = Arc::new(FlightTable::new());
        let leaders = AtomicUsize::new(0);
        let shared = AtomicUsize::new(0);
        // Everyone joins before anyone publishes, so exactly one caller
        // can be the leader and all seven others must follow it.
        let joined = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let role = table.join(42, usize::MAX);
                    joined.wait();
                    match role {
                        Role::Leader => {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            table.publish(42, Outcome::Failed(ErrorCode::Internal, "x".into()));
                        }
                        Role::Follower(flight) => {
                            match flight.wait(Duration::from_secs(5)).expect("published") {
                                Outcome::Failed(code, _) => assert_eq!(code, ErrorCode::Internal),
                                other => panic!("unexpected outcome {other:?}"),
                            }
                            shared.fetch_add(1, Ordering::SeqCst);
                        }
                        Role::Saturated { .. } => panic!("uncapped join must not saturate"),
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(shared.load(Ordering::SeqCst), 7);
        assert_eq!(table.inflight(), 0, "publication retires the flight");
    }

    #[test]
    fn distinct_keys_fly_separately_and_waits_time_out() {
        let table = FlightTable::new();
        assert!(matches!(table.join(1, usize::MAX), Role::Leader));
        assert!(matches!(table.join(2, usize::MAX), Role::Leader), "different key, new leader");
        let Role::Follower(flight) = table.join(1, usize::MAX) else {
            panic!("second join follows")
        };
        assert!(flight.wait(Duration::from_millis(10)).is_none(), "no publish → timeout");
        table.publish(1, Outcome::Busy { queue_depth: 9, inflight_bytes: 77 });
        match flight.wait(Duration::from_millis(10)).expect("published") {
            Outcome::Busy { queue_depth, inflight_bytes } => {
                assert_eq!((queue_depth, inflight_bytes), (9, 77));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        table.publish(2, Outcome::Failed(ErrorCode::Internal, String::new()));
        assert_eq!(table.inflight(), 0);
    }

    #[test]
    fn follower_cap_saturates_then_resets_on_republish() {
        let table = FlightTable::new();
        assert!(matches!(table.join(7, 2), Role::Leader));
        assert!(matches!(table.join(7, 2), Role::Follower(_)));
        assert!(matches!(table.join(7, 2), Role::Follower(_)));
        // Third follower is over the cap and must be turned away with
        // the observed pile-up size.
        match table.join(7, 2) {
            Role::Saturated { waiters } => assert_eq!(waiters, 2),
            other => panic!("expected saturation, got {other:?}"),
        }
        // A zero cap means leaders only: every non-leader is refused.
        assert!(matches!(table.join(9, 0), Role::Leader));
        assert!(matches!(table.join(9, 0), Role::Saturated { waiters: 0 }));
        // Publication retires the flight; the next join leads a fresh
        // flight with a fresh waiter count.
        table.publish(7, Outcome::Failed(ErrorCode::Internal, String::new()));
        assert!(matches!(table.join(7, 2), Role::Leader));
        assert!(matches!(table.join(7, 2), Role::Follower(_)));
        table.publish(7, Outcome::Failed(ErrorCode::Internal, String::new()));
        table.publish(9, Outcome::Failed(ErrorCode::Internal, String::new()));
        assert_eq!(table.inflight(), 0);
    }
}
