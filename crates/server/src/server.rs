//! The daemon: socket handling, admission, and request dispatch.
//!
//! One OS thread per connection reads frames with a short poll-style
//! receive timeout (so shutdown is observed within one tick), admits
//! large request bodies through the shared [`Ballast`] *before*
//! allocating them, dedups concurrent identical submissions through the
//! [`FlightTable`], and bounds analysis concurrency with the [`Gate`].
//! Every refusal is an explicit wire reply (`BUSY` or a typed `ERROR`)
//! — the daemon never queues without bound and never drops a request
//! silently.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use funseeker::{Analysis, Config, Diagnostics};
use funseeker_batch::admission::{Ballast, Gate};
use funseeker_batch::{cache, cache_key, hash_bytes, DiskCache, ResultCache};
use funseeker_client::proto::{self, ErrorCode, ProtoError, Request, Source};
use funseeker_client::Addr;

use crate::singleflight::{FlightTable, Outcome, Role};
use crate::stats::{Counters, Gauges};

/// Frames at or under this payload size bypass ballast admission: they
/// are bodyless control requests or tiny submissions whose buffering
/// cost is noise next to the per-connection overhead.
const SMALL_FRAME: usize = 4096;

/// How many poll ticks a handler keeps reading a partially received
/// frame after shutdown begins before giving up on the sender.
const SHUTDOWN_GRACE_POLLS: u32 = 50;

/// How long a single-flight follower waits for its leader before
/// replying with an internal error instead of hanging.
const FOLLOWER_TIMEOUT: Duration = Duration::from_secs(300);

/// Daemon configuration. Start from [`ServerConfig::unix`] or
/// [`ServerConfig::tcp`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen (`unix:<path>` or `tcp:<host>:<port>`; TCP port
    /// 0 binds an ephemeral port, reported by [`Server::addr`]).
    pub listen: Addr,
    /// Directory for the persistent result cache; `None` disables the
    /// disk layer (the in-memory cache still serves the process).
    pub disk_cache: Option<PathBuf>,
    /// Concurrent analyses (the [`Gate`]'s slots). At least 1. Defaults
    /// to the worker-pool width (so `FUNSEEKER_CORES`/`--cores` scale
    /// the serving layer with the sweep layer), floored at 2.
    pub analyze_slots: usize,
    /// Followers allowed to park on one single-flight key before
    /// further identical submissions are refused `Busy`. Bounds the
    /// handler threads a thundering herd on one image can occupy.
    pub max_followers: usize,
    /// Analyses allowed to wait for a slot before further leaders are
    /// refused `Busy`.
    pub queue_cap: usize,
    /// Cap on estimated request bytes admitted at once (the
    /// [`Ballast`]'s capacity).
    pub max_inflight_bytes: usize,
    /// Requests allowed to block awaiting ballast before further large
    /// requests are refused `Busy` without reading their bodies.
    pub ballast_waiters: usize,
    /// Open connections before new accepts are refused `Busy`.
    pub max_connections: usize,
    /// Cap on one frame's payload length.
    pub max_frame: usize,
    /// Receive-timeout granularity: how quickly idle handlers observe
    /// shutdown.
    pub poll_interval: Duration,
}

impl ServerConfig {
    fn with_listen(listen: Addr) -> ServerConfig {
        ServerConfig {
            listen,
            disk_cache: None,
            analyze_slots: funseeker_pool::global().workers().max(2),
            max_followers: 256,
            queue_cap: 256,
            max_inflight_bytes: 1 << 30,
            ballast_waiters: 512,
            max_connections: 4096,
            max_frame: proto::DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(200),
        }
    }

    /// A default configuration listening on a unix socket at `path`.
    pub fn unix(path: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig::with_listen(Addr::Unix(path.into()))
    }

    /// A default configuration listening on a TCP `host:port`.
    pub fn tcp(hostport: impl Into<String>) -> ServerConfig {
        ServerConfig::with_listen(Addr::Tcp(hostport.into()))
    }
}

/// Shared daemon state: caches, admission gates, counters, shutdown.
struct Inner {
    config: ServerConfig,
    counters: Counters,
    connections_open: AtomicU64,
    mem: ResultCache,
    disk: Option<DiskCache>,
    ballast: Ballast,
    gate: Gate,
    flights: FlightTable,
    shutdown: AtomicBool,
    started: Instant,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn gauges(&self) -> Gauges {
        Gauges {
            uptime_us: self.started.elapsed().as_micros() as u64,
            cache_hits: self.mem.hits(),
            cache_misses: self.mem.misses(),
            cache_entries: self.mem.len() as u64,
            connections_open: self.connections_open.load(Ordering::Relaxed),
            queue_depth: self.gate.queued() as u64,
            running: self.gate.running() as u64,
            analyze_slots: self.gate.slots() as u64,
            inflight_bytes: self.ballast.inflight() as u64,
            peak_inflight_bytes: self.ballast.peak() as u64,
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A running daemon. Dropping (or [`Server::join`]ing) it initiates
/// shutdown and drains in-flight work.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
    addr: Addr,
}

impl Server {
    /// Binds the configured socket and starts accepting.
    ///
    /// A stale unix socket file left by a dead daemon is removed and
    /// rebound; a *live* one (something answers a connect) is an
    /// `AddrInUse` error.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let (listener, addr) = match &config.listen {
            Addr::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(e);
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                (Listener::Unix(listener), Addr::Unix(path.clone()))
            }
            Addr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let actual = listener.local_addr()?;
                (Listener::Tcp(listener), Addr::Tcp(actual.to_string()))
            }
        };
        listener.set_nonblocking(true)?;

        let inner = Arc::new(Inner {
            counters: Counters::new(),
            connections_open: AtomicU64::new(0),
            mem: ResultCache::new(),
            disk: config.disk_cache.as_ref().map(DiskCache::new),
            ballast: Ballast::new(config.max_inflight_bytes),
            gate: Gate::new(config.analyze_slots, config.queue_cap),
            flights: FlightTable::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            config,
        });

        let accept_inner = inner.clone();
        let accept = std::thread::Builder::new()
            .name("fs-accept".into())
            .spawn(move || accept_loop(&accept_inner, listener))?;
        Ok(Server { inner, accept: Some(accept), addr })
    }

    /// The bound address (with the actual port when TCP port 0 was
    /// requested). Hand its `to_string()` to [`funseeker_client::Client::connect`].
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Initiates shutdown: no new work is admitted, and handlers drain.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been initiated (by [`Server::shutdown`] or
    /// a client's `SHUTDOWN` request).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down()
    }

    /// Initiates shutdown and blocks until in-flight work has drained
    /// and every handler has exited.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Blocks until a client's `SHUTDOWN` request initiates shutdown,
    /// then drains. This is what `funseeker serve` sits in.
    pub fn wait(self) {
        while !self.inner.shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.join();
    }

    fn join_inner(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Handlers observe shutdown within one poll tick; in-flight
        // analyses run to completion first.
        while self.inner.connections_open.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Addr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.join_inner();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: Listener) {
    loop {
        if inner.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok(mut conn) => {
                let open = inner.connections_open.load(Ordering::Relaxed);
                if open >= inner.config.max_connections as u64 {
                    // Connection-level backpressure: refuse before
                    // spawning, so a connect flood cannot exhaust
                    // threads.
                    Counters::bump(&inner.counters.busy_total);
                    let _ = proto::write_busy(
                        &mut conn,
                        inner.gate.queued() as u32,
                        inner.ballast.inflight() as u64,
                    );
                    continue;
                }
                inner.connections_open.fetch_add(1, Ordering::Relaxed);
                Counters::bump(&inner.counters.connections_total);
                let handler_inner = inner.clone();
                let spawned = std::thread::Builder::new()
                    .name("fs-serve".into())
                    .stack_size(1 << 20)
                    .spawn(move || {
                        handle_connection(&handler_inner, conn);
                        handler_inner.connections_open.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    inner.connections_open.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back
                // off and keep serving existing connections.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Releases ballast when the request that acquired it retires.
struct BallastHold<'a> {
    ballast: &'a Ballast,
    amount: usize,
}

impl Drop for BallastHold<'_> {
    fn drop(&mut self) {
        self.ballast.release(self.amount);
    }
}

/// The outcome of trying to read one request frame off a connection.
enum Step<'a> {
    /// A complete frame, with the ballast held for its body (large
    /// frames only).
    Frame(Vec<u8>, Option<BallastHold<'a>>),
    /// Ballast admission refused the frame; its body was read and
    /// discarded, and the connection stays usable.
    AdmissionBusy,
    /// Clean end-of-stream between frames.
    Eof,
    /// Shutdown observed while idle between frames.
    Drain,
    /// A framing defect.
    Fail(ProtoError),
}

fn would_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fills `buf` completely, polling across receive timeouts. Once
/// shutdown begins, at most [`SHUTDOWN_GRACE_POLLS`] further timeouts
/// are tolerated before the sender is abandoned. `Ok(false)` reports
/// end-of-stream.
fn read_full(inner: &Inner, conn: &mut Conn, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0;
    let mut grace = SHUTDOWN_GRACE_POLLS;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if would_block(&e) => {
                if inner.shutting_down() {
                    grace -= 1;
                    if grace == 0 {
                        return Err(ProtoError::Truncated);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads and discards `len` body bytes after an admission refusal, so
/// the connection stays frame-aligned without ever buffering the body.
fn discard_body(inner: &Inner, conn: &mut Conn, len: usize) -> Result<(), ProtoError> {
    let mut sink = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(sink.len());
        if !read_full(inner, conn, &mut sink[..chunk])? {
            return Err(ProtoError::Truncated);
        }
        remaining -= chunk;
    }
    Ok(())
}

fn read_step<'a>(inner: &'a Inner, conn: &mut Conn) -> Step<'a> {
    // Length prefix, one byte first so idle shutdown is distinguishable
    // from a frame in progress.
    let mut prefix = [0u8; 4];
    loop {
        if inner.shutting_down() {
            return Step::Drain;
        }
        match conn.read(&mut prefix[..1]) {
            Ok(0) => return Step::Eof,
            Ok(_) => break,
            Err(e) if would_block(&e) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Step::Fail(ProtoError::Io(e)),
        }
    }
    match read_full(inner, conn, &mut prefix[1..]) {
        Ok(true) => {}
        Ok(false) => return Step::Fail(ProtoError::Truncated),
        Err(e) => return Step::Fail(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > inner.config.max_frame {
        return Step::Fail(ProtoError::TooLarge { len: len as u64, max: inner.config.max_frame });
    }
    if len < 2 {
        return Step::Fail(ProtoError::Malformed("payload shorter than version + type"));
    }

    // Ballast admission for large bodies happens *before* the body is
    // read or allocated: a refused request costs the daemon one 8 KiB
    // discard buffer, never `len` bytes of resident memory.
    let hold = if len > SMALL_FRAME {
        let amount = funseeker_batch::inflight_estimate(len);
        if !inner.ballast.acquire_bounded(amount, inner.config.ballast_waiters) {
            return match discard_body(inner, conn, len) {
                Ok(()) => Step::AdmissionBusy,
                Err(e) => Step::Fail(e),
            };
        }
        Some(BallastHold { ballast: &inner.ballast, amount })
    } else {
        None
    };

    let mut payload = vec![0u8; len];
    match read_full(inner, conn, &mut payload) {
        Ok(true) => {
            Counters::add(&inner.counters.bytes_in_total, 4 + len as u64);
            Step::Frame(payload, hold)
        }
        Ok(false) => Step::Fail(ProtoError::Truncated),
        Err(e) => Step::Fail(e),
    }
}

/// Writes a reply, accounting bytes out. `false` means the peer is
/// gone and the connection should be torn down.
fn send(inner: &Inner, written: io::Result<usize>) -> bool {
    match written {
        Ok(n) => {
            Counters::add(&inner.counters.bytes_out_total, n as u64);
            true
        }
        Err(_) => false,
    }
}

fn send_error(inner: &Inner, conn: &mut Conn, code: ErrorCode, message: &str) -> bool {
    Counters::bump(&inner.counters.errors_total);
    send(inner, proto::write_error(conn, code, message))
}

fn send_busy(inner: &Inner, conn: &mut Conn) -> bool {
    Counters::bump(&inner.counters.busy_total);
    send(
        inner,
        proto::write_busy(conn, inner.gate.queued() as u32, inner.ballast.inflight() as u64),
    )
}

fn handle_connection(inner: &Arc<Inner>, mut conn: Conn) {
    if conn.set_read_timeout(Some(inner.config.poll_interval)).is_err() {
        return;
    }
    loop {
        match read_step(inner, &mut conn) {
            Step::Eof => return,
            Step::Drain => {
                let _ = send_error(inner, &mut conn, ErrorCode::ShuttingDown, "draining");
                return;
            }
            Step::AdmissionBusy => {
                if !send_busy(inner, &mut conn) {
                    return;
                }
            }
            Step::Fail(err) => {
                Counters::bump(&inner.counters.proto_errors_total);
                match err {
                    ProtoError::TooLarge { len, max } => {
                        let msg = format!("frame length {len} exceeds cap {max}");
                        let _ = send_error(inner, &mut conn, ErrorCode::TooLarge, &msg);
                    }
                    ProtoError::Malformed(what) => {
                        let _ = send_error(inner, &mut conn, ErrorCode::BadFrame, what);
                    }
                    // Truncated / transport errors: the peer is gone or
                    // incoherent; nothing useful can be written.
                    _ => {}
                }
                return;
            }
            Step::Frame(payload, hold) => {
                if !dispatch(inner, &mut conn, &payload, hold) {
                    return;
                }
            }
        }
    }
}

/// Decodes and serves one request frame. `false` closes the connection.
fn dispatch(inner: &Inner, conn: &mut Conn, payload: &[u8], hold: Option<BallastHold<'_>>) -> bool {
    let t0 = Instant::now();
    let request = match proto::decode_request(payload) {
        Ok(r) => r,
        Err(ProtoError::BadVersion(v)) => {
            Counters::bump(&inner.counters.proto_errors_total);
            let _ = send_error(inner, conn, ErrorCode::BadVersion, &format!("version {v}"));
            return false;
        }
        Err(ProtoError::UnknownType(t)) => {
            Counters::bump(&inner.counters.proto_errors_total);
            return send_error(inner, conn, ErrorCode::BadRequest, &format!("type {t:#04x}"));
        }
        Err(e) => {
            Counters::bump(&inner.counters.proto_errors_total);
            return send_error(inner, conn, ErrorCode::BadRequest, &e.to_string());
        }
    };
    Counters::bump(&inner.counters.requests_total);
    match request {
        Request::Ping => send(inner, proto::write_simple_response(conn, proto::T_PONG)),
        Request::Stats => {
            let text = inner.counters.render(&inner.gauges());
            send(inner, proto::write_stats(conn, &text))
        }
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::Relaxed);
            let _ = send(inner, proto::write_simple_response(conn, proto::T_BYE));
            false
        }
        Request::Analyze { config, flags, image } => {
            handle_analyze(inner, conn, config, flags, image, hold, t0)
        }
    }
}

/// The encoded v3 reply record for `key`. Duplicate requests — the
/// single-flight-dedup hot case — find the bytes already attached to
/// the result-cache entry and memcpy them to the socket; the first
/// reply pays for one encode and caches it. Diagnostics are stripped
/// if an exotic component makes the full record non-encodable (the
/// function set and every count survive).
fn reply_record(
    inner: &Inner,
    image_hash: u64,
    config_fp: u64,
    key: u64,
    analysis: &Analysis,
) -> Arc<Vec<u8>> {
    if let Some(bytes) = inner.mem.wire(key) {
        Counters::bump(&inner.counters.reply_bytes_hits);
        return bytes;
    }
    let record = cache::encode(image_hash, config_fp, analysis).unwrap_or_else(|| {
        let mut stripped = analysis.clone();
        stripped.diagnostics = Diagnostics::new();
        cache::encode(image_hash, config_fp, &stripped)
            .expect("analysis without diagnostics encodes")
    });
    // Racing first replies converge on one allocation; a key evicted
    // from the cache between probe and here just serves unattached.
    inner.mem.set_wire(key, Arc::new(record))
}

#[allow(clippy::too_many_arguments)]
fn send_result(
    inner: &Inner,
    conn: &mut Conn,
    image_hash: u64,
    config_fp: u64,
    key: u64,
    t0: Instant,
    source: Source,
    analysis: &Analysis,
) -> bool {
    let record = reply_record(inner, image_hash, config_fp, key, analysis);
    let elapsed_us = t0.elapsed().as_micros().min(u128::from(u32::MAX)) as u32;
    Counters::bump(&inner.counters.results_total);
    send(inner, proto::write_result(conn, image_hash, key, elapsed_us, source, &record))
}

fn handle_analyze(
    inner: &Inner,
    conn: &mut Conn,
    config_id: u8,
    flags: u8,
    image: &[u8],
    hold: Option<BallastHold<'_>>,
    t0: Instant,
) -> bool {
    Counters::bump(&inner.counters.analyze_total);
    if inner.shutting_down() {
        return send_error(inner, conn, ErrorCode::ShuttingDown, "no new work admitted");
    }
    let config: Config =
        proto::wire_config(config_id, flags).expect("decode_request validated config and flags");
    let image_hash = hash_bytes(image);
    let config_fp = cache::config_fingerprint(&config);
    let key = cache_key(image_hash, &config);

    // Fully cached submissions skip single-flight and the gate.
    if let Some((analysis, layer)) =
        funseeker_batch::probe(&inner.mem, inner.disk.as_ref(), image_hash, &config)
    {
        let source = match layer {
            funseeker_batch::CacheSource::Memory => Source::Memory,
            funseeker_batch::CacheSource::Disk => {
                Counters::bump(&inner.counters.disk_hits);
                Source::Disk
            }
        };
        drop(hold);
        return send_result(inner, conn, image_hash, config_fp, key, t0, source, &analysis);
    }

    match inner.flights.join(key, inner.config.max_followers) {
        Role::Saturated { .. } => {
            // The flight's condvar already carries a full complement of
            // parked handler threads; refusing here keeps the herd's
            // tail bounded, and the client's retry will normally land in
            // the result cache after the leader publishes.
            drop(hold);
            send_busy(inner, conn)
        }
        Role::Follower(flight) => {
            // The leader holds the only copy that matters: release this
            // request's bytes and admission before the (possibly long)
            // wait.
            drop(hold);
            match flight.wait(FOLLOWER_TIMEOUT) {
                Some(Outcome::Done(analysis)) => {
                    Counters::bump(&inner.counters.singleflight_shared);
                    send_result(
                        inner,
                        conn,
                        image_hash,
                        config_fp,
                        key,
                        t0,
                        Source::Shared,
                        &analysis,
                    )
                }
                Some(Outcome::Failed(code, message)) => send_error(inner, conn, code, &message),
                Some(Outcome::Busy { .. }) => send_busy(inner, conn),
                None => {
                    send_error(inner, conn, ErrorCode::Internal, "single-flight wait timed out")
                }
            }
        }
        Role::Leader => {
            let outcome = match inner.gate.enter() {
                None => Outcome::Busy {
                    queue_depth: inner.gate.queued() as u32,
                    inflight_bytes: inner.ballast.inflight() as u64,
                },
                Some(pass) => {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        funseeker_batch::analyze_hashed(
                            image,
                            image_hash,
                            std::slice::from_ref(&config),
                            Some(&inner.mem),
                            inner.disk.as_ref(),
                        )
                    }));
                    drop(pass);
                    match run {
                        Ok(Ok(result)) => {
                            Counters::add(&inner.counters.parse_ns_total, result.parse_ns);
                            Counters::add(&inner.counters.sweep_ns_total, result.sweep_ns);
                            Counters::add(&inner.counters.analyze_ns_total, result.analyze_ns);
                            Counters::add(&inner.counters.disk_hits, result.disk_hits as u64);
                            if result.cache_hits == 0 {
                                Counters::bump(&inner.counters.images_analyzed);
                            }
                            let analysis =
                                result.per_config.into_iter().next().expect("one config in");
                            Outcome::Done(analysis)
                        }
                        Ok(Err(e)) => Outcome::Failed(ErrorCode::ParseFailed, e.to_string()),
                        Err(_) => Outcome::Failed(ErrorCode::Internal, "analysis panicked".into()),
                    }
                }
            };
            // Publish before replying: followers must never outlive the
            // leader's connection.
            inner.flights.publish(key, outcome.clone());
            drop(hold);
            match outcome {
                Outcome::Done(analysis) => send_result(
                    inner,
                    conn,
                    image_hash,
                    config_fp,
                    key,
                    t0,
                    Source::Computed,
                    &analysis,
                ),
                Outcome::Failed(code, message) => send_error(inner, conn, code, &message),
                Outcome::Busy { .. } => send_busy(inner, conn),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_client::Client;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fs-server-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn starts_serves_and_drains_on_unix_socket() {
        let path = sock_path("basic");
        let server = Server::start(ServerConfig::unix(&path)).unwrap();
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        client.ping().unwrap();
        let image = std::fs::read("/proc/self/exe").unwrap();
        let reply = client.analyze(&image).unwrap();
        let local = funseeker::FunSeeker::new().identify(&image).unwrap();
        assert_eq!(reply.analysis, local);
        assert_eq!(reply.source, Source::Computed);
        let again = client.analyze(&image).unwrap();
        assert_eq!(again.source, Source::Memory);
        assert_eq!(again.analysis, local);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("images_analyzed"), Some(1));
        // The duplicate was served from the pre-encoded reply bytes
        // attached by the first reply, not re-serialized.
        assert_eq!(stats.get("reply_bytes_hits"), Some(1));
        server.join();
        assert!(!path.exists(), "socket unlinked on shutdown");
    }

    #[test]
    fn tcp_ephemeral_port_is_reported_and_stale_unix_socket_is_reclaimed() {
        let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
        let addr = server.addr().to_string();
        assert!(addr.starts_with("tcp:127.0.0.1:"), "{addr}");
        let mut client = Client::connect(&addr).unwrap();
        client.ping().unwrap();
        drop(client);
        server.join();

        // A dead daemon's socket file must not block a restart.
        let path = sock_path("stale");
        let first = Server::start(ServerConfig::unix(&path)).unwrap();
        drop(first); // unlinks — recreate the stale file by hand
        std::fs::write(&path, b"").unwrap();
        let second = Server::start(ServerConfig::unix(&path)).unwrap();
        let mut client = Client::connect(&second.addr().to_string()).unwrap();
        client.ping().unwrap();
        drop(client);
        second.join();
    }
}
