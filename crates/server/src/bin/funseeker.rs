//! `funseeker` — command-line function identification for CET binaries,
//! locally or against the analysis daemon.
//!
//! ```text
//! funseeker [--config 1|2|3|4] [--summary] [--disasm] [--callgraph] [--strict] <binary>…
//! funseeker serve  [--listen ADDR] [--cores N] [--slots N] [--queue N]
//!                  [--max-bytes N] [--max-conns N] [--max-followers N]
//!                  [--disk-cache DIR]
//! funseeker submit [--addr ADDR] [--config 1|2|3|4] [--summary] [--callgraph] <binary>…
//! funseeker stats  [--addr ADDR]
//! funseeker shutdown [--addr ADDR]
//! ```
//!
//! The first form analyzes in-process and prints one function entry
//! address per line (hex), a per-binary summary with `--summary`, or
//! the CET-constrained call graph with `--callgraph`. `serve` runs the
//! daemon; `submit` sends binaries to a running daemon and prints the
//! same default output, so the two paths diff clean. Addresses are
//! `unix:<path>` or `tcp:<host>:<port>`; the default is
//! `unix:$TMPDIR/funseeker.sock`.

use funseeker::{Config, FunSeeker};
use funseeker_client::{Addr, Client};
use funseeker_elf::Image;
use funseeker_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: funseeker [--config 1|2|3|4] [--summary] [--disasm] [--callgraph] [--strict] <binary>...\n\
         \x20      funseeker serve [--listen ADDR] [--cores N] [--slots N] [--queue N] [--max-bytes N] [--max-conns N] [--max-followers N] [--disk-cache DIR]\n\
         \x20      funseeker submit [--addr ADDR] [--config 1|2|3|4] [--summary] [--callgraph] <binary>...\n\
         \x20      funseeker stats [--addr ADDR]\n\
         \x20      funseeker shutdown [--addr ADDR]"
    );
    std::process::exit(2);
}

fn default_addr() -> String {
    format!("unix:{}", std::env::temp_dir().join("funseeker.sock").display())
}

fn parse_config_id(v: &str) -> u8 {
    match v {
        "1" | "2" | "3" | "4" => v.as_bytes()[0] - b'0',
        _ => usage(),
    }
}

fn config_for(id: u8) -> Config {
    match id {
        1 => Config::c1(),
        2 => Config::c2(),
        3 => Config::c3(),
        _ => Config::c4(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        _ => cmd_local(&args),
    }
}

// ---------------------------------------------------------------------
// Local analysis (the original CLI)
// ---------------------------------------------------------------------

fn cmd_local(args: &[String]) {
    let mut config = Config::c4();
    let mut summary = false;
    let mut disasm = false;
    let mut callgraph = false;
    let mut strict = false;
    let mut paths: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                let v = it.next().unwrap_or_else(|| usage());
                config = config_for(parse_config_id(v));
            }
            "--summary" => summary = true,
            "--disasm" => disasm = true,
            "--callgraph" => callgraph = true,
            "--strict" => strict = true,
            "-h" | "--help" => usage(),
            _ => paths.push(arg.clone()),
        }
    }
    if paths.is_empty() {
        usage();
    }

    let seeker = FunSeeker::with_config(config).strict(strict);
    let mut failed = false;
    for path in &paths {
        // Memory-maps regular files (zero-copy); pipes and special
        // files fall back to a buffered read inside `Image::load`.
        let bytes = match Image::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match seeker.identify(&bytes) {
            Ok(analysis) => {
                for warning in analysis.diagnostics.iter() {
                    eprintln!("{path}: warning: {warning}");
                }
                if summary {
                    print_summary(path, &analysis);
                } else if callgraph {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    print_call_graph(&bytes, &analysis);
                } else if disasm {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    print_disassembly(&bytes, &analysis);
                } else {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    for addr in &analysis.functions {
                        println!("{addr:#x}");
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_summary(path: &str, analysis: &funseeker::Analysis) {
    println!(
        "{path}: {} functions ({} endbr, {} filtered, {} call targets, {} tail targets, {} decode errors){}",
        analysis.functions.len(),
        analysis.endbr_count,
        analysis.filtered_endbrs,
        analysis.call_target_count,
        analysis.tail_target_count,
        analysis.decode_errors,
        if analysis.cet_enabled { "" } else { " [no CET property note]" }
    );
}

/// Prints the call graph over the identified entries: every resolved
/// direct/tail edge, then the CET-constrained indirect summary.
fn print_call_graph(bytes: &[u8], analysis: &funseeker::Analysis) {
    let Ok(prepared) = funseeker::prepare(bytes) else { return };
    let entries: Vec<u64> = analysis.functions.iter().copied().collect();
    let graph = funseeker::build_call_graph(&prepared.index, &entries);
    println!(
        "{} nodes, {} direct edges, {} tail edges",
        graph.nodes.len(),
        graph.direct_count(),
        graph.tail_count(),
    );
    for e in &graph.edges {
        let kind = match e.kind {
            funseeker::CallKind::Direct => "call",
            funseeker::CallKind::Tail => "tail",
        };
        match e.caller {
            Some(caller) => println!("{:#x}: {kind} {:#x} -> {:#x}", caller, e.site, e.callee),
            None => println!("?: {kind} {:#x} -> {:#x}", e.site, e.callee),
        }
    }
    println!(
        "indirect: {} call sites, {} jump sites, {} notrack; {} endbr targets",
        graph.indirect_call_sites.len(),
        graph.indirect_jump_sites.len(),
        graph.notrack_sites,
        graph.indirect_targets.len(),
    );
}

/// Prints the disassembly of every code region with identified function
/// entries marked.
fn print_disassembly(bytes: &[u8], analysis: &funseeker::Analysis) {
    let Ok(parsed) = funseeker::parse::parse(bytes) else { return };
    let mode = parsed.mode();
    for region in parsed.code.regions() {
        println!("\nDisassembly of section {}:", region.name);
        let mut off = 0usize;
        while off < region.bytes.len() {
            let addr = region.addr.wrapping_add(off as u64);
            if analysis.functions.contains(&addr) {
                println!("\n{addr:#x} <fn>:");
            }
            match funseeker_disasm::format_insn(&region.bytes[off..], addr, mode) {
                Ok((text, len)) => {
                    println!("  {addr:#x}: {text}");
                    off += len;
                }
                Err(_) => {
                    println!("  {addr:#x}: (bad) {:02x}", region.bytes[off]);
                    off += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Daemon subcommands
// ---------------------------------------------------------------------

fn parse_addr(s: &str) -> Addr {
    Addr::parse(s).unwrap_or_else(|e| {
        eprintln!("funseeker: {e}");
        std::process::exit(2);
    })
}

fn parse_num(v: &str) -> usize {
    v.parse().unwrap_or_else(|_| usage())
}

fn cmd_serve(args: &[String]) {
    // `--cores` must fix the pool width before anything touches the
    // global pool — including the config defaults below, which derive
    // `analyze_slots` from it — so scan for it first.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--cores" {
            let n = parse_num(it.next().map(String::as_str).unwrap_or_else(|| usage()));
            if !funseeker_pool::configure_global(n) {
                eprintln!("funseeker serve: worker pool already running, --cores ignored");
            }
        }
    }
    let mut config = ServerConfig::unix(std::env::temp_dir().join("funseeker.sock"));
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--listen" => config.listen = parse_addr(value()),
            "--slots" => config.analyze_slots = parse_num(value()),
            "--queue" => config.queue_cap = parse_num(value()),
            "--max-bytes" => config.max_inflight_bytes = parse_num(value()),
            "--max-conns" => config.max_connections = parse_num(value()),
            "--max-followers" => config.max_followers = parse_num(value()),
            "--disk-cache" => config.disk_cache = Some(value().into()),
            "--cores" => {
                value(); // consumed by the pre-scan above
            }
            _ => usage(),
        }
    }
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("funseeker serve: {e}");
        std::process::exit(1);
    });
    eprintln!("funseeker serve: listening on {}", server.addr());
    // Blocks until a client's `shutdown` request, then drains.
    server.wait();
    eprintln!("funseeker serve: drained, exiting");
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("funseeker: cannot connect to {addr}: {e}");
        std::process::exit(1);
    })
}

fn cmd_submit(args: &[String]) {
    let mut addr = default_addr();
    let mut config_id = 4u8;
    let mut summary = false;
    let mut callgraph = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--config" => config_id = parse_config_id(it.next().unwrap_or_else(|| usage())),
            "--summary" => summary = true,
            "--callgraph" => callgraph = true,
            "-h" | "--help" => usage(),
            _ => paths.push(arg.clone()),
        }
    }
    if paths.is_empty() {
        usage();
    }

    let mut client = connect(&addr);
    let mut failed = false;
    for path in &paths {
        let bytes = match Image::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match client.analyze_retry(&bytes, config_id, callgraph, 8) {
            Ok(reply) => {
                if summary {
                    print_summary(path, &reply.analysis);
                } else if callgraph {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    match reply.analysis.interproc {
                        Some(ip) => println!(
                            "{} cfgs, {} blocks, {} cfg edges; {} direct, {} tail; {} indirect sites -> {} targets",
                            ip.cfg_count,
                            ip.block_count,
                            ip.cfg_edge_count,
                            ip.direct_call_edges,
                            ip.tail_call_edges,
                            ip.indirect_sites,
                            ip.indirect_targets,
                        ),
                        None => println!("(no interprocedural summary)"),
                    }
                } else {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    for addr in &reply.analysis.functions {
                        println!("{addr:#x}");
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn addr_only(args: &[String]) -> String {
    let mut addr = default_addr();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    addr
}

fn cmd_stats(args: &[String]) {
    let mut client = connect(&addr_only(args));
    match client.stats() {
        Ok(stats) => {
            for (name, value) in stats.iter() {
                println!("{name} {value}");
            }
        }
        Err(e) => {
            eprintln!("funseeker stats: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_shutdown(args: &[String]) {
    let mut client = connect(&addr_only(args));
    if let Err(e) = client.shutdown() {
        eprintln!("funseeker shutdown: {e}");
        std::process::exit(1);
    }
}
