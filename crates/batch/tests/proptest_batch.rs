//! The batch engine's identity contract, property-tested.
//!
//! For any corpus — pristine corpus-built binaries, hostile mutants
//! from the 9-class corruption grammar, outright garbage, and exact
//! duplicates — every path through the engine (cache-hit, scratch
//! reuse, pipelined scheduling, disk round-trip) must return results
//! **bit-identical** to a fresh sequential
//! [`FunSeeker::identify`] per image, and hostile inputs must never
//! poison the cache for anyone else.
//!
//! Case count comes from `FUNSEEKER_BATCH_CASES` (default 32).

use std::sync::OnceLock;

use funseeker::{Config, FunSeeker};
use funseeker_batch::{run, run_with_cache, BatchOptions, BatchOutput, ResultCache};
use funseeker_corpus::{
    compile, Arch, BuildConfig, Compiler, FunctionSpec, Lang, Mutator, OptLevel, ProgramSpec,
};
use proptest::prelude::*;

/// Pristine images compiled once and shared across all cases (mirrors
/// the corpus crate's mutation fuzz harness).
fn pristine_images() -> &'static [Vec<u8>] {
    static IMAGES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let mut images = Vec::new();
        for (lang, compiler, seed) in
            [(Lang::Cpp, Compiler::Gcc, 21), (Lang::C, Compiler::Clang, 22)]
        {
            let mut main = FunctionSpec::named("main");
            main.calls = vec![1, 2];
            let mut worker = FunctionSpec::named("worker");
            if lang == Lang::Cpp {
                worker.landing_pads = 1;
            }
            worker.calls = vec![2];
            let mut leaf = FunctionSpec::named("leaf");
            leaf.address_taken = true;
            let spec = ProgramSpec {
                name: "batch-victim".into(),
                lang,
                functions: vec![main, worker, leaf],
            };
            let cfg = BuildConfig { compiler, arch: Arch::X64, opt: OptLevel::O2, pie: true };
            images.push(compile(&spec, cfg, seed).bytes);
        }
        images
    })
}

fn cases() -> u32 {
    std::env::var("FUNSEEKER_BATCH_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

/// The configurations under test: the Table II grid plus the
/// pattern-scan and threshold variants, so every [`Config`] field
/// participates in cache keying and scratch reuse.
fn config_grid() -> Vec<Config> {
    let mut configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();
    configs.push(Config { endbr_pattern_scan: true, ..Config::c4() });
    configs.push(Config { min_tail_referers: 3, ..Config::c4() });
    configs
}

/// A corpus exercising every interesting shape: pristine images, two
/// independent mutants, a duplicated mutant, and unparsable garbage.
fn hostile_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut m = Mutator::new(seed);
    let mut corpus: Vec<Vec<u8>> = pristine_images().to_vec();
    let (mutant_a, _) = m.mutate(&corpus[0]);
    let (mutant_b, _) = m.mutate(&corpus[1]);
    corpus.push(mutant_a.clone());
    corpus.push(mutant_b);
    corpus.push(mutant_a); // exact duplicate of a hostile image
    corpus.push(b"\x7fELF but then garbage".to_vec());
    corpus
}

/// Asserts every batch result equals a fresh sequential analysis of the
/// same image under the same configuration.
fn assert_matches_fresh(
    corpus: &[Vec<u8>],
    configs: &[Config],
    out: &BatchOutput,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(out.results.len() == corpus.len(), "{what}: result count");
    for (i, image) in corpus.iter().enumerate() {
        for (j, cfg) in configs.iter().enumerate() {
            let fresh = FunSeeker::with_config(*cfg).identify(image).ok();
            let got = out.results[i][j].as_ref().map(|a| a.as_ref().clone());
            prop_assert!(got == fresh, "{what}: image {i} config {j} diverged from fresh analysis");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Cold cache, warm rerun, and cache-off pipeline all match fresh
    /// sequential analysis over a hostile corpus; the warm rerun serves
    /// every successful result from the cache without recomputing.
    #[test]
    fn batch_paths_match_fresh_analysis(seed in any::<u64>()) {
        let corpus = hostile_corpus(seed);
        let configs = config_grid();
        let opts = BatchOptions::default();
        let cache = ResultCache::new();

        let cold = run_with_cache(&corpus, &configs, &opts, &cache);
        assert_matches_fresh(&corpus, &configs, &cold, "cold")?;

        // Hostile inputs must not poison the cache: the warm rerun is
        // still identical, and every successful result is the *same
        // allocation* the cold run produced (served, not recomputed).
        let warm = run_with_cache(&corpus, &configs, &opts, &cache);
        assert_matches_fresh(&corpus, &configs, &warm, "warm")?;
        for (cold_row, warm_row) in cold.results.iter().zip(&warm.results) {
            for (c, w) in cold_row.iter().zip(warm_row) {
                if let (Some(c), Some(w)) = (c, w) {
                    prop_assert!(
                        std::sync::Arc::ptr_eq(c, w),
                        "warm rerun recomputed a cached result"
                    );
                }
            }
        }

        // Scratch + pipeline without any caching or dedup.
        let nocache = BatchOptions { cache: false, ..BatchOptions::default() };
        let piped = run(&corpus, &configs, &nocache);
        assert_matches_fresh(&corpus, &configs, &piped, "nocache")?;
        prop_assert!(piped.stats.unique_images == corpus.len());
    }

    /// Results that crossed the disk layer (serialize → checksum →
    /// deserialize in a fresh memory cache) still match fresh analysis.
    #[test]
    fn disk_round_trip_matches_fresh_analysis(seed in any::<u64>()) {
        let corpus = hostile_corpus(seed);
        let configs = config_grid();
        let dir = std::env::temp_dir().join(format!(
            "funseeker-batch-proptest-{}-{seed:016x}",
            std::process::id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = BatchOptions { disk_cache: Some(dir.clone()), ..BatchOptions::default() };

        let first = run(&corpus, &configs, &opts);
        // Fresh in-memory cache: everything analyzable comes off disk.
        let second = run(&corpus, &configs, &opts);
        let _ = std::fs::remove_dir_all(&dir);

        assert_matches_fresh(&corpus, &configs, &second, "disk-served")?;
        prop_assert!(second.stats.disk_hits > 0, "disk layer never used");
        for (a_row, b_row) in first.results.iter().zip(&second.results) {
            for (a, b) in a_row.iter().zip(b_row) {
                prop_assert!(a.as_deref() == b.as_deref(), "disk round-trip changed a result");
            }
        }
    }

    /// A tiny in-flight memory bound serializes admission but never
    /// changes results.
    #[test]
    fn memory_bound_is_invisible_in_results(seed in any::<u64>()) {
        let corpus = hostile_corpus(seed);
        let configs = [Config::c4()];
        let bounded = BatchOptions { max_inflight_bytes: 1, ..BatchOptions::default() };
        let out = run(&corpus, &configs, &bounded);
        assert_matches_fresh(&corpus, &configs, &out, "bounded")?;
    }
}

/// Deterministic sanity: the pristine images analyze identically
/// through the batch engine and directly, and duplicates share one
/// allocation.
#[test]
fn pristine_corpus_batch_equals_direct() {
    let mut corpus = pristine_images().to_vec();
    corpus.extend(pristine_images().iter().cloned()); // all duplicated
    let configs = config_grid();
    let out = run(&corpus, &configs, &BatchOptions::default());
    assert_eq!(out.stats.unique_images, pristine_images().len());
    assert_eq!(out.stats.parse_errors, 0);
    let n = pristine_images().len();
    for (i, image) in corpus.iter().take(n).enumerate() {
        for (j, &config) in configs.iter().enumerate() {
            let direct =
                FunSeeker::with_config(config).identify(image).expect("pristine image analyzes");
            let batch = out.results[i][j].as_ref().expect("pristine image analyzes in batch");
            assert_eq!(batch.as_ref(), &direct);
            let dup = out.results[i + n][j].as_ref().unwrap();
            assert!(std::sync::Arc::ptr_eq(batch, dup), "duplicate got its own allocation");
        }
    }
}
