//! **funseeker-batch** — the batch analysis engine: a content-addressed
//! result cache, scratch-arena reuse, and a pipelined corpus scheduler
//! over the persistent worker pool.
//!
//! Analyzing one binary is cheap; evaluation workloads analyze
//! thousands, many of them byte-identical across optimization sweeps
//! and reruns. This crate turns the per-binary library
//! ([`funseeker::prepare`] + [`funseeker::FunSeeker`]) into a
//! throughput engine without changing a single output bit:
//!
//! - [`admission`] — the bounded admission gates: [`Ballast`] bounds
//!   the estimated bytes in flight, [`Gate`] bounds concurrency with a
//!   bounded wait queue; both refuse (`Busy`) instead of buffering
//!   without bound. Shared by the scheduler and the serving layer.
//! - [`hash`] — a streaming 64-bit content hash; the cache key for an
//!   image is a pure function of its bytes.
//! - [`cache`] — [`ResultCache`], a sharded in-memory map of completed
//!   [`funseeker::Analysis`] results, plus [`DiskCache`], an optional
//!   checksummed on-disk layer (atomic-rename writers, corrupt entries
//!   read as misses).
//! - [`scheduler`] — [`run`]: parse → sweep → analyze pipelined per
//!   binary over [`funseeker_pool::Pool::scope`], with bounded
//!   in-flight memory, per-worker [`funseeker::Scratch`] arenas, and
//!   within-corpus dedup of identical images.
//!
//! # Example
//!
//! ```
//! use funseeker::Config;
//! use funseeker_batch::{run, BatchOptions};
//!
//! let image = std::fs::read("/proc/self/exe").unwrap();
//! let corpus = vec![image.clone(), image]; // duplicates analyzed once
//! let out = run(&corpus, &[Config::c4()], &BatchOptions::default());
//! assert_eq!(out.stats.unique_images, 1);
//! let a = out.results[0][0].as_ref().unwrap();
//! println!("{} functions at {:.0}% hit rate", a.functions.len(),
//!          100.0 * out.stats.hit_rate());
//! ```
//!
//! The engine's contract — cached, deduplicated, scratch-reusing, and
//! pipelined paths return results **identical** to a fresh sequential
//! analysis — is enforced by the property tests in `tests/`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod hash;
pub mod scheduler;

pub use admission::{Ballast, Gate, GatePass};
pub use cache::{cache_key, config_fingerprint, DiskCache, ResultCache};
pub use hash::{hash_bytes, mix64, Hasher64};
pub use scheduler::{
    analyze_hashed, inflight_estimate, probe, run, run_with_cache, BatchOptions, BatchOutput,
    BatchStats, CacheSource, ImageAnalysis,
};
