//! The pipelined corpus scheduler.
//!
//! [`run`] decomposes each binary into the three stages of Algorithm 1's
//! front and back ends — **parse** → **sweep** → **analyze** — and
//! executes them as individually-scheduled tasks on the persistent
//! worker pool via [`funseeker_pool::Pool::scope`]: a parse task spawns
//! its binary's sweep task, which spawns its analyze task. While one
//! binary is in its (serial, allocation-heavy) parse stage, others are
//! sweeping or analyzing, so the pool's workers stay busy even when the
//! corpus mixes tiny and huge images.
//!
//! Three further mechanisms make the batch path fast without changing
//! its output:
//!
//! - **content dedup** — images are hashed up front and byte-identical
//!   duplicates are analyzed once, sharing one `Arc`'d result;
//! - **result caching** — completed analyses land in a
//!   [`ResultCache`] keyed by content (see [`crate::cache`]), with an
//!   optional disk layer for cross-run reuse;
//! - **scratch reuse** — each worker thread owns one
//!   [`funseeker::Scratch`] arena, so per-binary stage runs stop
//!   allocating once the arenas reach the workload's high-water mark.
//!
//! In-flight memory is bounded: the submitter admits a binary into the
//! pipeline only when the estimated footprint of everything currently
//! in flight fits under [`BatchOptions::max_inflight_bytes`], blocking
//! otherwise until analyses retire. One binary is always admitted, so
//! a single image larger than the bound still processes.
//!
//! The contract, enforced by proptests in `tests/`: for every input and
//! configuration, the result is **identical** to a fresh sequential
//! [`funseeker::prepare`] + [`funseeker::FunSeeker::identify_prepared`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use funseeker::parse::parse;
use funseeker::{Analysis, AnalysisPlan, Config, Prepared, Scratch, StageStats};

use crate::admission::Ballast;
use crate::cache::{cache_key, DiskCache, ResultCache};
use crate::hash::hash_bytes;

/// Tuning knobs for one batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Use the in-memory result cache (and dedup identical images).
    /// Off, every binary is fully re-analyzed — the configuration the
    /// evaluation harness uses to isolate pipeline + scratch gains.
    pub cache: bool,
    /// Directory for the persistent disk layer; `None` disables it.
    /// Ignored when `cache` is off.
    pub disk_cache: Option<PathBuf>,
    /// Admission bound on the estimated bytes of all in-flight parses,
    /// sweep indexes, and images. `usize::MAX` disables the bound.
    pub max_inflight_bytes: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            cache: true,
            disk_cache: None,
            // Enough for ~dozens of typical corpus binaries in flight;
            // small enough to keep a million-binary corpus from
            // ballooning resident memory.
            max_inflight_bytes: 256 << 20,
        }
    }
}

/// Per-stage and cache accounting for one batch run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Binaries submitted.
    pub binaries: usize,
    /// Distinct images after content dedup (== `binaries` when the
    /// cache is disabled).
    pub unique_images: usize,
    /// Binaries whose parse stage failed (their results are `None`).
    pub parse_errors: usize,
    /// Result-cache hits during this run.
    pub cache_hits: u64,
    /// Result-cache misses during this run.
    pub cache_misses: u64,
    /// Misses that the disk layer served.
    pub disk_hits: u64,
    /// Wall nanoseconds summed over all parse-stage tasks.
    pub parse_ns: u64,
    /// Wall nanoseconds summed over all sweep-stage tasks.
    pub sweep_ns: u64,
    /// Wall nanoseconds summed over all analyze-stage tasks.
    pub analyze_ns: u64,
    /// Core-analyzer per-stage counters (FILTERENDBR, SELECTTAILCALL,
    /// candidate-set algebra, interprocedural), summed over every
    /// non-cached (image, configuration) computation.
    pub stage: StageStats,
    /// High-water mark of the in-flight memory estimate.
    pub peak_inflight_bytes: usize,
}

impl BatchStats {
    /// Hits as a fraction of this run's lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Results of one batch run.
#[derive(Debug)]
pub struct BatchOutput {
    /// `results[i][j]` is binary `i` analyzed under configuration `j`;
    /// `None` when the image failed to parse. Duplicate images and
    /// cache hits share `Arc`s.
    pub results: Vec<Vec<Option<Arc<Analysis>>>>,
    /// Accounting for the run.
    pub stats: BatchStats,
}

/// Rough in-flight footprint of one binary mid-pipeline: the borrowed
/// image plus parsed metadata plus the packed sweep index (~6 bytes per
/// instruction, instructions averaging ~4 bytes).
///
/// Public so admission decisions elsewhere (the serving layer gates a
/// request *before* reading its body off the socket) use the same
/// estimate the scheduler charges against its [`Ballast`].
pub fn inflight_estimate(image_len: usize) -> usize {
    4096 + image_len.saturating_mul(3)
}

thread_local! {
    /// One scratch arena plus one [`AnalysisPlan`] per pool worker (and
    /// per submitter thread): the plan is rebuilt once per distinct
    /// image and every required configuration is derived from it by set
    /// algebra; both grow to the workload's high-water mark and never
    /// shrink, so the warm path allocates nothing.
    static WORKSPACE: RefCell<(Scratch, AnalysisPlan)> =
        RefCell::new((Scratch::new(), AnalysisPlan::new()));
}

/// Runs the batch engine over `images`, analyzing each under every
/// configuration in `configs`, with a private result cache.
pub fn run<I: AsRef<[u8]> + Sync>(
    images: &[I],
    configs: &[Config],
    opts: &BatchOptions,
) -> BatchOutput {
    run_with_cache(images, configs, opts, &ResultCache::new())
}

/// [`run`] against a caller-owned [`ResultCache`], which is how warm
/// reruns share results across calls.
pub fn run_with_cache<I: AsRef<[u8]> + Sync>(
    images: &[I],
    configs: &[Config],
    opts: &BatchOptions,
    cache: &ResultCache,
) -> BatchOutput {
    let pool = funseeker_pool::global();
    let disk = opts.disk_cache.as_ref().map(DiskCache::new);
    let (hits0, misses0) = (cache.hits(), cache.misses());

    // ---- Content dedup: hash every image, group exact duplicates. ----
    // Hashing runs at memory speed and parallelizes trivially, so it
    // happens as one flat pool batch before the pipeline starts.
    let hashes: Vec<u64> = pool.run(images.iter().map(|b| || hash_bytes(b.as_ref())).collect());
    let mut unique_of_hash: HashMap<u64, usize> = HashMap::new();
    let mut uniques: Vec<(usize, u64)> = Vec::new(); // (first image idx, hash)
    let mut group: Vec<usize> = Vec::with_capacity(images.len());
    for (i, &h) in hashes.iter().enumerate() {
        if opts.cache {
            let next = uniques.len();
            let u = *unique_of_hash.entry(h).or_insert(next);
            if u == next {
                uniques.push((i, h));
            }
            group.push(u);
        } else {
            // Cache off: no dedup either, every submission pays full
            // price (the measurement the `nocache` eval row wants).
            uniques.push((i, h));
            group.push(i);
        }
    }

    // ---- Pipeline the unique images through parse → sweep → analyze. ----
    let slots: Vec<OnceLock<Option<Vec<Arc<Analysis>>>>> =
        (0..uniques.len()).map(|_| OnceLock::new()).collect();
    let ballast = Ballast::new(if pool.workers() == 0 {
        // Zero workers means tasks only run when the submitter drains
        // the queue at scope exit; blocking admission would deadlock.
        usize::MAX
    } else {
        opts.max_inflight_bytes
    });
    let parse_ns = AtomicU64::new(0);
    let sweep_ns = AtomicU64::new(0);
    let analyze_ns = AtomicU64::new(0);
    let stage_stats = Mutex::new(StageStats::default());
    let parse_errors = AtomicUsize::new(0);
    let disk_hits = AtomicU64::new(0);
    let mem_cache = opts.cache.then_some(cache);

    pool.scope(|s| {
        for (u, &(img_idx, image_hash)) in uniques.iter().enumerate() {
            let bytes: &[u8] = images[img_idx].as_ref();

            // Probe the cache hierarchy *before* admitting the binary
            // into the pipeline: a fully-cached image costs its hash
            // plus one map lookup per configuration — no parse, no
            // sweep, no admission. Partial hits carry their resolved
            // prefix into the analyze stage so nothing is looked up
            // twice.
            let mut resolved: Vec<Option<Arc<Analysis>>> = Vec::with_capacity(configs.len());
            let mut missing = 0usize;
            for cfg in configs {
                let hit = mem_cache.and_then(|mem| {
                    let (analysis, source) = probe(mem, disk.as_ref(), image_hash, cfg)?;
                    if source == CacheSource::Disk {
                        disk_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(analysis)
                });
                missing += hit.is_none() as usize;
                resolved.push(hit);
            }
            if missing == 0 {
                let _ = slots[u].set(Some(resolved.into_iter().flatten().collect()));
                continue;
            }

            let est = inflight_estimate(bytes.len());
            ballast.acquire(est);
            let (slots, ballast) = (&slots, &ballast);
            let (parse_ns, sweep_ns, analyze_ns) = (&parse_ns, &sweep_ns, &analyze_ns);
            let (parse_errors, stage_stats) = (&parse_errors, &stage_stats);
            let disk = disk.as_ref(); // Option<&DiskCache> is Copy
            s.spawn(move || {
                // Stage 1: PARSE.
                let t = Instant::now();
                let parsed = parse(bytes);
                parse_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let parsed = match parsed {
                    Ok(p) => p,
                    Err(_) => {
                        // Failures are never cached: a future fixed
                        // image hashes differently anyway, and hostile
                        // inputs must not leave residue behind.
                        parse_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = slots[u].set(None);
                        ballast.release(est);
                        return;
                    }
                };
                s.spawn(move || {
                    // Stage 2: SWEEP (the shared disassembly pass).
                    let t = Instant::now();
                    let prepared = Prepared::from_parsed(parsed);
                    sweep_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    s.spawn(move || {
                        // Stage 3: ANALYZE the configurations the probe
                        // left unresolved — one plan rebuild over the
                        // shared sweep, then per-config set algebra.
                        let t = Instant::now();
                        let (per_config, stage) = compute_missing(
                            image_hash, configs, resolved, &prepared, mem_cache, disk,
                        );
                        analyze_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        stage_stats.lock().unwrap().merge(&stage);
                        let _ = slots[u].set(Some(per_config));
                        ballast.release(est);
                    });
                });
            });
        }
    });

    // ---- Fan results back out to the submission order. ----
    let results = group
        .iter()
        .map(|&u| match slots[u].get().expect("scope joined every pipeline stage") {
            None => vec![None; configs.len()],
            Some(per_config) => per_config.iter().cloned().map(Some).collect(),
        })
        .collect();

    BatchOutput {
        results,
        stats: BatchStats {
            binaries: images.len(),
            unique_images: uniques.len(),
            parse_errors: parse_errors.into_inner(),
            cache_hits: cache.hits() - hits0,
            cache_misses: cache.misses() - misses0,
            disk_hits: disk_hits.into_inner(),
            parse_ns: parse_ns.into_inner(),
            sweep_ns: sweep_ns.into_inner(),
            analyze_ns: analyze_ns.into_inner(),
            stage: stage_stats.into_inner().unwrap(),
            peak_inflight_bytes: ballast.peak(),
        },
    }
}

/// Which cache layer served a [`probe`] hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// The in-memory [`ResultCache`].
    Memory,
    /// The on-disk layer (the entry was promoted into memory on the way
    /// out, so a repeat probe hits [`CacheSource::Memory`]).
    Disk,
}

/// Probes the cache hierarchy for one (image, configuration) result —
/// the *probe-before-admission* step the scheduler runs before letting
/// a binary into the pipeline, public so a long-running server can
/// serve fully-cached submissions without paying parse, sweep, or
/// admission.
///
/// A memory hit costs one sharded map lookup. On a memory miss the disk
/// layer (when given) is consulted, and a disk hit is promoted into the
/// memory cache. Hit/miss counters on `mem` are updated as usual.
pub fn probe(
    mem: &ResultCache,
    disk: Option<&DiskCache>,
    image_hash: u64,
    config: &Config,
) -> Option<(Arc<Analysis>, CacheSource)> {
    let key = cache_key(image_hash, config);
    if let Some(hit) = mem.get(key) {
        return Some((hit, CacheSource::Memory));
    }
    let analysis = disk?.load(key)?;
    let shared = Arc::new(analysis);
    mem.insert(key, shared.clone());
    Some((shared, CacheSource::Disk))
}

/// One image analyzed under a set of configurations by
/// [`analyze_hashed`], with the same per-stage accounting the batch
/// scheduler keeps.
#[derive(Debug)]
pub struct ImageAnalysis {
    /// `per_config[j]` is the analysis under `configs[j]`; cache hits
    /// and duplicate submissions share `Arc`s.
    pub per_config: Vec<Arc<Analysis>>,
    /// Configurations served from a cache layer without recomputation.
    pub cache_hits: usize,
    /// Cache hits the disk layer (rather than memory) served.
    pub disk_hits: usize,
    /// Wall nanoseconds in the parse stage (0 when fully cached).
    pub parse_ns: u64,
    /// Wall nanoseconds in the sweep stage (0 when fully cached).
    pub sweep_ns: u64,
    /// Wall nanoseconds in the analyze stage (0 when fully cached).
    pub analyze_ns: u64,
    /// Core-analyzer per-stage counters for the non-cached
    /// configurations (all-zero when fully cached).
    pub stage: StageStats,
}

/// Analyzes one already-hashed image under every configuration in
/// `configs` — the synchronous single-submission path of the serving
/// layer, equivalent to a one-image [`run_with_cache`] on the calling
/// thread.
///
/// Probes the cache hierarchy first; parse and sweep run only when at
/// least one configuration misses. Results land in the caches on the
/// way out, and the calling thread's scratch arena is reused across
/// calls (one arena per long-lived handler thread). `image_hash` must
/// be [`hash_bytes`]`(bytes)` — it is the content half of the cache
/// key, so a wrong hash would poison the cache.
///
/// The output is **identical** to a fresh sequential
/// [`funseeker::prepare`] + [`funseeker::FunSeeker::identify_prepared`]; parse
/// failures return the underlying error and leave no cache residue.
pub fn analyze_hashed(
    bytes: &[u8],
    image_hash: u64,
    configs: &[Config],
    mem: Option<&ResultCache>,
    disk: Option<&DiskCache>,
) -> Result<ImageAnalysis, funseeker::Error> {
    let mut out = ImageAnalysis {
        per_config: Vec::with_capacity(configs.len()),
        cache_hits: 0,
        disk_hits: 0,
        parse_ns: 0,
        sweep_ns: 0,
        analyze_ns: 0,
        stage: StageStats::default(),
    };
    let mut resolved: Vec<Option<Arc<Analysis>>> = Vec::with_capacity(configs.len());
    let mut missing = 0usize;
    for cfg in configs {
        let hit = mem.and_then(|m| probe(m, disk, image_hash, cfg));
        match &hit {
            Some((_, CacheSource::Disk)) => {
                out.cache_hits += 1;
                out.disk_hits += 1;
            }
            Some((_, CacheSource::Memory)) => out.cache_hits += 1,
            None => missing += 1,
        }
        resolved.push(hit.map(|(a, _)| a));
    }
    if missing == 0 {
        out.per_config = resolved.into_iter().flatten().collect();
        return Ok(out);
    }

    let t = Instant::now();
    let parsed = parse(bytes)?;
    out.parse_ns = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let prepared = Prepared::from_parsed(parsed);
    out.sweep_ns = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let (per_config, stage) = compute_missing(image_hash, configs, resolved, &prepared, mem, disk);
    out.per_config = per_config;
    out.stage = stage;
    out.analyze_ns = t.elapsed().as_nanos() as u64;
    Ok(out)
}

/// Analyzes every configuration the cache probe left unresolved, with
/// the worker's scratch arena, and fills the cache layers on the way
/// out. The caller has already established that the cache hierarchy
/// misses each unresolved key.
///
/// This is where the shared [`AnalysisPlan`] pays off: the plan is
/// rebuilt **at most once** per call — one pass over the parse and the
/// sweep that materializes every config-invariant primitive — and each
/// missing configuration is then derived from it by set algebra.
/// (`derive` itself falls back to the staged pipeline for the rare
/// configurations the plan cannot express, so the output is always
/// bit-identical to `run_stages_with`.) Also returns the per-stage
/// counters this call charged.
fn compute_missing(
    image_hash: u64,
    configs: &[Config],
    resolved: Vec<Option<Arc<Analysis>>>,
    prepared: &Prepared<'_>,
    cache: Option<&ResultCache>,
    disk: Option<&DiskCache>,
) -> (Vec<Arc<Analysis>>, StageStats) {
    WORKSPACE.with(|w| {
        let (scratch, plan) = &mut *w.borrow_mut();
        let mut rebuilt = false;
        let per_config = configs
            .iter()
            .zip(resolved)
            .map(|(config, hit)| {
                hit.unwrap_or_else(|| {
                    if !rebuilt && AnalysisPlan::supports(config) {
                        plan.rebuild(&prepared.parsed, &prepared.index, scratch);
                        rebuilt = true;
                    }
                    let analysis = plan.derive(config, &prepared.parsed, &prepared.index, scratch);
                    let shared = Arc::new(analysis);
                    if let Some(mem) = cache {
                        mem.insert(cache_key(image_hash, config), shared.clone());
                        if let Some(d) = disk {
                            d.store(image_hash, config, &shared);
                        }
                    }
                    shared
                })
            })
            .collect();
        (per_config, scratch.take_stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker::FunSeeker;

    fn own_exe() -> Vec<u8> {
        std::fs::read("/proc/self/exe").unwrap()
    }

    #[test]
    fn matches_fresh_sequential_analysis() {
        let image = own_exe();
        let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();
        let out = run(std::slice::from_ref(&image), &configs, &BatchOptions::default());
        let prepared = funseeker::prepare(&image).unwrap();
        for (j, cfg) in configs.iter().enumerate() {
            let fresh = FunSeeker::with_config(*cfg).identify_prepared(&prepared);
            assert_eq!(*out.results[0][j].as_ref().unwrap().as_ref(), fresh, "config {j}");
        }
        assert_eq!(out.stats.binaries, 1);
        assert_eq!(out.stats.unique_images, 1);
        assert_eq!(out.stats.parse_errors, 0);
        assert!(out.stats.parse_ns > 0 && out.stats.sweep_ns > 0 && out.stats.analyze_ns > 0);
        // The plan-derived analyze stage charges the same per-stage
        // counters the unfused pipeline would.
        assert!(out.stats.stage.total_ns() > 0);
        assert!(out.stats.stage.entry_candidates > 0);
        assert!(out.stats.stage.final_candidates > 0);
    }

    #[test]
    fn extension_configs_match_fresh_sequential_analysis() {
        // Mixes plan-derivable configurations with ones `derive` must
        // fall back on (pattern scan), through the full batch path.
        let image = own_exe();
        let configs = [
            Config::c4(),
            Config { reach_prune: true, ..Config::c4() },
            Config { interproc: true, ..Config::c4() },
            Config { endbr_pattern_scan: true, ..Config::c4() },
            Config { filter_endbr: false, ..Config::c4() },
        ];
        let out = run(std::slice::from_ref(&image), &configs, &BatchOptions::default());
        let prepared = funseeker::prepare(&image).unwrap();
        for (j, cfg) in configs.iter().enumerate() {
            let fresh = FunSeeker::with_config(*cfg).identify_prepared(&prepared);
            assert_eq!(*out.results[0][j].as_ref().unwrap().as_ref(), fresh, "config {j}");
        }
    }

    #[test]
    fn duplicates_are_analyzed_once_and_share_arcs() {
        let image = own_exe();
        let corpus = vec![image.clone(), image.clone(), image];
        let out = run(&corpus, &[Config::c4()], &BatchOptions::default());
        assert_eq!(out.stats.unique_images, 1);
        let a0 = out.results[0][0].as_ref().unwrap();
        let a2 = out.results[2][0].as_ref().unwrap();
        assert!(Arc::ptr_eq(a0, a2));
    }

    #[test]
    fn warm_rerun_hits_the_shared_cache() {
        let image = own_exe();
        let cache = ResultCache::new();
        let opts = BatchOptions::default();
        let configs = [Config::c4(), Config::c1()];
        let cold = run_with_cache(&[&image[..]], &configs, &opts, &cache);
        assert_eq!(cold.stats.cache_hits, 0);
        let warm = run_with_cache(&[&image[..]], &configs, &opts, &cache);
        assert_eq!(warm.stats.cache_hits, configs.len() as u64);
        assert_eq!(warm.stats.cache_misses, 0);
        for j in 0..configs.len() {
            assert!(Arc::ptr_eq(
                cold.results[0][j].as_ref().unwrap(),
                warm.results[0][j].as_ref().unwrap(),
            ));
        }
        assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parse_failures_yield_none_and_never_poison() {
        let image = own_exe();
        let garbage = b"not an elf at all".to_vec();
        let cache = ResultCache::new();
        let opts = BatchOptions::default();
        let corpus = vec![garbage.clone(), image, garbage];
        let out = run_with_cache(&corpus, &[Config::c4()], &opts, &cache);
        assert!(out.results[0][0].is_none());
        assert!(out.results[1][0].is_some());
        assert!(out.results[2][0].is_none());
        assert_eq!(out.stats.parse_errors, 1, "dedup parses the garbage once");
        // Only the successful analysis was cached.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tight_memory_bound_still_completes() {
        let image = own_exe();
        let corpus = vec![image.clone(), image.clone(), image.clone(), image];
        let opts = BatchOptions {
            cache: false, // no dedup: four full pipelines contend
            max_inflight_bytes: 1,
            ..Default::default()
        };
        let out = run(&corpus, &[Config::c4()], &opts);
        assert!(out.results.iter().all(|r| r[0].is_some()));
        assert_eq!(out.stats.unique_images, 4);
        // One-at-a-time admission: the peak is a single binary's estimate.
        assert_eq!(out.stats.peak_inflight_bytes, inflight_estimate(corpus[0].len()));
    }

    #[test]
    fn analyze_hashed_matches_run_and_fills_cache() {
        let image = own_exe();
        let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();
        let cache = ResultCache::new();
        let hash = hash_bytes(&image);
        let one = analyze_hashed(&image, hash, &configs, Some(&cache), None).unwrap();
        assert_eq!(one.cache_hits, 0);
        let out = run(std::slice::from_ref(&image), &configs, &BatchOptions::default());
        for j in 0..configs.len() {
            assert_eq!(one.per_config[j].as_ref(), out.results[0][j].as_ref().unwrap().as_ref());
        }
        // A repeat call is fully served by the cache, skipping the
        // front end entirely.
        let again = analyze_hashed(&image, hash, &configs, Some(&cache), None).unwrap();
        assert_eq!(again.cache_hits, configs.len());
        assert_eq!(again.parse_ns, 0);
        for j in 0..configs.len() {
            assert!(Arc::ptr_eq(&one.per_config[j], &again.per_config[j]));
        }
        // Parse failures propagate and leave no cache residue.
        let before = cache.len();
        let bad = analyze_hashed(b"junk", hash_bytes(b"junk"), &configs, Some(&cache), None);
        assert!(bad.is_err());
        assert_eq!(cache.len(), before);
    }

    #[test]
    fn empty_corpus_and_empty_configs() {
        let out = run::<Vec<u8>>(&[], &[Config::c4()], &BatchOptions::default());
        assert!(out.results.is_empty());
        let image = own_exe();
        let out = run(&[image], &[], &BatchOptions::default());
        assert_eq!(out.results.len(), 1);
        assert!(out.results[0].is_empty());
    }

    #[test]
    fn disk_layer_serves_a_fresh_memory_cache() {
        let dir =
            std::env::temp_dir().join(format!("funseeker-batch-sched-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let image = own_exe();
        let opts = BatchOptions { disk_cache: Some(dir.clone()), ..Default::default() };
        let first = run(&[&image[..]], &[Config::c4()], &opts);
        assert_eq!(first.stats.disk_hits, 0);
        // New in-memory cache (fresh `run`), same disk directory.
        let second = run(&[&image[..]], &[Config::c4()], &opts);
        assert_eq!(second.stats.disk_hits, 1);
        assert_eq!(second.results[0][0].as_ref().unwrap(), first.results[0][0].as_ref().unwrap(),);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
