//! A 64-bit streaming content hash for cache keys.
//!
//! The batch engine addresses results by *content*: two byte-identical
//! ELF images share one cache entry, no matter where they came from.
//! The workspace has no external hashing dependency, so this module
//! implements a small splitmix64-based mixer that consumes input in
//! 32-byte blocks across four interleaved lanes — on the corpus
//! binaries this runs at several GB/s, which keeps the warm-cache fast
//! path (hash, look up, done) orders of magnitude cheaper than a fresh
//! analysis.
//!
//! This is **not** a cryptographic hash. The threat model for the cache
//! is accidental collision between corpus binaries, not an adversary
//! engineering one; a hostile *image* gets its own key like any other
//! input, so it can poison at most its own entry (see
//! [`crate::cache`]).

/// Golden-ratio seed, as in splitmix64.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer — a full-avalanche bijection on `u64`.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one — used to fold a [`funseeker::Config`]
/// fingerprint into an image hash when forming a cache key.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b ^ SEED))
}

/// Streaming 64-bit hasher.
///
/// Split-invariant: feeding the same bytes through any sequence of
/// [`write`] calls yields the same [`finish`] value. The total length is
/// folded in at the end, so inputs that differ only by trailing zero
/// padding still hash differently.
///
/// The bulk loop runs **four independent splitmix chains** over
/// interleaved 8-byte chunks of each 32-byte block. A single chain is
/// latency-bound (two serial 64-bit multiplies per 8 bytes); four
/// chains give the out-of-order core independent work every cycle,
/// which roughly triples content-hashing throughput — this is the
/// "hash, look up, done" admission cost every cached batch lookup
/// pays, so it sits directly on the warm and disk-served fast paths.
///
/// [`write`]: Hasher64::write
/// [`finish`]: Hasher64::finish
#[derive(Debug, Clone)]
pub struct Hasher64 {
    lanes: [u64; 4],
    buf: [u8; 32],
    buffered: usize,
    len: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher64 {
            lanes: [
                SEED,
                SEED ^ 0xbf58_476d_1ce4_e5b9,
                SEED ^ 0x94d0_49bb_1331_11eb,
                SEED ^ 0x2545_f491_4f6c_dd1d,
            ],
            buf: [0; 32],
            buffered: 0,
            len: 0,
        }
    }

    #[inline]
    fn mix_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 32);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let chunk = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = splitmix(*lane ^ chunk);
        }
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        // Top up a partially-filled block left by a previous write.
        if self.buffered > 0 {
            let take = (32 - self.buffered).min(bytes.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered < 32 {
                // `bytes` ran dry before completing the block.
                return;
            }
            let buf = self.buf;
            self.mix_block(&buf);
            self.buffered = 0;
        }
        let mut blocks = bytes.chunks_exact(32);
        for b in &mut blocks {
            self.mix_block(b);
        }
        let rem = blocks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        // Fold the four lanes into one word, then the tail (processed
        // serially, 8 bytes at a time, zero-padded) and the length.
        let [a, b, c, d] = self.lanes;
        let mut state = splitmix(a ^ splitmix(b ^ splitmix(c ^ splitmix(d ^ SEED))));
        let mut at = 0;
        while at < self.buffered {
            let take = (self.buffered - at).min(8);
            let mut tail = [0u8; 8];
            tail[..take].copy_from_slice(&self.buf[at..at + take]);
            state = splitmix(state ^ u64::from_le_bytes(tail));
            at += take;
        }
        splitmix(state ^ self.len)
    }
}

/// One-shot convenience over [`Hasher64`].
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_invariance() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = hash_bytes(&data);
        for split_a in [0usize, 1, 3, 7, 8, 9, 500, 999, 1000] {
            for split_b in [split_a, (split_a + 1).min(1000), (split_a + 13).min(1000)] {
                let mut h = Hasher64::new();
                h.write(&data[..split_a]);
                h.write(&data[split_a..split_b]);
                h.write(&data[split_b..]);
                assert_eq!(h.finish(), whole, "splits at {split_a}/{split_b}");
            }
        }
    }

    #[test]
    fn distinguishes_trailing_zeros_and_lengths() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"\0"), hash_bytes(b"\0\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgh\0"));
    }

    #[test]
    fn sensitive_to_every_byte_position() {
        let base = vec![0u8; 64];
        let h0 = hash_bytes(&base);
        for i in 0..64 {
            let mut flipped = base.clone();
            flipped[i] = 1;
            assert_ne!(hash_bytes(&flipped), h0, "byte {i} did not affect the hash");
        }
    }

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), 0);
    }

    #[test]
    fn stable_across_calls() {
        // The cache persists across processes; the hash must be a pure
        // function of the bytes.
        let d = b"funseeker";
        assert_eq!(hash_bytes(d), hash_bytes(d));
    }
}
