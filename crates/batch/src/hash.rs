//! A 64-bit streaming content hash for cache keys.
//!
//! The batch engine addresses results by *content*: two byte-identical
//! ELF images share one cache entry, no matter where they came from.
//! The workspace has no external hashing dependency, so this module
//! implements a small splitmix64-based mixer that consumes input eight
//! bytes at a time — on the corpus binaries this runs at memory-stream
//! speed, which keeps the warm-cache fast path (hash, look up, done)
//! orders of magnitude cheaper than a fresh analysis.
//!
//! This is **not** a cryptographic hash. The threat model for the cache
//! is accidental collision between corpus binaries, not an adversary
//! engineering one; a hostile *image* gets its own key like any other
//! input, so it can poison at most its own entry (see
//! [`crate::cache`]).

/// Golden-ratio seed, as in splitmix64.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer — a full-avalanche bijection on `u64`.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one — used to fold a [`funseeker::Config`]
/// fingerprint into an image hash when forming a cache key.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b ^ SEED))
}

/// Streaming 64-bit hasher.
///
/// Split-invariant: feeding the same bytes through any sequence of
/// [`write`] calls yields the same [`finish`] value. The total length is
/// folded in at the end, so inputs that differ only by trailing zero
/// padding still hash differently.
///
/// [`write`]: Hasher64::write
/// [`finish`]: Hasher64::finish
#[derive(Debug, Clone)]
pub struct Hasher64 {
    state: u64,
    buf: [u8; 8],
    buffered: usize,
    len: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher64 { state: SEED, buf: [0; 8], buffered: 0, len: 0 }
    }

    #[inline]
    fn mix_chunk(&mut self, chunk: u64) {
        self.state = splitmix(self.state ^ chunk);
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        // Top up a partially-filled chunk left by a previous write.
        if self.buffered > 0 {
            let take = (8 - self.buffered).min(bytes.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered < 8 {
                // `bytes` ran dry before completing the chunk.
                return;
            }
            self.mix_chunk(u64::from_le_bytes(self.buf));
            self.buffered = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix_chunk(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.buffered > 0 {
            let mut tail = [0u8; 8];
            tail[..self.buffered].copy_from_slice(&self.buf[..self.buffered]);
            state = splitmix(state ^ u64::from_le_bytes(tail));
        }
        splitmix(state ^ self.len)
    }
}

/// One-shot convenience over [`Hasher64`].
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_invariance() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = hash_bytes(&data);
        for split_a in [0usize, 1, 3, 7, 8, 9, 500, 999, 1000] {
            for split_b in [split_a, (split_a + 1).min(1000), (split_a + 13).min(1000)] {
                let mut h = Hasher64::new();
                h.write(&data[..split_a]);
                h.write(&data[split_a..split_b]);
                h.write(&data[split_b..]);
                assert_eq!(h.finish(), whole, "splits at {split_a}/{split_b}");
            }
        }
    }

    #[test]
    fn distinguishes_trailing_zeros_and_lengths() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"\0"), hash_bytes(b"\0\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgh\0"));
    }

    #[test]
    fn sensitive_to_every_byte_position() {
        let base = vec![0u8; 64];
        let h0 = hash_bytes(&base);
        for i in 0..64 {
            let mut flipped = base.clone();
            flipped[i] = 1;
            assert_ne!(hash_bytes(&flipped), h0, "byte {i} did not affect the hash");
        }
    }

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), 0);
    }

    #[test]
    fn stable_across_calls() {
        // The cache persists across processes; the hash must be a pure
        // function of the bytes.
        let d = b"funseeker";
        assert_eq!(hash_bytes(d), hash_bytes(d));
    }
}
