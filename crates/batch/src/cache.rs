//! Content-addressed result cache — in-memory sharded map plus an
//! optional on-disk layer.
//!
//! # Keying
//!
//! A cache key is `mix64(image_hash, config_fingerprint)`: the streaming
//! hash of the **entire** ELF image folded with a fingerprint of every
//! [`Config`] field. There is no mtime, path, or size heuristic —
//! invalidation is purely content-addressed, so a rebuilt-but-identical
//! binary hits and a one-byte patch misses. Hostile inputs cannot poison
//! other entries: a different image hashes to a different key, and parse
//! *failures* are never inserted at all (the scheduler caches only
//! successful [`Analysis`] values, which are deterministic in the input
//! bytes).
//!
//! # Record format v3
//!
//! Entries persist — and travel over the daemon wire protocol — as a
//! fixed-header **binary record** (`DESIGN.md` §7 is the normative
//! spec): a 40-byte header (magic, version, image hash, config
//! fingerprint, key), length-prefixed sections (meta counters, a raw
//! little-endian `u64` function array decoded straight off the mapped
//! file, interproc summary, diagnostics), and a trailing checksum over
//! everything before it. [`encode`]/[`decode`] are the codec; the v2
//! line-oriented text codec survives as [`serialize_v2`] /
//! [`deserialize_v2`] for the migration test and the before/after
//! decode benchmarks.
//!
//! # Disk layer
//!
//! One record per key under a caller-chosen directory
//! (`target/funseeker-cache/` by convention). Writers are crash- and
//! race-safe: content goes to a unique temp file first and is atomically
//! `rename`d into place, so concurrent processes never observe a
//! half-written entry. Readers **memory-map** the entry (no read copy;
//! see [`funseeker_elf::Image`]) and treat *any* irregularity —
//! truncation, flipped bytes, unknown version, a key mismatch, a
//! leftover v2 text entry — as a plain miss, never an error; an entry
//! that fails to decode is garbage-collected on the spot so a cache
//! directory migrates itself from v2 to v3 as it is used.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use funseeker::diag::Component;
use funseeker::{Analysis, Config, Diagnostics, InterprocSummary};
use funseeker_elf::Image;

use crate::hash::{hash_bytes, mix64};

/// Fingerprint of every field of a [`Config`], for cache keying.
pub fn config_fingerprint(config: &Config) -> u64 {
    let bits = (config.filter_endbr as u64)
        | (config.include_jump_targets as u64) << 1
        | (config.select_tail_calls as u64) << 2
        | (config.endbr_pattern_scan as u64) << 3
        | (config.reach_prune as u64) << 4
        | (config.interproc as u64) << 5
        | (config.min_tail_referers as u64) << 8;
    mix64(0xf5ee_ce4c_0f16, bits)
}

/// The cache key for one (image, configuration) pair.
pub fn cache_key(image_hash: u64, config: &Config) -> u64 {
    mix64(image_hash, config_fingerprint(config))
}

const SHARDS: usize = 16;

/// One cached result: the shared analysis plus, once some reply has
/// been served for it, the encoded v3 record bytes — so duplicate
/// requests memcpy a pre-checksummed payload instead of re-encoding.
struct Slot {
    analysis: Arc<Analysis>,
    wire: Option<Arc<Vec<u8>>>,
}

/// Sharded in-memory map of completed analyses.
///
/// Lookups and inserts take one shard lock chosen by key bits, so the
/// pool's workers rarely contend. Values are `Arc`-shared: a hit costs a
/// refcount bump, and duplicate images across a corpus share one
/// allocation. Each entry can additionally carry its encoded v3 reply
/// bytes ([`ResultCache::wire`] / [`ResultCache::set_wire`]) — the
/// daemon's serialized-reply fast path.
pub struct ResultCache {
    shards: [Mutex<HashMap<u64, Slot>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Slot>> {
        // The key is splitmix output — any bit window is uniform.
        &self.shards[(key >> 48) as usize % SHARDS]
    }

    /// Looks up a completed analysis, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<Analysis>> {
        let found = self.shard(key).lock().unwrap().get(&key).map(|s| s.analysis.clone());
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a completed analysis (dropping any cached reply bytes a
    /// previous value under the same key carried).
    pub fn insert(&self, key: u64, analysis: Arc<Analysis>) {
        self.shard(key).lock().unwrap().insert(key, Slot { analysis, wire: None });
    }

    /// The encoded reply bytes cached next to `key`, if some earlier
    /// reply already paid for encoding them. Not counted as a cache
    /// hit or miss — this is a side-table lookup on an entry the
    /// caller already holds.
    pub fn wire(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        self.shard(key).lock().unwrap().get(&key).and_then(|s| s.wire.clone())
    }

    /// Attaches encoded reply bytes to an existing entry (first writer
    /// wins; a no-op when the key is not resident). Returns the bytes
    /// now cached under the key, so racing encoders converge on one
    /// allocation.
    pub fn set_wire(&self, key: u64, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut shard = self.shard(key).lock().unwrap();
        match shard.get_mut(&key) {
            Some(slot) => slot.wire.get_or_insert(bytes).clone(),
            None => bytes,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

// ---------------------------------------------------------------------
// Record format v3 (binary)
// ---------------------------------------------------------------------

/// Record magic, first four bytes of every v3 record.
pub const MAGIC_V3: [u8; 4] = *b"FSC3";
/// Record format version stamped after the magic.
pub const FORMAT_VERSION: u16 = 3;

/// Fixed header length: magic(4) version(2) reserved(2) image_hash(8)
/// config_fp(8) key(8) section_count(4) payload_len(4).
const HEADER_LEN: usize = 40;
/// Trailing checksum length.
const SUM_LEN: usize = 8;
/// Per-section prefix: tag(4) len(4).
const SECTION_PREFIX: usize = 8;

const TAG_META: u32 = 1;
const TAG_FUNCS: u32 = 2;
const TAG_INTERPROC: u32 = 3;
const TAG_DIAG: u32 = 4;

/// META section payload: ten `u64` fields.
const META_LEN: usize = 80;
/// INTERPROC section payload: seven `u64` fields.
const INTERPROC_LEN: usize = 56;

fn component_code(c: Component) -> Option<u32> {
    Some(match c {
        Component::Layout => 1,
        Component::EhFrame => 2,
        Component::GccExceptTable => 3,
        Component::NoteProperty => 4,
        Component::Plt => 5,
        Component::Dynamic => 6,
        // `Component` is non_exhaustive: a future variant this build
        // doesn't know how to round-trip makes the entry non-persistable
        // (the in-memory cache still holds it).
        _ => return None,
    })
}

fn component_from_code(code: u32) -> Option<Component> {
    Some(match code {
        1 => Component::Layout,
        2 => Component::EhFrame,
        3 => Component::GccExceptTable,
        4 => Component::NoteProperty,
        5 => Component::Plt,
        6 => Component::Dynamic,
        _ => return None,
    })
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one analysis as a v3 binary record for the `(image_hash,
/// config_fp)` pair. Returns `None` when the entry cannot be
/// represented (a diagnostic component with no stable code, or a
/// section overflowing the `u32` length prefix).
pub fn encode(image_hash: u64, config_fp: u64, a: &Analysis) -> Option<Vec<u8>> {
    let key = mix64(image_hash, config_fp);
    let mut out = Vec::with_capacity(HEADER_LEN + META_LEN + 8 * a.functions.len() + 256);
    out.extend_from_slice(&MAGIC_V3);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&image_hash.to_le_bytes());
    out.extend_from_slice(&config_fp.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    // section_count and payload_len are patched in below.
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());

    let mut sections = 0u32;
    let mut meta = [0u8; META_LEN];
    for (i, v) in [
        a.text_range.0,
        a.text_range.1,
        a.endbr_count as u64,
        a.filtered_endbrs as u64,
        a.call_target_count as u64,
        a.jmp_target_count as u64,
        a.tail_target_count as u64,
        a.decode_errors as u64,
        a.pruned_count as u64,
        a.cet_enabled as u64,
    ]
    .into_iter()
    .enumerate()
    {
        meta[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    push_section(&mut out, TAG_META, &meta);
    sections += 1;

    // Bulk encode straight off the packed sorted slice — no tree walk.
    let mut funcs = Vec::with_capacity(8 * a.functions.len());
    for f in a.functions.as_slice() {
        funcs.extend_from_slice(&f.to_le_bytes());
    }
    if funcs.len() > u32::MAX as usize {
        return None;
    }
    push_section(&mut out, TAG_FUNCS, &funcs);
    sections += 1;

    if let Some(ip) = a.interproc {
        let mut body = [0u8; INTERPROC_LEN];
        for (i, v) in [
            ip.cfg_count as u64,
            ip.block_count as u64,
            ip.cfg_edge_count as u64,
            ip.direct_call_edges as u64,
            ip.tail_call_edges as u64,
            ip.indirect_sites as u64,
            ip.indirect_targets as u64,
        ]
        .into_iter()
        .enumerate()
        {
            body[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        push_section(&mut out, TAG_INTERPROC, &body);
        sections += 1;
    }

    for d in a.diagnostics.iter() {
        let code = component_code(d.component)?;
        let mut body = Vec::with_capacity(12 + d.message.len());
        body.extend_from_slice(&code.to_le_bytes());
        body.extend_from_slice(&(d.count as u64).to_le_bytes());
        body.extend_from_slice(d.message.as_bytes());
        if body.len() > u32::MAX as usize {
            return None;
        }
        push_section(&mut out, TAG_DIAG, &body);
        sections += 1;
    }

    let payload_len = u32::try_from(out.len() - HEADER_LEN).ok()?;
    out[32..36].copy_from_slice(&sections.to_le_bytes());
    out[36..40].copy_from_slice(&payload_len.to_le_bytes());
    let sum = hash_bytes(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Some(out)
}

fn rd_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn rd_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

/// Decodes a v3 binary record back into an [`Analysis`], verifying it
/// was written for `key`. Any defect — truncation, bit rot, a version
/// or key mismatch, an inconsistent header — returns `None`; nothing
/// here panics or errors on hostile bytes.
pub fn decode(key: u64, bytes: &[u8]) -> Option<Analysis> {
    if bytes.len() < HEADER_LEN + SUM_LEN || bytes[..4] != MAGIC_V3 {
        return None;
    }
    if u16::from_le_bytes(bytes[4..6].try_into().ok()?) != FORMAT_VERSION {
        return None;
    }
    let image_hash = rd_u64(bytes, 8)?;
    let config_fp = rd_u64(bytes, 16)?;
    let stored_key = rd_u64(bytes, 24)?;
    if stored_key != key || mix64(image_hash, config_fp) != stored_key {
        return None;
    }
    let section_count = rd_u32(bytes, 32)? as usize;
    let payload_len = rd_u32(bytes, 36)? as usize;
    if bytes.len() != HEADER_LEN + payload_len + SUM_LEN {
        return None;
    }
    let body_end = HEADER_LEN + payload_len;
    if rd_u64(bytes, body_end)? != hash_bytes(&bytes[..body_end]) {
        return None;
    }

    let mut at = HEADER_LEN;
    let mut seen = 0usize;
    let mut meta: Option<&[u8]> = None;
    let mut funcs: Option<&[u8]> = None;
    let mut interproc = None;
    let mut diagnostics = Diagnostics::new();
    while at < body_end {
        let tag = rd_u32(bytes, at)?;
        let len = rd_u32(bytes, at + 4)? as usize;
        let payload = bytes.get(at + SECTION_PREFIX..at + SECTION_PREFIX + len)?;
        if at + SECTION_PREFIX + len > body_end {
            return None;
        }
        match tag {
            TAG_META if meta.is_none() && len == META_LEN => meta = Some(payload),
            TAG_FUNCS if funcs.is_none() && len.is_multiple_of(8) => funcs = Some(payload),
            TAG_INTERPROC if interproc.is_none() && len == INTERPROC_LEN => {
                interproc = Some(InterprocSummary {
                    cfg_count: rd_u64(payload, 0)? as usize,
                    block_count: rd_u64(payload, 8)? as usize,
                    cfg_edge_count: rd_u64(payload, 16)? as usize,
                    direct_call_edges: rd_u64(payload, 24)? as usize,
                    tail_call_edges: rd_u64(payload, 32)? as usize,
                    indirect_sites: rd_u64(payload, 40)? as usize,
                    indirect_targets: rd_u64(payload, 48)? as usize,
                });
            }
            TAG_DIAG if len >= 12 => {
                let component = component_from_code(rd_u32(payload, 0)?)?;
                let count = rd_u64(payload, 4)? as usize;
                let message = std::str::from_utf8(&payload[12..]).ok()?;
                if count == 0 {
                    return None;
                }
                diagnostics.record(component, message, count);
            }
            // Unknown or malformed section: records are written by the
            // same version that reads them; anything else is damage.
            _ => return None,
        }
        at += SECTION_PREFIX + len;
        seen += 1;
    }
    if seen != section_count {
        return None;
    }
    let meta = meta?;
    let funcs = funcs?;

    // The function array decodes straight off the record bytes (no
    // intermediate text or token vector): strictly ascending `u64`s,
    // rejected otherwise so damaged arrays cannot alias a valid set.
    // One pass validates and fills an exact-capacity vector, which the
    // packed `FuncSet` wraps without further work.
    let mut members: Vec<u64> = Vec::with_capacity(funcs.len() / 8);
    for chunk in funcs.chunks_exact(8) {
        let f = u64::from_le_bytes(chunk.try_into().ok()?);
        if members.last().is_some_and(|&p| p >= f) {
            return None;
        }
        members.push(f);
    }
    let functions = funseeker::FuncSet::from_sorted(members);

    let m = |i: usize| rd_u64(meta, i * 8);
    let cet_enabled = match m(9)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some(Analysis {
        functions,
        text_range: (m(0)?, m(1)?),
        endbr_count: m(2)? as usize,
        filtered_endbrs: m(3)? as usize,
        call_target_count: m(4)? as usize,
        jmp_target_count: m(5)? as usize,
        tail_target_count: m(6)? as usize,
        decode_errors: m(7)? as usize,
        pruned_count: m(8)? as usize,
        interproc,
        cet_enabled,
        diagnostics,
    })
}

// ---------------------------------------------------------------------
// Legacy v2 text codec
// ---------------------------------------------------------------------

const MAGIC_V2: &str = "funseeker-batch-cache v2";

fn component_tag(c: Component) -> Option<&'static str> {
    Some(match c {
        Component::Layout => "layout",
        Component::EhFrame => "eh_frame",
        Component::GccExceptTable => "gcc_except_table",
        Component::NoteProperty => "note_property",
        Component::Plt => "plt",
        Component::Dynamic => "dynamic",
        _ => return None,
    })
}

fn component_from_tag(tag: &str) -> Option<Component> {
    Some(match tag {
        "layout" => Component::Layout,
        "eh_frame" => Component::EhFrame,
        "gcc_except_table" => Component::GccExceptTable,
        "note_property" => Component::NoteProperty,
        "plt" => Component::Plt,
        "dynamic" => Component::Dynamic,
        _ => return None,
    })
}

fn escape(message: &str) -> String {
    message.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// The retired v2 line-oriented text codec (writer half). Kept so the
/// v2→v3 migration test can plant genuine v2 entries and so the io
/// trajectory / criterion benches can measure the decode formats
/// against each other; production paths write [`encode`] records.
pub fn serialize_v2(key: u64, a: &Analysis) -> Option<String> {
    let mut s = String::with_capacity(256 + 17 * a.functions.len());
    s.push_str(MAGIC_V2);
    s.push('\n');
    let _ = writeln!(s, "key {key:016x}");
    let _ = writeln!(s, "range {:x} {:x}", a.text_range.0, a.text_range.1);
    let _ = writeln!(
        s,
        "counts {} {} {} {} {} {} {} {}",
        a.endbr_count,
        a.filtered_endbrs,
        a.call_target_count,
        a.jmp_target_count,
        a.tail_target_count,
        a.decode_errors,
        a.cet_enabled as u8,
        a.pruned_count,
    );
    let _ = writeln!(s, "functions {}", a.functions.len());
    for (i, f) in a.functions.iter().enumerate() {
        let sep = if i % 8 == 7 || i + 1 == a.functions.len() { '\n' } else { ' ' };
        let _ = write!(s, "{f:x}{sep}");
    }
    if let Some(ip) = a.interproc {
        let _ = writeln!(
            s,
            "interproc {} {} {} {} {} {} {}",
            ip.cfg_count,
            ip.block_count,
            ip.cfg_edge_count,
            ip.direct_call_edges,
            ip.tail_call_edges,
            ip.indirect_sites,
            ip.indirect_targets,
        );
    }
    for d in a.diagnostics.iter() {
        let tag = component_tag(d.component)?;
        let _ = writeln!(s, "diag {tag} {} {}", d.count, escape(&d.message));
    }
    let sum = hash_bytes(s.as_bytes());
    let _ = writeln!(s, "end {sum:016x}");
    Some(s)
}

/// The retired v2 text codec (reader half); see [`serialize_v2`]. Any
/// defect returns `None`.
pub fn deserialize_v2(key: u64, text: &str) -> Option<Analysis> {
    // A complete entry always ends in a newline; anything shorter is a
    // truncated write.
    if !text.ends_with('\n') {
        return None;
    }
    // Checksum next: everything before the final `end <sum>` line must
    // hash to <sum>.
    let end_at = text.rfind("end ")?;
    if end_at > 0 && text.as_bytes()[end_at - 1] != b'\n' {
        return None;
    }
    let body = &text[..end_at];
    let sum = u64::from_str_radix(text[end_at + 4..].trim(), 16).ok()?;
    if hash_bytes(body.as_bytes()) != sum {
        return None;
    }

    let mut lines = body.lines().peekable();
    if lines.next()? != MAGIC_V2 {
        return None;
    }
    let stored_key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    if stored_key != key {
        return None;
    }
    let mut range = lines.next()?.strip_prefix("range ")?.split(' ');
    let lo = u64::from_str_radix(range.next()?, 16).ok()?;
    let hi = u64::from_str_radix(range.next()?, 16).ok()?;
    let mut counts = lines.next()?.strip_prefix("counts ")?.split(' ');
    let mut next_count = || counts.next().and_then(|c| c.parse::<usize>().ok());
    let endbr_count = next_count()?;
    let filtered_endbrs = next_count()?;
    let call_target_count = next_count()?;
    let jmp_target_count = next_count()?;
    let tail_target_count = next_count()?;
    let decode_errors = next_count()?;
    let cet_enabled = match next_count()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let pruned_count = next_count()?;

    let n_functions: usize = lines.next()?.strip_prefix("functions ")?.parse().ok()?;
    let mut functions = std::collections::BTreeSet::new();
    while functions.len() < n_functions {
        for tok in lines.next()?.split(' ') {
            functions.insert(u64::from_str_radix(tok, 16).ok()?);
        }
    }
    if functions.len() != n_functions {
        return None;
    }
    // Legacy path only: the tree build stays (it dedups while counting);
    // the packed set is built once from the already-sorted members.
    let functions: funseeker::FuncSet = functions.into_iter().collect();

    let mut interproc = None;
    if let Some(rest) = lines.peek().and_then(|l| l.strip_prefix("interproc ")) {
        let mut fields = rest.split(' ');
        let mut next_field = || fields.next().and_then(|c| c.parse::<usize>().ok());
        interproc = Some(InterprocSummary {
            cfg_count: next_field()?,
            block_count: next_field()?,
            cfg_edge_count: next_field()?,
            direct_call_edges: next_field()?,
            tail_call_edges: next_field()?,
            indirect_sites: next_field()?,
            indirect_targets: next_field()?,
        });
        lines.next();
    }

    let mut diagnostics = Diagnostics::new();
    for line in lines {
        let rest = line.strip_prefix("diag ")?;
        let (tag, rest) = rest.split_once(' ')?;
        let (count, message) = rest.split_once(' ')?;
        diagnostics.record(
            component_from_tag(tag)?,
            unescape(message),
            count.parse::<usize>().ok()?,
        );
    }

    Some(Analysis {
        functions,
        text_range: (lo, hi),
        endbr_count,
        filtered_endbrs,
        call_target_count,
        jmp_target_count,
        tail_target_count,
        decode_errors,
        pruned_count,
        interproc,
        cet_enabled,
        diagnostics,
    })
}

// ---------------------------------------------------------------------
// Disk layer
// ---------------------------------------------------------------------

/// Entry size at which [`DiskCache::load`] switches from reading the
/// record into an owned buffer to memory-mapping it.
pub const MMAP_MIN_RECORD: u64 = 64 * 1024;

/// The on-disk cache layer: one v3 binary record per key under a
/// directory, read zero-copy (mapped at or above [`MMAP_MIN_RECORD`]).
///
/// All operations are best-effort. Unreadable, truncated, corrupt, or
/// legacy-format entries read as misses and are garbage-collected
/// (racing a concurrent re-store of the same key at worst deletes an
/// entry the next analysis rewrites — still only ever a miss); failed
/// writes are dropped silently (the in-memory layer still serves the
/// current run).
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskCache { dir: dir.into() }
    }

    /// The conventional location, `target/funseeker-cache/`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/funseeker-cache")
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.fsc"))
    }

    /// Loads and validates one entry, decoding the function array
    /// straight off the record bytes. Entries at or above
    /// [`MMAP_MIN_RECORD`] are memory-mapped; smaller ones are read —
    /// for a few-KiB record the map/unmap syscalls and page faults
    /// cost more than the copy they avoid. Any defect is a miss; an
    /// existing-but-undecodable file (torn write survivor, bit rot,
    /// leftover v2 text entry) is removed so the directory self-heals.
    pub fn load(&self, key: u64) -> Option<Analysis> {
        let path = self.entry_path(key);
        let image = Image::load_mapped_above(&path, MMAP_MIN_RECORD).ok()?;
        let decoded = decode(key, &image);
        drop(image); // release the mapping before any unlink
        if decoded.is_none() {
            let _ = std::fs::remove_file(&path);
        }
        decoded
    }

    /// Persists one entry. Returns whether the entry is now on disk.
    ///
    /// Safe under concurrent writers: the record is written to a
    /// process-unique temp file and atomically renamed over the final
    /// path, so readers see either the old complete entry or the new
    /// complete entry, never a torn one.
    pub fn store(&self, image_hash: u64, config: &Config, analysis: &Analysis) -> bool {
        let fp = config_fingerprint(config);
        let Some(record) = encode(image_hash, fp, analysis) else { return false };
        self.store_record(mix64(image_hash, fp), &record)
    }

    /// [`DiskCache::store`] for an already-encoded record — the write
    /// half of the daemon's reply-bytes fast path, which encodes once
    /// for both the socket and the disk.
    pub fn store_record(&self, key: u64, record: &[u8]) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, record).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.entry_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker::FunSeeker;

    fn sample() -> Analysis {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        FunSeeker::new().identify(&bytes).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("funseeker-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// `(image_hash, fp, key)` for one config, for direct codec calls.
    fn keys(image_hash: u64, config: &Config) -> (u64, u64, u64) {
        let fp = config_fingerprint(config);
        (image_hash, fp, mix64(image_hash, fp))
    }

    #[test]
    fn round_trips_through_v3_record() {
        let a = sample();
        let (h, fp, key) = keys(0xdead_beef, &Config::c4());
        let record = encode(h, fp, &a).unwrap();
        let back = decode(key, &record).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn round_trips_through_v2_text() {
        let a = sample();
        let key = cache_key(0xdead_beef, &Config::c4());
        let text = serialize_v2(key, &a).unwrap();
        let back = deserialize_v2(key, &text).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn round_trips_diagnostics() {
        let mut a = sample();
        a.diagnostics.warn(Component::EhFrame, "truncated record with spaces");
        a.diagnostics.warn(Component::EhFrame, "truncated record with spaces");
        a.diagnostics.warn(Component::Plt, "line\nbreak and back\\slash");
        let (h, fp, key) = keys(7, &Config::c4());
        let back = decode(key, &encode(h, fp, &a).unwrap()).unwrap();
        assert_eq!(back.diagnostics, a.diagnostics);
        assert_eq!(back, a);
        // And the legacy text codec still agrees with itself.
        let back2 = deserialize_v2(key, &serialize_v2(key, &a).unwrap()).unwrap();
        assert_eq!(back2, a);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_miss() {
        let mut a = sample();
        a.diagnostics.warn(Component::Plt, "planted so DIAG truncation is covered");
        let (h, fp, key) = keys(42, &Config::c4());
        let record = encode(h, fp, &a).unwrap();
        // Every prefix must read as a miss — never a panic, never a
        // wrong Analysis.
        for cut in 0..record.len() {
            assert!(decode(key, &record[..cut]).is_none(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn corruption_at_every_byte_is_a_miss_or_identical() {
        let a = sample();
        let (h, fp, key) = keys(42, &Config::c4());
        let record = encode(h, fp, &a).unwrap();
        // Flip one bit in every byte position: the checksum (itself
        // part of the flipped range) must reject every damaged record.
        for at in 0..record.len() {
            let mut corrupt = record.clone();
            corrupt[at] ^= 0x20;
            assert!(decode(key, &corrupt).is_none(), "flip at byte {at} decoded");
        }
        // Wrong key: content intact, address mismatch.
        assert!(decode(key ^ 1, &record).is_none());
    }

    #[test]
    fn disk_cache_stores_and_loads() {
        let dir = tmp_dir("basic");
        let cache = DiskCache::new(&dir);
        let a = sample();
        let key = cache_key(99, &Config::c2());
        assert!(cache.load(key).is_none(), "cold cache must miss");
        assert!(cache.store(99, &Config::c2(), &a));
        assert_eq!(cache.load(key).unwrap(), a);
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_entry_is_a_miss_and_garbage_collected() {
        let dir = tmp_dir("trunc");
        let cache = DiskCache::new(&dir);
        let a = sample();
        let (h, _, key) = keys(0xabcd, &Config::c4());
        assert!(cache.store(h, &Config::c4(), &a));
        // Simulate a torn write from a non-atomic writer or bit rot.
        let path = dir.join(format!("{key:016x}.fsc"));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();
        assert!(cache.load(key).is_none());
        assert!(!path.exists(), "undecodable entry must be garbage-collected");
        // Garbage bytes likewise.
        std::fs::write(&path, b"\xff\xfenot a record\x00").unwrap();
        assert!(cache.load(key).is_none());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_disk_entry_is_a_silent_miss_and_garbage_collected() {
        // The v2→v3 migration contract: a directory of old text entries
        // keeps working (every v2 entry reads as a miss, never an
        // error) and self-heals (the stale file is removed, then
        // re-stored in v3 by the next analysis).
        let dir = tmp_dir("migrate");
        let cache = DiskCache::new(&dir);
        let a = sample();
        let (h, _, key) = keys(0x515e, &Config::c4());
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{key:016x}.fsc"));
        std::fs::write(&path, serialize_v2(key, &a).unwrap()).unwrap();
        assert!(cache.load(key).is_none(), "v2 entry must miss, not error");
        assert!(!path.exists(), "v2 entry must be garbage-collected");
        // The next store writes v3 and the entry serves again.
        assert!(cache.store(h, &Config::c4(), &a));
        assert_eq!(cache.load(key).unwrap(), a);
        assert_eq!(&std::fs::read(&path).unwrap()[..4], &MAGIC_V3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_leave_a_valid_entry() {
        let dir = tmp_dir("race");
        let a = sample();
        let (h, _, key) = keys(0x7777, &Config::c4());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (dir, a) = (&dir, &a);
                s.spawn(move || {
                    let cache = DiskCache::new(dir);
                    for _ in 0..20 {
                        assert!(cache.store(h, &Config::c4(), a));
                    }
                });
            }
        });
        assert_eq!(DiskCache::new(&dir).load(key).unwrap(), a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_corrupting_readers_converge() {
        // Writers re-store while readers load and a vandal periodically
        // tears the entry: loads must only ever yield the one valid
        // analysis or a miss, and the GC must not wedge the writers.
        let dir = tmp_dir("race-gc");
        let a = sample();
        let (h, _, key) = keys(0x9999, &Config::c4());
        let path = dir.join(format!("{key:016x}.fsc"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (dir, a) = (&dir, &a);
                s.spawn(move || {
                    let cache = DiskCache::new(dir);
                    for _ in 0..30 {
                        cache.store(h, &Config::c4(), a);
                    }
                });
            }
            for _ in 0..4 {
                let (dir, a) = (&dir, &a);
                s.spawn(move || {
                    let cache = DiskCache::new(dir);
                    for _ in 0..30 {
                        if let Some(got) = cache.load(key) {
                            assert_eq!(&got, a);
                        }
                    }
                });
            }
            let path = &path;
            s.spawn(move || {
                for _ in 0..10 {
                    if let Ok(full) = std::fs::read(path) {
                        let _ = std::fs::write(path, &full[..full.len() / 2]);
                    }
                    std::thread::yield_now();
                }
            });
        });
        let cache = DiskCache::new(&dir);
        cache.store(h, &Config::c4(), &a);
        assert_eq!(cache.load(key).unwrap(), a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_cache_counts_hits_and_shares_arcs() {
        let cache = ResultCache::new();
        let a = Arc::new(sample());
        assert!(cache.get(1).is_none());
        cache.insert(1, a.clone());
        let hit = cache.get(1).unwrap();
        assert!(Arc::ptr_eq(&hit, &a), "hits share the stored allocation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn wire_bytes_attach_once_and_share() {
        let cache = ResultCache::new();
        let a = Arc::new(sample());
        cache.insert(5, a.clone());
        assert!(cache.wire(5).is_none(), "no bytes before any reply encoded them");
        let first = Arc::new(vec![1u8, 2, 3]);
        let won = cache.set_wire(5, first.clone());
        assert!(Arc::ptr_eq(&won, &first));
        // A racing second encoder converges on the first allocation.
        let second = Arc::new(vec![9u8]);
        let kept = cache.set_wire(5, second);
        assert!(Arc::ptr_eq(&kept, &first), "first writer wins");
        assert!(Arc::ptr_eq(&cache.wire(5).unwrap(), &first));
        // Wire lookups are not hit/miss events.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // Replacing the analysis drops the stale bytes.
        cache.insert(5, a);
        assert!(cache.wire(5).is_none());
        // Setting on an absent key caches nothing.
        let orphan = Arc::new(vec![7u8]);
        assert!(Arc::ptr_eq(&cache.set_wire(6, orphan.clone()), &orphan));
        assert!(cache.wire(6).is_none());
    }

    #[test]
    fn config_fingerprints_are_distinct() {
        let fps: Vec<u64> = Config::table2().iter().map(|(_, c)| config_fingerprint(c)).collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
        let mut odd = Config::c4();
        odd.min_tail_referers = 3;
        assert_ne!(config_fingerprint(&odd), config_fingerprint(&Config::c4()));
        let mut scan = Config::c4();
        scan.endbr_pattern_scan = true;
        assert_ne!(config_fingerprint(&scan), config_fingerprint(&Config::c4()));
        let mut prune = Config::c3();
        prune.reach_prune = true;
        assert_ne!(config_fingerprint(&prune), config_fingerprint(&Config::c3()));
        let mut ip = Config::c4();
        ip.interproc = true;
        assert_ne!(config_fingerprint(&ip), config_fingerprint(&Config::c4()));
    }

    #[test]
    fn round_trips_pruned_count_and_interproc() {
        let mut a = sample();
        a.pruned_count = 17;
        a.interproc = Some(funseeker::InterprocSummary {
            cfg_count: 12,
            block_count: 340,
            cfg_edge_count: 512,
            direct_call_edges: 31,
            tail_call_edges: 4,
            indirect_sites: 9,
            indirect_targets: 11,
        });
        let (h, fp, key) = keys(0x1234, &Config::c4());
        let record = encode(h, fp, &a).unwrap();
        let back = decode(key, &record).unwrap();
        assert_eq!(back.pruned_count, 17);
        assert_eq!(back.interproc, a.interproc);
        assert_eq!(back, a);
    }
}
