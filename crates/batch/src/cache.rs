//! Content-addressed result cache — in-memory sharded map plus an
//! optional on-disk layer.
//!
//! # Keying
//!
//! A cache key is `mix64(image_hash, config_fingerprint)`: the streaming
//! hash of the **entire** ELF image folded with a fingerprint of every
//! [`Config`] field. There is no mtime, path, or size heuristic —
//! invalidation is purely content-addressed, so a rebuilt-but-identical
//! binary hits and a one-byte patch misses. Hostile inputs cannot poison
//! other entries: a different image hashes to a different key, and parse
//! *failures* are never inserted at all (the scheduler caches only
//! successful [`Analysis`] values, which are deterministic in the input
//! bytes).
//!
//! # Disk layer
//!
//! Entries serialize to a line-oriented text file under a caller-chosen
//! directory (`target/funseeker-cache/` by convention) with a trailing
//! checksum over the whole body. Writers are crash- and race-safe:
//! content goes to a unique temp file first and is atomically
//! `rename`d into place, so concurrent processes never observe a
//! half-written entry. Readers treat *any* irregularity — truncation,
//! flipped bytes, unknown version, a key mismatch — as a plain miss,
//! never an error.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use funseeker::diag::Component;
use funseeker::{Analysis, Config, Diagnostics, InterprocSummary};

use crate::hash::{hash_bytes, mix64};

/// Fingerprint of every field of a [`Config`], for cache keying.
pub fn config_fingerprint(config: &Config) -> u64 {
    let bits = (config.filter_endbr as u64)
        | (config.include_jump_targets as u64) << 1
        | (config.select_tail_calls as u64) << 2
        | (config.endbr_pattern_scan as u64) << 3
        | (config.reach_prune as u64) << 4
        | (config.interproc as u64) << 5
        | (config.min_tail_referers as u64) << 8;
    mix64(0xf5ee_ce4c_0f16, bits)
}

/// The cache key for one (image, configuration) pair.
pub fn cache_key(image_hash: u64, config: &Config) -> u64 {
    mix64(image_hash, config_fingerprint(config))
}

const SHARDS: usize = 16;

/// Sharded in-memory map of completed analyses.
///
/// Lookups and inserts take one shard lock chosen by key bits, so the
/// pool's workers rarely contend. Values are `Arc`-shared: a hit costs a
/// refcount bump, and duplicate images across a corpus share one
/// allocation.
pub struct ResultCache {
    shards: [Mutex<HashMap<u64, Arc<Analysis>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<Analysis>>> {
        // The key is splitmix output — any bit window is uniform.
        &self.shards[(key >> 48) as usize % SHARDS]
    }

    /// Looks up a completed analysis, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<Analysis>> {
        let found = self.shard(key).lock().unwrap().get(&key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a completed analysis.
    pub fn insert(&self, key: u64, analysis: Arc<Analysis>) {
        self.shard(key).lock().unwrap().insert(key, analysis);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

const MAGIC: &str = "funseeker-batch-cache v2";

fn component_tag(c: Component) -> Option<&'static str> {
    Some(match c {
        Component::Layout => "layout",
        Component::EhFrame => "eh_frame",
        Component::GccExceptTable => "gcc_except_table",
        Component::NoteProperty => "note_property",
        Component::Plt => "plt",
        Component::Dynamic => "dynamic",
        // `Component` is non_exhaustive: a future variant this build
        // doesn't know how to round-trip makes the entry non-persistable
        // (the in-memory cache still holds it).
        _ => return None,
    })
}

fn component_from_tag(tag: &str) -> Option<Component> {
    Some(match tag {
        "layout" => Component::Layout,
        "eh_frame" => Component::EhFrame,
        "gcc_except_table" => Component::GccExceptTable,
        "note_property" => Component::NoteProperty,
        "plt" => Component::Plt,
        "dynamic" => Component::Dynamic,
        _ => return None,
    })
}

fn escape(message: &str) -> String {
    message.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Serializes one analysis under its key. Returns `None` when the entry
/// cannot be represented (a diagnostic component with no stable tag).
pub fn serialize(key: u64, a: &Analysis) -> Option<String> {
    let mut s = String::with_capacity(256 + 17 * a.functions.len());
    s.push_str(MAGIC);
    s.push('\n');
    let _ = writeln!(s, "key {key:016x}");
    let _ = writeln!(s, "range {:x} {:x}", a.text_range.0, a.text_range.1);
    let _ = writeln!(
        s,
        "counts {} {} {} {} {} {} {} {}",
        a.endbr_count,
        a.filtered_endbrs,
        a.call_target_count,
        a.jmp_target_count,
        a.tail_target_count,
        a.decode_errors,
        a.cet_enabled as u8,
        a.pruned_count,
    );
    let _ = writeln!(s, "functions {}", a.functions.len());
    for (i, f) in a.functions.iter().enumerate() {
        let sep = if i % 8 == 7 || i + 1 == a.functions.len() { '\n' } else { ' ' };
        let _ = write!(s, "{f:x}{sep}");
    }
    if let Some(ip) = a.interproc {
        let _ = writeln!(
            s,
            "interproc {} {} {} {} {} {} {}",
            ip.cfg_count,
            ip.block_count,
            ip.cfg_edge_count,
            ip.direct_call_edges,
            ip.tail_call_edges,
            ip.indirect_sites,
            ip.indirect_targets,
        );
    }
    for d in a.diagnostics.iter() {
        let tag = component_tag(d.component)?;
        let _ = writeln!(s, "diag {tag} {} {}", d.count, escape(&d.message));
    }
    let sum = hash_bytes(s.as_bytes());
    let _ = writeln!(s, "end {sum:016x}");
    Some(s)
}

/// Parses a serialized entry back into an [`Analysis`]. Any defect —
/// truncation, bit rot, version or key mismatch — returns `None`.
pub fn deserialize(key: u64, text: &str) -> Option<Analysis> {
    // A complete entry always ends in a newline; anything shorter is a
    // truncated write.
    if !text.ends_with('\n') {
        return None;
    }
    // Checksum next: everything before the final `end <sum>` line must
    // hash to <sum>.
    let end_at = text.rfind("end ")?;
    if end_at > 0 && text.as_bytes()[end_at - 1] != b'\n' {
        return None;
    }
    let body = &text[..end_at];
    let sum = u64::from_str_radix(text[end_at + 4..].trim(), 16).ok()?;
    if hash_bytes(body.as_bytes()) != sum {
        return None;
    }

    let mut lines = body.lines().peekable();
    if lines.next()? != MAGIC {
        return None;
    }
    let stored_key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    if stored_key != key {
        return None;
    }
    let mut range = lines.next()?.strip_prefix("range ")?.split(' ');
    let lo = u64::from_str_radix(range.next()?, 16).ok()?;
    let hi = u64::from_str_radix(range.next()?, 16).ok()?;
    let mut counts = lines.next()?.strip_prefix("counts ")?.split(' ');
    let mut next_count = || counts.next().and_then(|c| c.parse::<usize>().ok());
    let endbr_count = next_count()?;
    let filtered_endbrs = next_count()?;
    let call_target_count = next_count()?;
    let jmp_target_count = next_count()?;
    let tail_target_count = next_count()?;
    let decode_errors = next_count()?;
    let cet_enabled = match next_count()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let pruned_count = next_count()?;

    let n_functions: usize = lines.next()?.strip_prefix("functions ")?.parse().ok()?;
    let mut functions = std::collections::BTreeSet::new();
    while functions.len() < n_functions {
        for tok in lines.next()?.split(' ') {
            functions.insert(u64::from_str_radix(tok, 16).ok()?);
        }
    }
    if functions.len() != n_functions {
        return None;
    }

    let mut interproc = None;
    if let Some(rest) = lines.peek().and_then(|l| l.strip_prefix("interproc ")) {
        let mut fields = rest.split(' ');
        let mut next_field = || fields.next().and_then(|c| c.parse::<usize>().ok());
        interproc = Some(InterprocSummary {
            cfg_count: next_field()?,
            block_count: next_field()?,
            cfg_edge_count: next_field()?,
            direct_call_edges: next_field()?,
            tail_call_edges: next_field()?,
            indirect_sites: next_field()?,
            indirect_targets: next_field()?,
        });
        lines.next();
    }

    let mut diagnostics = Diagnostics::new();
    for line in lines {
        let rest = line.strip_prefix("diag ")?;
        let (tag, rest) = rest.split_once(' ')?;
        let (count, message) = rest.split_once(' ')?;
        diagnostics.record(
            component_from_tag(tag)?,
            unescape(message),
            count.parse::<usize>().ok()?,
        );
    }

    Some(Analysis {
        functions,
        text_range: (lo, hi),
        endbr_count,
        filtered_endbrs,
        call_target_count,
        jmp_target_count,
        tail_target_count,
        decode_errors,
        pruned_count,
        interproc,
        cet_enabled,
        diagnostics,
    })
}

// ---------------------------------------------------------------------
// Disk layer
// ---------------------------------------------------------------------

/// The on-disk cache layer: one text file per key under a directory.
///
/// All operations are best-effort. Unreadable, truncated, or corrupt
/// entries read as misses; failed writes are dropped silently (the
/// in-memory layer still serves the current run).
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskCache { dir: dir.into() }
    }

    /// The conventional location, `target/funseeker-cache/`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/funseeker-cache")
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.fsc"))
    }

    /// Loads and validates one entry; any defect is a miss.
    pub fn load(&self, key: u64) -> Option<Analysis> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        deserialize(key, &text)
    }

    /// Persists one entry. Returns whether the entry is now on disk.
    ///
    /// Safe under concurrent writers: the content is written to a
    /// process-unique temp file and atomically renamed over the final
    /// path, so readers see either the old complete entry or the new
    /// complete entry, never a torn one.
    pub fn store(&self, key: u64, analysis: &Analysis) -> bool {
        let Some(text) = serialize(key, analysis) else { return false };
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, text).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.entry_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker::FunSeeker;

    fn sample() -> Analysis {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        FunSeeker::new().identify(&bytes).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("funseeker-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_through_text() {
        let a = sample();
        let key = cache_key(0xdead_beef, &Config::c4());
        let text = serialize(key, &a).unwrap();
        let back = deserialize(key, &text).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn round_trips_diagnostics() {
        let mut a = sample();
        a.diagnostics.warn(Component::EhFrame, "truncated record with spaces");
        a.diagnostics.warn(Component::EhFrame, "truncated record with spaces");
        a.diagnostics.warn(Component::Plt, "line\nbreak and back\\slash");
        let key = 7;
        let back = deserialize(key, &serialize(key, &a).unwrap()).unwrap();
        assert_eq!(back.diagnostics, a.diagnostics);
        assert_eq!(back, a);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_miss() {
        let a = sample();
        let key = 42;
        let text = serialize(key, &a).unwrap();
        // Every prefix must read as a miss — never a panic, never a
        // wrong Analysis.
        for cut in 0..text.len() {
            assert!(deserialize(key, &text[..cut]).is_none(), "prefix of {cut} bytes parsed");
        }
    }

    #[test]
    fn corruption_is_a_miss() {
        let a = sample();
        let key = 42;
        let text = serialize(key, &a).unwrap();
        // Flip one character somewhere in the middle of the body.
        let mut corrupt = text.clone().into_bytes();
        let at = corrupt.len() / 2;
        corrupt[at] = if corrupt[at] == b'0' { b'1' } else { b'0' };
        let corrupt = String::from_utf8(corrupt).unwrap();
        assert!(deserialize(key, &corrupt).is_none());
        // Wrong key: content intact, address mismatch.
        assert!(deserialize(key + 1, &text).is_none());
    }

    #[test]
    fn disk_cache_stores_and_loads() {
        let dir = tmp_dir("basic");
        let cache = DiskCache::new(&dir);
        let a = sample();
        let key = cache_key(99, &Config::c2());
        assert!(cache.load(key).is_none(), "cold cache must miss");
        assert!(cache.store(key, &a));
        assert_eq!(cache.load(key).unwrap(), a);
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_entry_is_a_miss_not_an_error() {
        let dir = tmp_dir("trunc");
        let cache = DiskCache::new(&dir);
        let a = sample();
        let key = 0xabcd;
        assert!(cache.store(key, &a));
        // Simulate a torn write from a non-atomic writer or bit rot.
        let path = dir.join(format!("{key:016x}.fsc"));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();
        assert!(cache.load(key).is_none());
        // Garbage bytes likewise.
        std::fs::write(&path, b"\xff\xfenot even utf8\x00").unwrap();
        assert!(cache.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_leave_a_valid_entry() {
        let dir = tmp_dir("race");
        let a = sample();
        let key = 0x7777;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (dir, a) = (&dir, &a);
                s.spawn(move || {
                    let cache = DiskCache::new(dir);
                    for _ in 0..20 {
                        assert!(cache.store(key, a));
                    }
                });
            }
        });
        assert_eq!(DiskCache::new(&dir).load(key).unwrap(), a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_cache_counts_hits_and_shares_arcs() {
        let cache = ResultCache::new();
        let a = Arc::new(sample());
        assert!(cache.get(1).is_none());
        cache.insert(1, a.clone());
        let hit = cache.get(1).unwrap();
        assert!(Arc::ptr_eq(&hit, &a), "hits share the stored allocation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn config_fingerprints_are_distinct() {
        let fps: Vec<u64> = Config::table2().iter().map(|(_, c)| config_fingerprint(c)).collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
        let mut odd = Config::c4();
        odd.min_tail_referers = 3;
        assert_ne!(config_fingerprint(&odd), config_fingerprint(&Config::c4()));
        let mut scan = Config::c4();
        scan.endbr_pattern_scan = true;
        assert_ne!(config_fingerprint(&scan), config_fingerprint(&Config::c4()));
        let mut prune = Config::c3();
        prune.reach_prune = true;
        assert_ne!(config_fingerprint(&prune), config_fingerprint(&Config::c3()));
        let mut ip = Config::c4();
        ip.interproc = true;
        assert_ne!(config_fingerprint(&ip), config_fingerprint(&Config::c4()));
    }

    #[test]
    fn round_trips_pruned_count_and_interproc() {
        let mut a = sample();
        a.pruned_count = 17;
        a.interproc = Some(funseeker::InterprocSummary {
            cfg_count: 12,
            block_count: 340,
            cfg_edge_count: 512,
            direct_call_edges: 31,
            tail_call_edges: 4,
            indirect_sites: 9,
            indirect_targets: 11,
        });
        let key = cache_key(0x1234, &Config::c4());
        let text = serialize(key, &a).unwrap();
        let back = deserialize(key, &text).unwrap();
        assert_eq!(back.pruned_count, 17);
        assert_eq!(back.interproc, a.interproc);
        assert_eq!(back, a);
    }
}
