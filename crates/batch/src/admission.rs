//! Admission control — the bounded gates that keep a batch run or a
//! long-running server from buffering unbounded work.
//!
//! Two primitives, both blocking-by-choice and `Busy`-by-choice:
//!
//! - [`Ballast`] bounds the estimated **bytes** in flight. The pipelined
//!   scheduler acquires an estimate per binary before admitting it and
//!   releases it when the analysis retires; the serving layer acquires
//!   before even *reading* a request body off the socket, so a flood of
//!   large submissions cannot balloon resident memory.
//! - [`Gate`] bounds **concurrency**: a fixed number of running slots
//!   plus a bounded wait queue. When both are full, [`Gate::enter`]
//!   returns `None` immediately — the caller's cue to reply `Busy`
//!   instead of queueing without bound.
//!
//! Both always admit a lone caller: a single over-sized request still
//! processes rather than wedging forever.
//!
//! ```
//! use funseeker_batch::admission::Gate;
//!
//! let gate = Gate::new(1, 0); // one slot, no wait queue
//! let first = gate.enter().expect("slot free");
//! assert!(gate.enter().is_none(), "second caller must be told Busy");
//! drop(first);
//! assert!(gate.enter().is_some(), "slot freed on drop");
//! ```

use std::sync::{Condvar, Mutex};

/// Bounded admission on estimated in-flight bytes.
///
/// Tracks the estimated bytes currently admitted and blocks (or, via
/// [`Ballast::try_acquire`] / [`Ballast::acquire_bounded`], refuses)
/// acquisitions that would exceed the cap. Always admits when nothing is
/// in flight, so no single over-sized acquisition can wedge the caller.
#[derive(Debug)]
pub struct Ballast {
    cap: usize,
    /// (inflight, peak, waiters)
    state: Mutex<(usize, usize, usize)>,
    retired: Condvar,
}

impl Ballast {
    /// A ballast admitting up to `cap` estimated bytes in flight.
    pub fn new(cap: usize) -> Self {
        Ballast { cap, state: Mutex::new((0, 0, 0)), retired: Condvar::new() }
    }

    /// Admits `amount` bytes, blocking until the total in flight fits
    /// under the cap (or nothing else is in flight).
    pub fn acquire(&self, amount: usize) {
        let mut g = self.state.lock().unwrap();
        while g.0 > 0 && g.0.saturating_add(amount) > self.cap {
            g.2 += 1;
            g = self.retired.wait(g).unwrap();
            g.2 -= 1;
        }
        g.0 += amount;
        g.1 = g.1.max(g.0);
    }

    /// Admits `amount` bytes only if it fits right now (or nothing is in
    /// flight). Returns whether the acquisition happened.
    pub fn try_acquire(&self, amount: usize) -> bool {
        let mut g = self.state.lock().unwrap();
        if g.0 > 0 && g.0.saturating_add(amount) > self.cap {
            return false;
        }
        g.0 += amount;
        g.1 = g.1.max(g.0);
        true
    }

    /// Admits `amount` bytes, blocking only while fewer than
    /// `max_waiters` other callers are already blocked; otherwise
    /// returns `false` immediately — the backpressure signal a server
    /// turns into an explicit `Busy` reply instead of an unbounded
    /// queue of buffered requests.
    pub fn acquire_bounded(&self, amount: usize, max_waiters: usize) -> bool {
        let mut g = self.state.lock().unwrap();
        if g.0 > 0 && g.0.saturating_add(amount) > self.cap && g.2 >= max_waiters {
            return false;
        }
        while g.0 > 0 && g.0.saturating_add(amount) > self.cap {
            g.2 += 1;
            g = self.retired.wait(g).unwrap();
            g.2 -= 1;
        }
        g.0 += amount;
        g.1 = g.1.max(g.0);
        true
    }

    /// Returns `amount` bytes to the ballast, waking blocked acquirers.
    pub fn release(&self, amount: usize) {
        let mut g = self.state.lock().unwrap();
        g.0 -= amount;
        drop(g);
        self.retired.notify_all();
    }

    /// Estimated bytes currently in flight.
    pub fn inflight(&self) -> usize {
        self.state.lock().unwrap().0
    }

    /// High-water mark of the in-flight estimate.
    pub fn peak(&self) -> usize {
        self.state.lock().unwrap().1
    }

    /// Callers currently blocked in [`Ballast::acquire`] /
    /// [`Ballast::acquire_bounded`].
    pub fn waiters(&self) -> usize {
        self.state.lock().unwrap().2
    }
}

/// Bounded concurrency: `slots` concurrent holders plus at most
/// `max_queued` blocked waiters. [`Gate::enter`] returns `None` when
/// both are full — reply `Busy`, don't buffer.
#[derive(Debug)]
pub struct Gate {
    slots: usize,
    max_queued: usize,
    /// (running, queued)
    state: Mutex<(usize, usize)>,
    freed: Condvar,
}

/// RAII slot held by a successful [`Gate::enter`]; releases on drop.
#[derive(Debug)]
pub struct GatePass<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// A gate with `slots` concurrent slots (at least one is always
    /// granted) and a wait queue bounded at `max_queued`.
    pub fn new(slots: usize, max_queued: usize) -> Self {
        Gate { slots: slots.max(1), max_queued, state: Mutex::new((0, 0)), freed: Condvar::new() }
    }

    /// Acquires a slot, blocking in the bounded queue if necessary.
    /// Returns `None` — *without blocking* — when every slot is taken
    /// and the queue is full.
    pub fn enter(&self) -> Option<GatePass<'_>> {
        let mut g = self.state.lock().unwrap();
        if g.0 >= self.slots {
            if g.1 >= self.max_queued {
                return None;
            }
            g.1 += 1;
            while g.0 >= self.slots {
                g = self.freed.wait(g).unwrap();
            }
            g.1 -= 1;
        }
        g.0 += 1;
        Some(GatePass { gate: self })
    }

    /// Holders currently running (not queued).
    pub fn running(&self) -> usize {
        self.state.lock().unwrap().0
    }

    /// Callers currently blocked waiting for a slot.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().1
    }

    /// Total configured slots.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for GatePass<'_> {
    fn drop(&mut self) {
        let mut g = self.gate.state.lock().unwrap();
        g.0 -= 1;
        drop(g);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ballast_admits_lone_oversized_caller() {
        let b = Ballast::new(10);
        b.acquire(1_000_000);
        assert_eq!(b.inflight(), 1_000_000);
        assert!(!b.try_acquire(1), "full ballast refuses");
        b.release(1_000_000);
        assert!(b.try_acquire(1));
        assert_eq!(b.peak(), 1_000_000);
    }

    #[test]
    fn ballast_bounded_refuses_when_queue_full() {
        let b = Ballast::new(10);
        b.acquire(10);
        // No waiters allowed: immediate refusal instead of blocking.
        assert!(!b.acquire_bounded(5, 0));
        b.release(10);
        assert!(b.acquire_bounded(5, 0));
        b.release(5);
    }

    #[test]
    fn ballast_blocked_acquirers_wake_on_release() {
        let b = Ballast::new(100);
        b.acquire(100);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    b.acquire(25);
                    done.fetch_add(1, Ordering::SeqCst);
                    b.release(25);
                });
            }
            // Give the threads a moment to block, then free the space.
            while b.waiters() != 4 {
                std::thread::yield_now();
            }
            b.release(100);
        });
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert_eq!(b.inflight(), 0);
    }

    #[test]
    fn gate_grants_slots_then_queue_then_busy() {
        let gate = Gate::new(2, 1);
        let a = gate.enter().unwrap();
        let b = gate.enter().unwrap();
        assert_eq!(gate.running(), 2);
        // Slots full; the single queue seat is free, so a blocked enter
        // would succeed — prove it with a thread.
        let entered = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _pass = gate.enter().expect("queued caller gets the freed slot");
                entered.fetch_add(1, Ordering::SeqCst);
            });
            while gate.queued() != 1 {
                std::thread::yield_now();
            }
            // Queue now full too: immediate Busy.
            assert!(gate.enter().is_none());
            drop(a);
        });
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        drop(b);
        assert_eq!(gate.running(), 0);
    }

    #[test]
    fn gate_always_has_at_least_one_slot() {
        let gate = Gate::new(0, 0);
        assert_eq!(gate.slots(), 1);
        let pass = gate.enter().unwrap();
        assert!(gate.enter().is_none());
        drop(pass);
    }
}
