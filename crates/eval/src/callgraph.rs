//! Call-graph evaluation — the `experiments -- callgraph` subcommand.
//!
//! Scores the interprocedural layer against the corpus's emitted
//! call-edge ground truth: every `call rel32` / tail-`jmp` the
//! generators produced is recorded at link time
//! ([`funseeker_corpus::CallEdgeTruth`]), so recovered direct and tail
//! edges can be checked pair-by-pair as `(site, callee)` — a far
//! stricter metric than entry-set overlap. The same run times the graph
//! build (per-function CFGs plus the whole-binary call graph over the
//! already-prepared sweep) and reports its throughput, which lands as a
//! `callgraph` row in the committed `BENCH_sweep.json` trajectory so CI
//! can gate both the quality floor (direct-edge precision ≥ 0.95) and
//! throughput regressions.

use std::collections::BTreeSet;
use std::time::Instant;

use funseeker::{build_call_graph, build_cfgs, prepare, FunSeeker};
use funseeker_corpus::{BuildConfig, Dataset, DatasetParams};

use crate::metrics::Score;

/// Seed for the evaluation corpus — fixed so every run scores the same
/// binaries.
const SEED: u64 = 0xCA11;

/// Trajectory schema tag — entries append to `BENCH_sweep.json`.
const SCHEMA: &str = "funseeker-bench-sweep-v1";

/// The acceptance floor for direct call-edge precision.
pub const MIN_DIRECT_PRECISION: f64 = 0.95;

/// The scored and timed result of one evaluation run.
#[derive(Debug, Clone)]
pub struct CallGraphReport {
    /// Binaries evaluated.
    pub binaries: usize,
    /// `(site, callee)` confusion counts for direct call edges.
    pub direct: Score,
    /// `(site, callee)` confusion counts for tail-call edges.
    pub tail: Score,
    /// Tracked indirect call+jump sites across the corpus.
    pub indirect_sites: usize,
    /// `NOTRACK` sites (exempt from the CET constraint).
    pub notrack_sites: usize,
    /// ENDBR-marked entries — the CET-constrained indirect target pool.
    pub endbr_targets: usize,
    /// Basic blocks across all per-function CFGs.
    pub blocks: usize,
    /// Intra-procedural CFG edges across the corpus.
    pub cfg_edges: usize,
    /// Code bytes the graph build covered per repetition.
    pub bytes: usize,
    /// Timing repetitions (best is reported).
    pub reps: usize,
    /// Best-of-N wall time of the graph build, milliseconds.
    pub ms: f64,
    /// Sample standard deviation of the wall time, milliseconds.
    pub sd_ms: f64,
    /// Graph-build throughput over the corpus text, MiB per second.
    pub mb_per_s: f64,
    /// Execution environment of the run (pool width, host cores,
    /// kernel tier).
    pub host: crate::host::Host,
}

/// Scores a recovered pair-set against the ground-truth pair-set.
fn score_pairs(found: &BTreeSet<(u64, u64)>, truth: &BTreeSet<(u64, u64)>) -> Score {
    let tp = found.intersection(truth).count();
    Score { tp, fp: found.len() - tp, fn_: truth.len() - tp }
}

/// Runs the evaluation. `quick` shrinks the corpus and repetition count
/// for CI smoke use.
pub fn run(quick: bool) -> CallGraphReport {
    let mut params = DatasetParams::tiny();
    params.programs = if quick { (3, 2, 3) } else { (6, 4, 6) };
    params.configs = BuildConfig::grid();
    let reps = if quick { 3 } else { 7 };
    let ds = Dataset::generate(&params, SEED);

    let seeker = FunSeeker::new();
    let mut report = CallGraphReport {
        binaries: ds.len(),
        direct: Score::default(),
        tail: Score::default(),
        indirect_sites: 0,
        notrack_sites: 0,
        endbr_targets: 0,
        blocks: 0,
        cfg_edges: 0,
        bytes: 0,
        reps,
        ms: 0.0,
        sd_ms: 0.0,
        mb_per_s: 0.0,
        host: crate::host::host(),
    };

    // Prepare every binary once; both scoring and timing reuse the
    // parsed image + sweep (the graph build is what's being measured,
    // not the front end).
    let prepared: Vec<_> = ds
        .binaries
        .iter()
        .map(|bin| {
            let p = prepare(&bin.bytes).expect("corpus binary prepares");
            let entries: Vec<u64> =
                seeker.run_stages(&p.parsed, &p.index).functions.into_iter().collect();
            (bin, p, entries)
        })
        .collect();

    for (bin, p, entries) in &prepared {
        let graph = build_call_graph(&p.index, entries);
        report.direct += score_pairs(&graph.direct_edge_pairs(), &bin.truth.direct_call_edges());
        report.tail += score_pairs(&graph.tail_edge_pairs(), &bin.truth.tail_call_edges());
        report.indirect_sites += graph.indirect_call_sites.len() + graph.indirect_jump_sites.len();
        report.notrack_sites += graph.notrack_sites;
        report.endbr_targets += graph.indirect_targets.len();
        let cfgs = build_cfgs(&p.index, entries);
        report.blocks += cfgs.iter().map(|c| c.blocks.len()).sum::<usize>();
        report.cfg_edges += cfgs.iter().map(|c| c.edge_count()).sum::<usize>();
        report.bytes += (bin.truth.text_range.1 - bin.truth.text_range.0) as usize;
    }

    // Throughput: CFGs + call graph for the whole corpus, best of N.
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for (_, p, entries) in &prepared {
            let graph = build_call_graph(&p.index, entries);
            std::hint::black_box(graph.edges.len());
            let cfgs = build_cfgs(&p.index, entries);
            std::hint::black_box(cfgs.len());
        }
        samples.push(t.elapsed().as_secs_f64());
    }
    let (best, sd) = crate::variance::best_and_sd(&samples);
    report.ms = best * 1e3;
    report.sd_ms = sd * 1e3;
    report.mb_per_s = report.bytes as f64 / (1024.0 * 1024.0) / best;
    report
}

impl CallGraphReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} binaries, {} blocks, {} CFG edges, best of {} runs\n\n",
            self.binaries, self.blocks, self.cfg_edges, self.reps
        ));
        s.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>6} {:>10} {:>8} {:>8}\n",
            "edges", "tp", "fp", "fn", "precision", "recall", "f1"
        ));
        for (name, score) in [("direct", self.direct), ("tail", self.tail)] {
            s.push_str(&format!(
                "{:<8} {:>6} {:>6} {:>6} {:>9.1}% {:>7.1}% {:>7.1}%\n",
                name,
                score.tp,
                score.fp,
                score.fn_,
                score.precision() * 100.0,
                score.recall() * 100.0,
                score.f1() * 100.0,
            ));
        }
        s.push_str(&format!(
            "\nindirect: {} tracked sites, {} notrack; {} CET-constrained targets\n",
            self.indirect_sites, self.notrack_sites, self.endbr_targets
        ));
        s.push_str(&format!(
            "graph build: {:.2} ms ±{:.2} ({:.1} MB/s over {:.2} MiB of text)\n",
            self.ms,
            self.sd_ms,
            self.mb_per_s,
            self.bytes as f64 / (1024.0 * 1024.0),
        ));
        s
    }

    /// The trajectory entry for this run — a `callgraph` row in the
    /// `BENCH_sweep.json` shape.
    pub fn json_entry(&self, label: &str) -> String {
        format!(
            "    {{\"label\": {:?}, \"bytes\": {}, \"reps\": {}, {}, \"rows\": [\n      \
             {{\"config\": \"callgraph\", \"ms\": {:.3}, \"sd_ms\": {:.3}, \"mb_per_s\": {:.1}, \
             \"direct_precision\": {:.4}, \"direct_recall\": {:.4}, \"tail_precision\": {:.4}, \
             \"tail_recall\": {:.4}, \"blocks\": {}, \"cfg_edges\": {}}}\n    ]}}",
            label,
            self.bytes,
            self.reps,
            self.host.json_fields(),
            self.ms,
            self.sd_ms,
            self.mb_per_s,
            self.direct.precision(),
            self.direct.recall(),
            self.tail.precision(),
            self.tail.recall(),
            self.blocks,
            self.cfg_edges,
        )
    }

    /// Appends this run as a new entry to an existing `BENCH_sweep.json`
    /// document (or starts a fresh one).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        crate::trajectory::append_entry(existing, SCHEMA, self.json_entry(label))
    }
}

/// CI gate: the fresh run must clear the direct-precision floor
/// ([`MIN_DIRECT_PRECISION`]) and its graph-build throughput must stay
/// within `min_ratio` of the newest committed `callgraph` entry
/// (noise-tolerance-widened, as in [`crate::perf::check_against`]).
pub fn check_against(
    committed: &str,
    fresh: &CallGraphReport,
    min_ratio: f64,
) -> Result<String, String> {
    if fresh.direct.precision() < MIN_DIRECT_PRECISION {
        return Err(format!(
            "direct call-edge precision {:.2}% below the {:.0}% floor",
            fresh.direct.precision() * 100.0,
            MIN_DIRECT_PRECISION * 100.0,
        ));
    }
    let Some(baseline) = crate::trajectory::last_value(committed, "callgraph", "mb_per_s") else {
        return Err("committed trajectory has no callgraph entry".into());
    };
    let committed_cores = crate::trajectory::last_row_meta(committed, "callgraph", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "direct precision {:.1}% passes; throughput skipped: committed callgraph entry was \
             measured with {} cores, this run uses {} — not comparable",
            fresh.direct.precision() * 100.0,
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = crate::trajectory::last_value(committed, "callgraph", "sd_ms")
        .zip(crate::trajectory::last_value(committed, "callgraph", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if fresh.ms > 0.0 { fresh.sd_ms / fresh.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = fresh.mb_per_s / baseline;
    let msg = format!(
        "direct precision {:.1}%; graph build {:.1} MB/s vs committed {:.1} MB/s \
         ({:.0}% of baseline, threshold {:.0}% incl. {:.0}% noise tolerance)",
        fresh.direct.precision() * 100.0,
        fresh.mb_per_s,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> CallGraphReport {
        CallGraphReport {
            binaries: 10,
            direct: Score { tp: 98, fp: 0, fn_: 0 },
            tail: Score { tp: 7, fp: 0, fn_: 3 },
            indirect_sites: 5,
            notrack_sites: 2,
            endbr_targets: 40,
            blocks: 300,
            cfg_edges: 500,
            bytes: 1 << 20,
            reps: 3,
            ms: 4.0,
            sd_ms: 0.1,
            mb_per_s: 250.0,
            host: crate::host::host(),
        }
    }

    #[test]
    fn json_entry_appends_to_sweep_trajectory() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains("funseeker-bench-sweep-v1"));
        assert_eq!(crate::trajectory::last_value(&doc, "callgraph", "mb_per_s"), Some(250.0));
        assert_eq!(crate::trajectory::last_value(&doc, "callgraph", "direct_precision"), Some(1.0));
        // Appending alongside perf entries keeps both readable.
        let doc2 = r.append_to_document(Some(&doc), "post");
        assert_eq!(crate::trajectory::extract_entries(&doc2).len(), 2);
    }

    #[test]
    fn gate_enforces_precision_floor_and_throughput() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(check_against(&doc, &r, 0.7).is_ok());
        // Throughput regression fails.
        let mut slow = fake_report();
        slow.mb_per_s = 100.0;
        assert!(check_against(&doc, &slow, 0.7).is_err());
        // Precision below the floor fails even at full throughput.
        let mut sloppy = fake_report();
        sloppy.direct = Score { tp: 90, fp: 10, fn_: 0 };
        let err = check_against(&doc, &sloppy, 0.7).unwrap_err();
        assert!(err.contains("precision"), "{err}");
    }

    #[test]
    fn quick_run_meets_the_acceptance_floor() {
        let r = run(true);
        assert!(r.binaries > 0);
        assert!(r.direct.tp > 0, "corpus must contain direct calls");
        assert!(
            r.direct.precision() >= MIN_DIRECT_PRECISION,
            "direct precision {:.3} below floor",
            r.direct.precision()
        );
        assert!(r.direct.recall() > 0.9, "direct recall {:.3}", r.direct.recall());
        assert!(r.tail.precision() >= 0.9, "tail precision {:.3}", r.tail.precision());
        assert!(r.blocks > 0 && r.cfg_edges > 0);
        assert!(r.ms > 0.0 && r.mb_per_s > 0.0);
        assert!(!r.render().is_empty());
    }
}
