//! Run-to-run variance helpers shared by the `perf` and `batch`
//! measurements.
//!
//! Each benchmark row reports the **best-of-N** wall time (the least
//! noisy point estimate on a busy machine) *plus* the sample standard
//! deviation over the N repetitions, and the `--check` regression gates
//! widen their threshold by the observed noise so a run on a loaded CI
//! box doesn't fail on jitter while a real regression still does.

/// Minimum and sample standard deviation of a set of wall-time samples
/// (seconds in, seconds out). One sample has zero spread by definition.
pub fn best_and_sd(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "no samples");
    let best = samples.iter().copied().fold(f64::MAX, f64::min);
    if samples.len() < 2 {
        return (best, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (samples.len() - 1) as f64;
    (best, var.sqrt())
}

/// Extra regression-gate allowance from measurement noise: three combined
/// standard deviations of the two runs being compared, as a fraction of
/// their point estimates, capped so a wildly noisy run can't excuse an
/// arbitrary slowdown.
///
/// `rel_committed` / `rel_fresh` are relative standard deviations
/// (`sd / value`); pass `0.0` when a side recorded none (e.g. a
/// trajectory entry written before variance tracking existed).
pub fn noise_tolerance(rel_committed: f64, rel_fresh: f64) -> f64 {
    let combined = (rel_committed * rel_committed + rel_fresh * rel_fresh).sqrt();
    (3.0 * combined).clamp(0.0, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_and_sd_basics() {
        let (best, sd) = best_and_sd(&[3.0, 1.0, 2.0]);
        assert_eq!(best, 1.0);
        assert!((sd - 1.0).abs() < 1e-12);
        let (best, sd) = best_and_sd(&[5.0]);
        assert_eq!((best, sd), (5.0, 0.0));
        let (_, sd) = best_and_sd(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(sd, 0.0);
    }

    #[test]
    fn tolerance_scales_with_noise_and_caps() {
        assert_eq!(noise_tolerance(0.0, 0.0), 0.0);
        let t = noise_tolerance(0.03, 0.04);
        assert!((t - 0.15).abs() < 1e-12, "3 * sqrt(9+16)% = 15%, got {t}");
        assert_eq!(noise_tolerance(0.5, 0.5), 0.25, "cap engages");
        assert!(noise_tolerance(0.0, 0.01) > 0.0);
    }
}
