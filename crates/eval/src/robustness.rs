//! Robustness campaign: the mutation fuzz harness as a reportable
//! experiment.
//!
//! Runs the [`funseeker_corpus::Mutator`] over corpus binaries, one row
//! per corruption class, and tallies how `FunSeeker::identify` answered:
//! `Ok` with no warnings, `Ok` degraded (diagnostics recorded), or a
//! typed error. The invariant the row totals certify is the hostile-input
//! contract — every mutant got exactly one of those three answers, and
//! none panicked or hung.
//!
//! ```text
//! cargo run --release -p funseeker-eval --bin experiments -- robustness
//! ```

use std::time::Instant;

use funseeker::FunSeeker;
use funseeker_corpus::{Corruption, Dataset, Mutator};

use crate::report::Table;

/// Per-corruption-class tallies from one campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Mutants of this class analyzed.
    pub cases: usize,
    /// `Ok` with an empty diagnostics sink.
    pub ok_clean: usize,
    /// `Ok` with at least one degradation warning.
    pub ok_degraded: usize,
    /// Typed `Err` (rejected input).
    pub rejected: usize,
    /// Total degradation warnings across this class's mutants.
    pub warnings: usize,
    /// Slowest single `identify` call, in seconds.
    pub worst_secs: f64,
}

/// Campaign outcome: per-class stats in [`Corruption::ALL`] order.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// One entry per corruption class.
    pub per_class: Vec<(Corruption, ClassStats)>,
}

impl Campaign {
    /// Total mutants analyzed.
    pub fn total_cases(&self) -> usize {
        self.per_class.iter().map(|(_, s)| s.cases).sum()
    }
}

/// Runs the campaign: `mutants_per_class` mutants of every class for
/// each of the dataset's first `max_binaries` binaries.
pub fn campaign(
    ds: &Dataset,
    seed: u64,
    max_binaries: usize,
    mutants_per_class: usize,
) -> Campaign {
    let seeker = FunSeeker::new();
    let mut mutator = Mutator::new(seed);
    let mut out = Campaign {
        per_class: Corruption::ALL.iter().map(|&c| (c, ClassStats::default())).collect(),
    };
    for bin in ds.binaries.iter().take(max_binaries) {
        for (class, stats) in &mut out.per_class {
            for _ in 0..mutants_per_class {
                let mutant = mutator.apply(&bin.bytes, *class);
                let t = Instant::now();
                let outcome = seeker.identify(&mutant);
                stats.worst_secs = stats.worst_secs.max(t.elapsed().as_secs_f64());
                stats.cases += 1;
                match outcome {
                    Ok(a) if a.diagnostics.is_empty() => stats.ok_clean += 1,
                    Ok(a) => {
                        stats.ok_degraded += 1;
                        stats.warnings += a.diagnostics.total();
                    }
                    Err(_) => stats.rejected += 1,
                }
            }
        }
    }
    out
}

/// Runs a default-size campaign and renders the report table.
pub fn run(ds: &Dataset, seed: u64) -> Table {
    let c = campaign(ds, seed, 24, 8);
    let mut t = Table::new([
        "corruption",
        "cases",
        "ok (clean)",
        "ok (degraded)",
        "rejected (typed)",
        "warnings",
        "worst case (ms)",
    ]);
    for (class, s) in &c.per_class {
        t.row([
            class.label().to_owned(),
            s.cases.to_string(),
            s.ok_clean.to_string(),
            s.ok_degraded.to_string(),
            s.rejected.to_string(),
            s.warnings.to_string(),
            format!("{:.2}", s.worst_secs * 1000.0),
        ]);
    }
    let totals: ClassStats = c.per_class.iter().fold(ClassStats::default(), |mut acc, (_, s)| {
        acc.cases += s.cases;
        acc.ok_clean += s.ok_clean;
        acc.ok_degraded += s.ok_degraded;
        acc.rejected += s.rejected;
        acc.warnings += s.warnings;
        acc.worst_secs = acc.worst_secs.max(s.worst_secs);
        acc
    });
    t.row([
        "total".to_owned(),
        totals.cases.to_string(),
        totals.ok_clean.to_string(),
        totals.ok_degraded.to_string(),
        totals.rejected.to_string(),
        totals.warnings.to_string(),
        format!("{:.2}", totals.worst_secs * 1000.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::DatasetParams;

    #[test]
    fn every_mutant_gets_exactly_one_answer() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 7);
        let c = campaign(&ds, 7, 2, 2);
        assert_eq!(c.per_class.len(), Corruption::ALL.len());
        for (class, s) in &c.per_class {
            assert_eq!(s.cases, 2 * 2, "{class:?}");
            assert_eq!(s.ok_clean + s.ok_degraded + s.rejected, s.cases, "{class:?}");
        }
        assert!(c.total_cases() > 0);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 7);
        let a = campaign(&ds, 9, 1, 2);
        let b = campaign(&ds, 9, 1, 2);
        for ((_, x), (_, y)) in a.per_class.iter().zip(&b.per_class) {
            assert_eq!(
                (x.ok_clean, x.ok_degraded, x.rejected),
                (y.ok_clean, y.ok_degraded, y.rejected)
            );
        }
    }
}
