//! Evaluation harness reproducing the paper's tables and figures.
//!
//! One module per experiment:
//!
//! * [`table1`] — end-branch location distribution (Table I),
//! * [`fig3`] — syntactic-property Venn over all functions (Figure 3),
//! * [`table2`] — configuration ablation ①–④ (Table II),
//! * [`table3`] — tool comparison incl. timing (Table III),
//! * [`failures`] — FN/FP breakdown (§V-C),
//! * [`perf`] — sweep throughput + per-stage counters (`BENCH_sweep.json`),
//! * [`batch`] — batch-engine throughput: flat/nocache/cold/warm/disk
//!   drivers over a duplicated corpus (`BENCH_batch.json`),
//! * [`callgraph`] — call-edge precision/recall vs corpus ground truth
//!   plus graph-build throughput (extension),
//! * [`serve`] — daemon load test: a concurrent client fleet against
//!   the serving layer, duplicate-heavy vs distinct-heavy traffic
//!   (`BENCH_batch.json` rows `serve_dup`/`serve_distinct`),
//! * [`multicore`] — multi-core scaling ladder: morsel-sharded sweep,
//!   corpus aggregate, and distinct-heavy serving vs worker-pool width
//!   (entries in both `BENCH_sweep.json` and `BENCH_batch.json`),
//! * [`manual_endbr`] — the §VI `-mmanual-endbr` ablation,
//! * [`robustness`] — hostile-input mutation campaign (extension).
//!
//! Run everything with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p funseeker-eval --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod arm;
pub mod batch;
pub mod by_opt;
pub mod callgraph;
pub mod failures;
pub mod fig3;
pub mod groundtruth;
pub mod host;
pub mod io;
pub mod manual_endbr;
pub mod metrics;
pub mod multicore;
pub mod perf;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trajectory;
pub mod variance;

pub use metrics::Score;
pub use report::Table;
