//! Markdown table rendering for experiment outputs.

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn render_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders GitHub-flavored markdown with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a ratio as a percentage with three decimals (the paper's
/// table style).
pub fn pct(v: f64) -> String {
    format!("{:.3}", v * 100.0)
}

/// Formats seconds with three decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["Tool", "Prec.", "Rec."]);
        t.row(["FunSeeker", "99.407", "99.828"]);
        t.row(["IDA", "92.3", "76.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Tool"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("FunSeeker"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "with,comma"]);
        t.row(["with\"quote", "x"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.99407), "99.407");
        assert_eq!(secs(1.1814), "1.181");
    }
}
