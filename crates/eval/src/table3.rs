//! Table III — FunSeeker vs the state-of-the-art tools: correctness
//! (precision/recall per architecture × suite) and per-binary analysis
//! time for FunSeeker and FETCH (§V-C, §V-D).

use std::collections::BTreeMap;
use std::time::Instant;

use funseeker_baselines::{FetchLike, FunSeekerTool, FunctionIdentifier, GhidraLike, IdaLike};
use funseeker_corpus::{Arch, Dataset, Suite};

use crate::metrics::Score;
use crate::report::{pct, secs, Table};
use crate::runner::par_map;

/// Tools in the paper's column order.
pub const TOOLS: [&str; 4] = ["FunSeeker", "IDA Pro", "Ghidra", "FETCH"];

/// One tool's aggregate in one (arch, suite) group.
#[derive(Debug, Clone, Copy, Default)]
pub struct ToolCell {
    /// Confusion counts.
    pub score: Score,
    /// Total analysis seconds.
    pub seconds: f64,
    /// Binaries analyzed.
    pub binaries: usize,
}

impl ToolCell {
    /// Mean seconds per binary.
    pub fn mean_seconds(&self) -> f64 {
        self.seconds / self.binaries.max(1) as f64
    }
}

/// The Table III grid.
#[derive(Debug, Clone, Default)]
pub struct Table3 {
    /// `(arch, suite) → per-tool cells` (same order as [`TOOLS`]).
    pub groups: BTreeMap<(&'static str, &'static str), [ToolCell; 4]>,
    /// Dataset-wide totals per tool.
    pub total: [ToolCell; 4],
}

/// Runs all four tools over the dataset.
pub fn run(ds: &Dataset) -> Table3 {
    let per_bin = par_map(&ds.binaries, |bin| {
        let truth = bin.truth.eval_entries();
        let tools: [Box<dyn FunctionIdentifier>; 4] = [
            Box::new(FunSeekerTool::new()),
            Box::new(IdaLike),
            Box::new(GhidraLike),
            Box::new(FetchLike),
        ];
        // PARSE + DISASSEMBLE run once per binary; every tool consumes
        // the shared index. Each tool's reported time still includes the
        // shared preparation cost so the per-tool totals stay comparable
        // to the paper's end-to-end measurements.
        let t0 = Instant::now();
        let prepared = funseeker::prepare(&bin.bytes).expect("corpus binary parses");
        let prep_seconds = t0.elapsed().as_secs_f64();
        let mut cells = [ToolCell::default(); 4];
        for (i, tool) in tools.iter().enumerate() {
            let t0 = Instant::now();
            let found = tool.identify_prepared(&prepared).expect("corpus binary analyzable");
            let dt = prep_seconds + t0.elapsed().as_secs_f64();
            cells[i] =
                ToolCell { score: Score::from_funcset(&found, &truth), seconds: dt, binaries: 1 };
        }
        (bin.config.arch, bin.suite, cells)
    });

    let mut out = Table3::default();
    for (arch, suite, cells) in per_bin {
        let group = out.groups.entry((arch.label(), suite.label())).or_default();
        for i in 0..4 {
            group[i].score += cells[i].score;
            group[i].seconds += cells[i].seconds;
            group[i].binaries += cells[i].binaries;
            out.total[i].score += cells[i].score;
            out.total[i].seconds += cells[i].seconds;
            out.total[i].binaries += cells[i].binaries;
        }
    }
    out
}

impl Table3 {
    /// Builds the result table (time shown for FunSeeker and FETCH only,
    /// as in the paper).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "Arch",
            "Suite",
            "FunSeeker P",
            "FunSeeker R",
            "FunSeeker t(ms)",
            "IDA P",
            "IDA R",
            "Ghidra P",
            "Ghidra R",
            "FETCH P",
            "FETCH R",
            "FETCH t(ms)",
        ]);
        for arch in [Arch::X86, Arch::X64] {
            for suite in Suite::ALL {
                let Some(g) = self.groups.get(&(arch.label(), suite.label())) else { continue };
                t.row([
                    arch.label().to_owned(),
                    suite.label().to_owned(),
                    pct(g[0].score.precision()),
                    pct(g[0].score.recall()),
                    secs(g[0].mean_seconds() * 1000.0),
                    pct(g[1].score.precision()),
                    pct(g[1].score.recall()),
                    pct(g[2].score.precision()),
                    pct(g[2].score.recall()),
                    pct(g[3].score.precision()),
                    pct(g[3].score.recall()),
                    secs(g[3].mean_seconds() * 1000.0),
                ]);
            }
        }
        let g = &self.total;
        t.row([
            "Total".to_owned(),
            String::new(),
            pct(g[0].score.precision()),
            pct(g[0].score.recall()),
            secs(g[0].mean_seconds() * 1000.0),
            pct(g[1].score.precision()),
            pct(g[1].score.recall()),
            pct(g[2].score.precision()),
            pct(g[2].score.recall()),
            pct(g[3].score.precision()),
            pct(g[3].score.recall()),
            secs(g[3].mean_seconds() * 1000.0),
        ]);
        t
    }

    /// Mean-time ratio FETCH / FunSeeker (the §V-D headline).
    pub fn speedup(&self) -> f64 {
        self.total[3].mean_seconds() / self.total[0].mean_seconds().max(1e-12)
    }

    /// Renders the paper's Table III layout as markdown.
    pub fn render(&self) -> String {
        let mut out = self.to_table().render();
        out.push_str(&format!("\nFunSeeker vs FETCH mean speedup: {:.1}x\n", self.speedup()));
        out
    }

    /// Renders as CSV.
    pub fn render_csv(&self) -> String {
        self.to_table().render_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{BuildConfig, DatasetParams};

    #[test]
    fn funseeker_wins_on_both_metrics() {
        let mut params = DatasetParams::tiny();
        params.programs = (3, 2, 3);
        params.configs = BuildConfig::grid();
        let ds = Dataset::generate(&params, 55);
        let t3 = run(&ds);

        let fun = t3.total[0].score;
        for (i, name) in TOOLS.iter().enumerate().skip(1) {
            let s = t3.total[i].score;
            assert!(
                fun.precision() >= s.precision() - 1e-9,
                "FunSeeker precision {:.4} < {name} {:.4}",
                fun.precision(),
                s.precision()
            );
            assert!(
                fun.recall() > s.recall(),
                "FunSeeker recall {:.4} ≤ {name} {:.4}",
                fun.recall(),
                s.recall()
            );
        }
        assert!(fun.precision() > 0.97);
        assert!(fun.recall() > 0.99);
    }

    #[test]
    fn x86_collapse_for_eh_based_tools() {
        let mut params = DatasetParams::tiny();
        params.programs = (3, 2, 3);
        params.configs = BuildConfig::grid();
        let ds = Dataset::generate(&params, 56);
        let t3 = run(&ds);
        // FETCH on x86: the Clang half has no FDEs, so recall drops far
        // below its x64 figures (paper: ~50% vs ~99%).
        for suite in ["Coreutils", "Binutils"] {
            let x86 = t3.groups[&("x86", suite)][3].score.recall();
            let x64 = t3.groups[&("x64", suite)][3].score.recall();
            assert!(
                x86 < x64 - 0.2,
                "{suite}: FETCH x86 recall {x86:.3} not clearly below x64 {x64:.3}"
            );
        }
        // IDA has the lowest total recall (paper: 76.3%).
        let recalls: Vec<f64> = (0..4).map(|i| t3.total[i].score.recall()).collect();
        let ida = recalls[1];
        assert!(recalls.iter().all(|&r| ida <= r + 1e-9), "IDA should trail: {recalls:?}");
        let rendered = t3.render();
        assert!(rendered.contains("speedup"));
    }
}
