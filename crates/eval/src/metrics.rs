//! Precision / recall accounting.

use std::collections::BTreeSet;
use std::ops::AddAssign;

/// Confusion counts for one or more binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Score {
    /// Identified entries that are real function entries.
    pub tp: usize,
    /// Identified entries that are not.
    pub fp: usize,
    /// Real entries the tool missed.
    pub fn_: usize,
}

impl Score {
    /// Scores a found-set against ground truth.
    pub fn from_sets(found: &BTreeSet<u64>, truth: &BTreeSet<u64>) -> Score {
        let tp = found.intersection(truth).count();
        Score { tp, fp: found.len() - tp, fn_: truth.len() - tp }
    }

    /// Scores a packed [`funseeker::FuncSet`] (what every analyzer and
    /// baseline now reports) against ground truth.
    pub fn from_funcset(found: &funseeker::FuncSet, truth: &BTreeSet<u64>) -> Score {
        let tp = found.iter().filter(|a| truth.contains(a)).count();
        Score { tp, fp: found.len() - tp, fn_: truth.len() - tp }
    }

    /// Precision in `[0, 1]` (1 when nothing was reported).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall in `[0, 1]` (1 when there was nothing to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl AddAssign for Score {
    fn add_assign(&mut self, rhs: Score) {
        self.tp += rhs.tp;
        self.fp += rhs.fp;
        self.fn_ += rhs.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u64]) -> BTreeSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn scoring_against_truth() {
        let found = set(&[1, 2, 3, 4]);
        let truth = set(&[2, 3, 4, 5, 6]);
        let s = Score::from_sets(&found, &truth);
        assert_eq!(s, Score { tp: 3, fp: 1, fn_: 2 });
        assert!((s.precision() - 0.75).abs() < 1e-12);
        assert!((s.recall() - 0.6).abs() < 1e-12);
        assert!((s.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = BTreeSet::new();
        let s = Score::from_sets(&empty, &empty);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        let s = Score::from_sets(&set(&[1]), &empty);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 1.0);
        let s = Score::from_sets(&empty, &set(&[1]));
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut total = Score::default();
        total += Score { tp: 5, fp: 1, fn_: 0 };
        total += Score { tp: 10, fp: 0, fn_: 2 };
        assert_eq!(total, Score { tp: 15, fp: 1, fn_: 2 });
    }
}
