//! Parallel evaluation over a dataset.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use funseeker_corpus::CorpusBinary;

/// Maps `f` over the binaries in parallel, preserving order.
///
/// Workers steal one binary at a time from a shared atomic cursor, so a
/// single oversized binary occupies one worker while the rest drain the
/// remainder — unlike fixed chunking, where the chunk holding the big
/// binary would serialize everything behind it.
pub fn par_map<T, F>(bins: &[CorpusBinary], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&CorpusBinary) -> T + Sync,
{
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(bins.len());
    if workers <= 1 {
        return bins.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(bins.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Batch locally and merge once per worker: the lock is
                // touched `workers` times, not `bins.len()` times.
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(bin) = bins.get(i) else { break };
                    local.push((i, f(bin)));
                }
                done.lock().expect("evaluation worker panicked").extend(local);
            });
        }
    });

    let mut indexed = done.into_inner().expect("evaluation worker panicked");
    assert_eq!(indexed.len(), bins.len());
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{Dataset, DatasetParams};

    #[test]
    fn preserves_order_and_covers_all() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 5);
        let names = par_map(&ds.binaries, |b| (b.program.clone(), b.config.label()));
        assert_eq!(names.len(), ds.binaries.len());
        for (got, bin) in names.iter().zip(&ds.binaries) {
            assert_eq!(got.0, bin.program);
            assert_eq!(got.1, bin.config.label());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = par_map(&[], |_| unreachable!("no binaries to visit"));
        let _: Vec<()> = out;
    }
}
