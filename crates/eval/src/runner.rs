//! Parallel evaluation over a dataset.

use funseeker_corpus::CorpusBinary;

/// Maps `f` over the binaries in parallel, preserving order.
///
/// The per-binary work (parse + sweep + set algebra, possibly × several
/// tools) dominates, so simple chunking over `available_parallelism`
/// workers is enough.
pub fn par_map<T, F>(bins: &[CorpusBinary], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&CorpusBinary) -> T + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    if workers <= 1 || bins.len() <= 1 {
        return bins.iter().map(f).collect();
    }
    let chunk_size = bins.len().div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = bins
            .chunks(chunk_size)
            .map(|chunk| s.spawn(|_| chunk.iter().map(&f).collect::<Vec<T>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("evaluation worker panicked"));
        }
    })
    .expect("crossbeam scope");
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{Dataset, DatasetParams};

    #[test]
    fn preserves_order_and_covers_all() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 5);
        let names = par_map(&ds.binaries, |b| (b.program.clone(), b.config.label()));
        assert_eq!(names.len(), ds.binaries.len());
        for (got, bin) in names.iter().zip(&ds.binaries) {
            assert_eq!(got.0, bin.program);
            assert_eq!(got.1, bin.config.label());
        }
    }
}
