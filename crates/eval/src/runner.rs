//! Parallel evaluation over a dataset.

use funseeker_corpus::CorpusBinary;

/// Maps `f` over the binaries in parallel, preserving order.
///
/// One task per binary on the persistent [`funseeker_pool`] worker pool
/// (shared with the sharded sweep, so the whole pipeline reuses one set
/// of threads instead of spawning per call). Workers take one binary at
/// a time from the shared queue, so a single oversized binary occupies
/// one worker while the rest drain the remainder — unlike fixed
/// chunking, where the chunk holding the big binary would serialize
/// everything behind it. Nested parallelism (each binary's own sharded
/// sweep) is fine: the pool's submitters help execute queued tasks while
/// waiting.
pub fn par_map<T, F>(bins: &[CorpusBinary], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&CorpusBinary) -> T + Sync,
{
    let f = &f;
    funseeker_pool::global().run(bins.iter().map(|bin| move || f(bin)).collect())
}

/// [`par_map`] over arbitrary items, additionally reporting each item's
/// wall time.
///
/// The per-item timings let a report tell scheduling problems apart
/// from slow work: a flat driver whose largest item dominates the batch
/// shows one long timing and many idle-tail ones, which is exactly the
/// signature the pipelined batch engine removes. Shared by
/// `experiments -- perf` (parallel `prepare` row) and the batch report
/// (`flat` baseline row).
pub fn par_map_timed<I, T, F>(items: &[I], f: F) -> Vec<(T, std::time::Duration)>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let f = &f;
    funseeker_pool::global().run(
        items
            .iter()
            .map(|item| {
                move || {
                    let t = std::time::Instant::now();
                    let out = f(item);
                    (out, t.elapsed())
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{Dataset, DatasetParams};

    #[test]
    fn preserves_order_and_covers_all() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 5);
        let names = par_map(&ds.binaries, |b| (b.program.clone(), b.config.label()));
        assert_eq!(names.len(), ds.binaries.len());
        for (got, bin) in names.iter().zip(&ds.binaries) {
            assert_eq!(got.0, bin.program);
            assert_eq!(got.1, bin.config.label());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = par_map(&[], |_| unreachable!("no binaries to visit"));
        let _: Vec<()> = out;
    }

    #[test]
    fn timed_variant_reports_order_and_durations() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_timed(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        for (i, (v, d)) in out.iter().enumerate() {
            assert_eq!(*v, items[i] * 2);
            assert!(d.as_secs() < 60, "per-item timing is wall time of the item alone");
        }
    }
}
