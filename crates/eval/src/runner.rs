//! Parallel evaluation over a dataset.

use funseeker_corpus::CorpusBinary;

/// Maps `f` over the binaries in parallel, preserving order.
///
/// One task per binary on the persistent [`funseeker_pool`] worker pool
/// (shared with the sharded sweep, so the whole pipeline reuses one set
/// of threads instead of spawning per call). Workers take one binary at
/// a time from the shared queue, so a single oversized binary occupies
/// one worker while the rest drain the remainder — unlike fixed
/// chunking, where the chunk holding the big binary would serialize
/// everything behind it. Nested parallelism (each binary's own sharded
/// sweep) is fine: the pool's submitters help execute queued tasks while
/// waiting.
pub fn par_map<T, F>(bins: &[CorpusBinary], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&CorpusBinary) -> T + Sync,
{
    let f = &f;
    funseeker_pool::global().run(bins.iter().map(|bin| move || f(bin)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{Dataset, DatasetParams};

    #[test]
    fn preserves_order_and_covers_all() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 5);
        let names = par_map(&ds.binaries, |b| (b.program.clone(), b.config.label()));
        assert_eq!(names.len(), ds.binaries.len());
        for (got, bin) in names.iter().zip(&ds.binaries) {
            assert_eq!(got.0, bin.program);
            assert_eq!(got.1, bin.config.label());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = par_map(&[], |_| unreachable!("no binaries to visit"));
        let _: Vec<()> = out;
    }
}
