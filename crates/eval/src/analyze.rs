//! Shared-plan analysis measurement — the `experiments -- analyze`
//! subcommand.
//!
//! Measures the back end in isolation: every binary of a distinct-heavy
//! corpus is parsed and swept once (untimed), then the four Table II
//! configurations are analyzed per binary through three drivers:
//!
//! | row | what it measures |
//! |---|---|
//! | `analyze_naive4` | the unfused pipeline: four full `run_stages_with` runs per binary over a shared scratch arena |
//! | `analyze_plan4` | one [`AnalysisPlan`] rebuild per binary, each configuration derived by set algebra |
//! | `analyze_cold` | the full batch engine, fresh cache, over the same distinct corpus (parse + sweep included) |
//!
//! Before anything is timed, every plan-derived analysis is asserted
//! **bit-identical** to an independent per-config `run_stages_with` on
//! a fresh scratch — the measurement refuses to report numbers for a
//! derivation that changed the output.
//!
//! Each row carries the core analyzer's per-stage counters
//! ([`StageStats`]): FILTERENDBR, SELECTTAILCALL, candidate-set
//! algebra, and interprocedural nanoseconds. Results append to the
//! `BENCH_batch.json` trajectory; `--check` gates CI on the newest
//! committed `analyze_plan4` row and fails outright when the plan path
//! loses to the unfused pipeline.

use std::time::Instant;

use funseeker::{prepare, AnalysisPlan, Config, FunSeeker, Prepared, Scratch, StageStats};
use funseeker_batch::{BatchOptions, ResultCache};

use crate::trajectory;

/// One measured driver.
#[derive(Debug, Clone)]
pub struct AnalyzeRow {
    /// Driver name (`analyze_naive4`, `analyze_plan4`, `analyze_cold`).
    pub label: String,
    /// Best-of-N wall time in milliseconds for the whole corpus.
    pub ms: f64,
    /// Sample standard deviation over the reps, in milliseconds.
    pub sd_ms: f64,
    /// Corpus binaries analyzed per second (each under all four
    /// Table II configurations).
    pub bins_per_s: f64,
    /// Core-analyzer per-stage counters from the measured run.
    pub stage: StageStats,
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Distinct binaries analyzed.
    pub binaries: usize,
    /// Configurations analyzed per binary.
    pub configs: usize,
    /// Repetitions per row (the minimum is reported).
    pub reps: usize,
    /// (binary, configuration) pairs verified bit-identical between the
    /// plan derivation and the unfused pipeline before timing started.
    pub verified: usize,
    /// Execution environment of the run.
    pub host: crate::host::Host,
    /// Measured drivers.
    pub rows: Vec<AnalyzeRow>,
}

/// Runs the measurement. `quick` shrinks the corpus and repetition
/// count for CI smoke use.
pub fn run(quick: bool) -> AnalyzeReport {
    let (mut images, distinct) = crate::batch::corpus(quick);
    images.truncate(distinct); // distinct-heavy: no duplicates, no dedup wins
    let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();
    let reps = if quick { 3 } else { 5 };

    // Front end once, untimed: these rows isolate the analyze stage.
    let prepared: Vec<Prepared<'_>> =
        images.iter().map(|b| prepare(b).expect("benchmark corpus binary prepares")).collect();

    // ---- The contract, before any timing: every plan-derived analysis
    // is bit-identical to an independent staged run on a fresh scratch.
    let mut plan = AnalysisPlan::new();
    let mut scratch = Scratch::new();
    let mut verified = 0usize;
    for p in &prepared {
        plan.rebuild(&p.parsed, &p.index, &mut scratch);
        for cfg in &configs {
            let fast = plan.derive(cfg, &p.parsed, &p.index, &mut scratch);
            let slow = FunSeeker::with_config(*cfg).run_stages_with(
                &p.parsed,
                &p.index,
                &mut Scratch::new(),
            );
            assert_eq!(fast, slow, "plan derivation diverged from run_stages_with");
            verified += 1;
        }
    }

    let n = images.len();
    let mut rows = Vec::new();
    let mut push = |label: &str, samples: &[f64], stage: StageStats| {
        let (best_s, sd_s) = crate::variance::best_and_sd(samples);
        rows.push(AnalyzeRow {
            label: label.to_owned(),
            ms: best_s * 1e3,
            sd_ms: sd_s * 1e3,
            bins_per_s: n as f64 / best_s,
            stage,
        });
    };

    // ---- naive4: four full stage pipelines per binary, shared scratch
    // (the pre-plan analyze stage at its best).
    let mut samples = Vec::with_capacity(reps);
    let mut naive_functions = 0usize;
    let mut stage = StageStats::default();
    for _ in 0..reps {
        let _ = scratch.take_stats();
        let mut functions = 0usize;
        let t = Instant::now();
        for p in &prepared {
            for cfg in &configs {
                let a =
                    FunSeeker::with_config(*cfg).run_stages_with(&p.parsed, &p.index, &mut scratch);
                functions += a.functions.len();
            }
        }
        samples.push(t.elapsed().as_secs_f64());
        stage = scratch.take_stats();
        naive_functions = functions;
    }
    push("analyze_naive4", &samples, stage);

    // ---- plan4: one rebuild per binary, four derivations.
    let mut samples = Vec::with_capacity(reps);
    let mut stage = StageStats::default();
    for _ in 0..reps {
        let _ = scratch.take_stats();
        let mut functions = 0usize;
        let t = Instant::now();
        for p in &prepared {
            plan.rebuild(&p.parsed, &p.index, &mut scratch);
            for cfg in &configs {
                let a = plan.derive(cfg, &p.parsed, &p.index, &mut scratch);
                functions += a.functions.len();
            }
        }
        samples.push(t.elapsed().as_secs_f64());
        stage = scratch.take_stats();
        assert_eq!(functions, naive_functions, "plan4 diverged from naive4");
    }
    push("analyze_plan4", &samples, stage);

    // ---- cold: the full batch engine (parse + sweep + plan-derived
    // analyze) from an empty cache over the same distinct corpus.
    let mut samples = Vec::with_capacity(reps);
    let mut stage = StageStats::default();
    let _ = funseeker_pool::global().workers();
    for _ in 0..reps {
        let cache = ResultCache::new();
        let t = Instant::now();
        let out =
            funseeker_batch::run_with_cache(&images, &configs, &BatchOptions::default(), &cache);
        samples.push(t.elapsed().as_secs_f64());
        let functions: usize = out
            .results
            .iter()
            .flat_map(|per_config| per_config.iter())
            .map(|a| a.as_ref().map_or(0, |a| a.functions.len()))
            .sum();
        assert_eq!(functions, naive_functions, "cold batch diverged from naive4");
        stage = out.stats.stage;
    }
    push("analyze_cold", &samples, stage);

    AnalyzeReport {
        binaries: n,
        configs: configs.len(),
        reps,
        verified,
        host: crate::host::host(),
        rows,
    }
}

impl AnalyzeReport {
    /// The plan-over-naive speedup of this run (1.0 when either row is
    /// missing).
    pub fn speedup(&self) -> f64 {
        let get = |label: &str| self.rows.iter().find(|r| r.label == label).map(|r| r.bins_per_s);
        match (get("analyze_naive4"), get("analyze_plan4")) {
            (Some(naive), Some(plan)) if naive > 0.0 => plan / naive,
            _ => 1.0,
        }
    }

    /// Human-readable report with the per-stage breakdown.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "corpus: {} distinct binaries, {} configs each, best of {} runs, \
             {} (binary, config) pairs verified bit-identical\n\n",
            self.binaries, self.configs, self.reps, self.verified,
        ));
        s.push_str(&format!(
            "{:<15} {:>9} {:>8} {:>12} {:>9} {:>9} {:>9} {:>9}\n",
            "driver", "ms", "±sd", "binaries/s", "filter", "tailcall", "bounds", "interproc"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<15} {:>9.2} {:>8.2} {:>12.1} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.bins_per_s,
                r.stage.filter_ns as f64 / 1e6,
                r.stage.tailcall_ns as f64 / 1e6,
                r.stage.boundaries_ns as f64 / 1e6,
                r.stage.interproc_ns as f64 / 1e6,
            ));
        }
        s.push_str(&format!("\nplan-over-naive speedup: {:.2}x\n", self.speedup()));
        s
    }

    /// The trajectory entry for this run, as a JSON object literal
    /// (lands in `BENCH_batch.json` next to the batch and serve rows).
    pub fn json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"binaries\": {}, \"configs\": {}, \"reps\": {}, \
             \"verified\": {}, {}, \"rows\": [\n",
            label,
            self.binaries,
            self.configs,
            self.reps,
            self.verified,
            self.host.json_fields()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": {:?}, \"ms\": {:.3}, \"sd_ms\": {:.3}, \
                 \"bins_per_s\": {:.1}, \"filter_ms\": {:.3}, \"tailcall_ms\": {:.3}, \
                 \"boundaries_ms\": {:.3}, \"interproc_ms\": {:.3}}}{}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.bins_per_s,
                r.stage.filter_ns as f64 / 1e6,
                r.stage.tailcall_ns as f64 / 1e6,
                r.stage.boundaries_ns as f64 / 1e6,
                r.stage.interproc_ns as f64 / 1e6,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// Appends this run as a new entry to an existing `BENCH_batch.json`
    /// document (or starts a fresh one).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, crate::batch::SCHEMA, self.json_entry(label))
    }
}

/// CI regression gate: the fresh `analyze_plan4` throughput must reach
/// `min_ratio` of the newest committed entry (noise-tolerance-widened,
/// like every other gate), and the plan path must not lose to the
/// unfused pipeline it replaced.
pub fn check_against(
    committed: &str,
    fresh: &AnalyzeReport,
    min_ratio: f64,
) -> Result<String, String> {
    // The hard half first: a plan slower than naive is a broken plan,
    // whatever the trajectory says.
    let speedup = fresh.speedup();
    if speedup < 1.0 {
        return Err(format!(
            "plan-derived analysis is slower than the unfused pipeline ({speedup:.2}x)"
        ));
    }
    let Some(baseline) = trajectory::last_value(committed, "analyze_plan4", "bins_per_s") else {
        return Err("committed BENCH_batch.json has no analyze_plan4 entry".into());
    };
    let Some(now) = fresh.rows.iter().find(|r| r.label == "analyze_plan4") else {
        return Err("fresh measurement has no analyze_plan4 row".into());
    };
    let committed_cores = trajectory::last_row_meta(committed, "analyze_plan4", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "skipped: committed analyze_plan4 entry was measured with {} cores, this run uses \
             {} — not comparable",
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = trajectory::last_value(committed, "analyze_plan4", "sd_ms")
        .zip(trajectory::last_value(committed, "analyze_plan4", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if now.ms > 0.0 { now.sd_ms / now.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = now.bins_per_s / baseline;
    let msg = format!(
        "plan-derived analyze: {:.1} binaries/s vs committed {:.1} binaries/s ({:.0}% of \
         baseline, threshold {:.0}% incl. {:.0}% noise tolerance; {speedup:.2}x over naive)",
        now.bins_per_s,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> AnalyzeReport {
        let stage = StageStats {
            filter_ns: 1_000_000,
            tailcall_ns: 2_000_000,
            boundaries_ns: 3_000_000,
            interproc_ns: 0,
            entry_candidates: 100,
            tail_candidates: 10,
            final_candidates: 120,
        };
        AnalyzeReport {
            binaries: 64,
            configs: 4,
            reps: 3,
            verified: 256,
            host: crate::host::host(),
            rows: vec![
                AnalyzeRow {
                    label: "analyze_naive4".into(),
                    ms: 40.0,
                    sd_ms: 1.0,
                    bins_per_s: 1600.0,
                    stage,
                },
                AnalyzeRow {
                    label: "analyze_plan4".into(),
                    ms: 20.0,
                    sd_ms: 0.5,
                    bins_per_s: 3200.0,
                    stage,
                },
                AnalyzeRow {
                    label: "analyze_cold".into(),
                    ms: 60.0,
                    sd_ms: 2.0,
                    bins_per_s: 1066.0,
                    stage,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_and_gate() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains(crate::batch::SCHEMA));
        assert_eq!(trajectory::last_value(&doc, "analyze_plan4", "bins_per_s"), Some(3200.0));
        assert_eq!(trajectory::last_value(&doc, "analyze_plan4", "filter_ms"), Some(1.0));
        assert!(check_against(&doc, &r, 0.7).is_ok());
        let mut slow = fake_report();
        slow.rows[1].bins_per_s = 1000.0; // below 70% of committed…
        assert!(check_against(&doc, &slow, 0.7).is_err());
        // …and a plan slower than naive fails regardless of history.
        let mut inverted = fake_report();
        inverted.rows[1].bins_per_s = 1500.0;
        inverted.rows[1].ms = 45.0;
        let err = check_against(&doc, &inverted, 0.1).unwrap_err();
        assert!(err.contains("slower than the unfused pipeline"), "{err}");
    }

    #[test]
    fn batch_and_analyze_rows_share_one_document() {
        // Both subcommands append to BENCH_batch.json; each gate must
        // keep finding its own rows in the merged history.
        let a = fake_report();
        let doc = a.append_to_document(None, "analyze");
        assert_eq!(trajectory::extract_entries(&doc).len(), 1);
        assert_eq!(trajectory::last_value(&doc, "analyze_cold", "bins_per_s"), Some(1066.0));
        assert_eq!(trajectory::last_value(&doc, "cold", "bins_per_s"), None);
    }

    #[test]
    fn quick_measurement_verifies_and_reports_stages() {
        let report = run(true);
        let labels: Vec<&str> = report.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["analyze_naive4", "analyze_plan4", "analyze_cold"]);
        assert_eq!(report.verified, report.binaries * report.configs);
        for row in &report.rows {
            assert!(row.ms > 0.0, "{}: no time measured", row.label);
            assert!(row.bins_per_s > 0.0, "{}: no throughput", row.label);
            assert!(row.stage.total_ns() > 0, "{}: no stage counters", row.label);
            assert!(row.stage.final_candidates > 0, "{}: no candidates", row.label);
        }
        assert!(!report.render().is_empty());
    }
}
