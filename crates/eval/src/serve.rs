//! Serving-layer load test — the `experiments -- serve` subcommand.
//!
//! Starts an in-process daemon on a unix socket and drives it with a
//! fleet of client threads (1,024 in full mode), each holding one
//! connection and submitting corpus binaries back-to-back. Two
//! workloads bracket the cache behavior a long-running service sees:
//!
//! | row | traffic shape |
//! |---|---|
//! | `serve_dup` | duplicate-heavy: the batch corpus (each image recurring), so single-flight and the result cache absorb almost everything |
//! | `serve_distinct` | distinct-heavy: every submission content-unique, so every request is a fresh analysis and the admission gate's `Busy` backpressure does real work |
//!
//! Every reply is checked **bit-identical** to the direct batch-engine
//! analysis of the same image before it counts. `Busy` refusals are
//! retried with bounded backoff and tallied — backpressure is part of
//! the measurement, not an error. Results append to `BENCH_batch.json`
//! (rows `serve_dup` / `serve_distinct`); `--check` gates CI on the
//! newest committed `serve_dup` throughput.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use funseeker::{Analysis, Config};
use funseeker_batch::BatchOptions;
use funseeker_client::{AnalyzeReply, Client, ClientError};
use funseeker_server::{Server, ServerConfig};

use crate::batch::peak_rss_kb;
use crate::trajectory;

/// Give up on a request after this many consecutive `Busy` refusals —
/// a server this saturated for this long is a harness failure, not
/// backpressure.
const MAX_BUSY_RETRIES: usize = 10_000;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Row name (`serve_dup`, `serve_distinct`).
    pub label: String,
    /// Best-of-N wall time for the whole barrage, milliseconds.
    pub ms: f64,
    /// Sample standard deviation of the wall time over the reps, ms.
    pub sd_ms: f64,
    /// Completed requests per second on the best rep.
    pub req_per_s: f64,
    /// Median client-observed latency (including retries), µs.
    pub p50_us: u64,
    /// 99th-percentile client-observed latency, µs.
    pub p99_us: u64,
    /// `Busy` refusals absorbed by retries on the best rep.
    pub busy: u64,
    /// Daemon result-cache hit rate after the workload.
    pub hit_rate: f64,
    /// Most concurrently open client connections observed by the
    /// daemon's own gauge across all reps of this workload.
    pub peak_open: u64,
    /// Requests completed per rep.
    pub requests: usize,
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Concurrent client threads (one connection each).
    pub threads: usize,
    /// Requests each thread submits per rep.
    pub per_thread: usize,
    /// Distinct images in the duplicate-heavy corpus.
    pub distinct: usize,
    /// Repetitions per workload (best is reported).
    pub reps: usize,
    /// `VmHWM` of the whole process (daemon + clients + corpus), KiB.
    pub peak_rss_kb: u64,
    /// Execution environment of the run (pool width, host cores,
    /// kernel tier).
    pub host: crate::host::Host,
    /// Measured workloads.
    pub rows: Vec<ServeRow>,
}

/// A content-unique variant of `image`: the tag lands outside every
/// ELF-described region, so the analysis is unchanged (asserted against
/// the unpadded expectation) while every cache key differs.
fn padded(image: &[u8], tag: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(image.len() + 8);
    v.extend_from_slice(image);
    v.extend_from_slice(&tag.to_le_bytes());
    v
}

pub(crate) struct Barrage {
    pub(crate) elapsed_s: f64,
    pub(crate) latencies_us: Vec<u64>,
    pub(crate) busy: u64,
    pub(crate) peak_open: u64,
}

/// One timed barrage: `threads` clients, each submitting its
/// round-robin share of `images`, verifying every reply against
/// `expected`. `distinct_salt` salts each submission into a fresh cache
/// key (the distinct-heavy shape).
pub(crate) fn barrage(
    addr: &str,
    images: &[Vec<u8>],
    expected: &[Arc<Analysis>],
    threads: usize,
    per_thread: usize,
    distinct_salt: Option<u64>,
) -> Barrage {
    let busy_total = AtomicU64::new(0);
    let peak_open = AtomicU64::new(0);
    let stop_monitor = AtomicBool::new(false);
    let done = AtomicU64::new(0);
    let all_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(threads * per_thread));
    // Every client connects before anyone submits; the timer covers
    // submissions only.
    let connected = Barrier::new(threads + 1);
    let started = Barrier::new(threads + 1);

    let elapsed_s = std::thread::scope(|s| {
        for t in 0..threads {
            let (busy_total, all_latencies, done) = (&busy_total, &all_latencies, &done);
            let (connected, started) = (&connected, &started);
            std::thread::Builder::new()
                .stack_size(256 << 10)
                .name(format!("fs-load-{t}"))
                .spawn_scoped(s, move || {
                    let mut client = connect_retry(addr);
                    connected.wait();
                    started.wait();
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut busy = 0u64;
                    for i in 0..per_thread {
                        let request_no = (t * per_thread + i) as u64;
                        let idx = request_no as usize % images.len();
                        let salted;
                        let image: &[u8] = match distinct_salt {
                            Some(salt) => {
                                salted = padded(&images[idx], salt ^ request_no);
                                &salted
                            }
                            None => &images[idx],
                        };
                        let t0 = Instant::now();
                        let reply = submit_counting_busy(&mut client, image, &mut busy);
                        latencies.push(t0.elapsed().as_micros() as u64);
                        assert_eq!(
                            reply.analysis, *expected[idx],
                            "daemon result diverged from direct batch analysis (image {idx})"
                        );
                    }
                    busy_total.fetch_add(busy, Ordering::Relaxed);
                    all_latencies.lock().unwrap().extend(latencies);
                    done.fetch_add(1, Ordering::Release);
                })
                .expect("spawn load thread");
        }

        // Monitor: samples the daemon's open-connection gauge while the
        // barrage runs (evidence for the ≥1,000-concurrent requirement).
        let (peak_open, stop_monitor) = (&peak_open, &stop_monitor);
        let monitor = s.spawn(move || {
            let mut client = connect_retry(addr);
            while !stop_monitor.load(Ordering::Relaxed) {
                if let Ok(stats) = client.stats() {
                    let open = stats.get("connections_open").unwrap_or(0);
                    peak_open.fetch_max(open, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        connected.wait();
        // Between the barriers the whole fleet provably holds open
        // connections; one deterministic sample here anchors peak_open
        // even if the monitor never lands a mid-run poll.
        {
            let mut probe = connect_retry(addr);
            if let Ok(stats) = probe.stats() {
                peak_open.fetch_max(stats.get("connections_open").unwrap_or(0), Ordering::Relaxed);
            }
        }
        let t0 = Instant::now();
        started.wait();
        let elapsed = loop {
            if done.load(Ordering::Acquire) == threads as u64 {
                break t0.elapsed().as_secs_f64();
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        stop_monitor.store(true, Ordering::Relaxed);
        let _ = monitor.join();
        elapsed
    });

    let mut latencies_us = all_latencies.into_inner().unwrap();
    latencies_us.sort_unstable();
    Barrage {
        elapsed_s,
        latencies_us,
        busy: busy_total.into_inner(),
        peak_open: peak_open.into_inner(),
    }
}

/// Connects, retrying briefly: a thousand simultaneous connects can
/// overflow the listener's backlog, which is itself backpressure, not
/// failure.
pub(crate) fn connect_retry(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Submits one image, absorbing `Busy` refusals with bounded backoff
/// and counting them. Any other failure is a harness failure.
fn submit_counting_busy(client: &mut Client, image: &[u8], busy: &mut u64) -> AnalyzeReply {
    let mut backoff = Duration::from_millis(1);
    for _ in 0..MAX_BUSY_RETRIES {
        match client.analyze(image) {
            Ok(reply) => return reply,
            Err(ClientError::Busy { .. }) => {
                *busy += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(64));
            }
            Err(other) => panic!("load request failed: {other}"),
        }
    }
    panic!("request refused Busy {MAX_BUSY_RETRIES} times");
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

/// Runs the measurement. `quick` shrinks the fleet, corpus, and
/// repetition count for CI smoke use.
pub fn run(quick: bool) -> ServeReport {
    let (images, distinct) = crate::batch::corpus(quick);
    let config = Config::c4();
    // Ground truth: the direct batch-engine analysis of every corpus
    // image — the daemon must reproduce these bit for bit.
    let expected: Vec<Arc<Analysis>> =
        funseeker_batch::run(&images, std::slice::from_ref(&config), &BatchOptions::default())
            .results
            .into_iter()
            .map(|mut per_config| per_config.remove(0).expect("benchmark corpus parses"))
            .collect();

    let threads = if quick { 16 } else { 1024 };
    let per_thread = if quick { 8 } else { 4 };
    let reps = 2;

    let sock = std::env::temp_dir().join(format!("fs-serve-bench-{}.sock", std::process::id()));
    let mut server_config = ServerConfig::unix(&sock);
    server_config.max_connections = threads + 8;
    let server = Server::start(server_config).expect("bind benchmark socket");
    let addr = server.addr().to_string();

    let mut rows = Vec::new();
    let mut measure = |label: &str, distinct_salt: Option<u64>| {
        let mut best: Option<Barrage> = None;
        let mut samples = Vec::with_capacity(reps);
        let mut peak_open = 0u64;
        for rep in 0..reps as u64 {
            // Distinct-heavy reps stay distinct across reps too: the
            // salt folds the rep index into every tag.
            let salt = distinct_salt.map(|s| s ^ (rep << 56));
            let sample = barrage(&addr, &images, &expected, threads, per_thread, salt);
            samples.push(sample.elapsed_s);
            peak_open = peak_open.max(sample.peak_open);
            if best.as_ref().is_none_or(|b| sample.elapsed_s < b.elapsed_s) {
                best = Some(sample);
            }
        }
        let best = best.expect("at least one rep");
        let (best_s, sd_s) = crate::variance::best_and_sd(&samples);
        let requests = threads * per_thread;
        let hit_rate = {
            let mut probe = connect_retry(&addr);
            probe.stats().map(|s| s.hit_rate()).unwrap_or(0.0)
        };
        rows.push(ServeRow {
            label: label.to_owned(),
            ms: best_s * 1e3,
            sd_ms: sd_s * 1e3,
            req_per_s: requests as f64 / best_s,
            p50_us: percentile(&best.latencies_us, 0.50),
            p99_us: percentile(&best.latencies_us, 0.99),
            busy: best.busy,
            hit_rate,
            peak_open,
            requests,
        });
    };

    measure("serve_dup", None);
    measure("serve_distinct", Some(0x5eed_d157_1c47));
    server.shutdown();
    server.join();

    ServeReport {
        threads,
        per_thread,
        distinct,
        reps,
        peak_rss_kb: peak_rss_kb(),
        host: crate::host::host(),
        rows,
    }
}

/// Distinct-heavy-only probe for the [`crate::multicore`] bench: a
/// moderate fleet against a fresh daemon, every submission
/// content-unique, so each request costs a real analysis and the row's
/// latency tail reflects analysis queueing rather than cache hits. The
/// daemon inherits the current global pool width, so this measures the
/// serving layer at whatever `--cores` the bench configured. Returns
/// the measured row (throughput, p50/p99, `Busy` count).
pub(crate) fn distinct_probe(quick: bool) -> ServeRow {
    let (images, _) = crate::batch::corpus(quick);
    let config = Config::c4();
    let expected: Vec<Arc<Analysis>> =
        funseeker_batch::run(&images, std::slice::from_ref(&config), &BatchOptions::default())
            .results
            .into_iter()
            .map(|mut per_config| per_config.remove(0).expect("benchmark corpus parses"))
            .collect();

    let threads = if quick { 16 } else { 256 };
    let per_thread = if quick { 4 } else { 8 };
    let reps = 2;

    let sock = std::env::temp_dir().join(format!("fs-mc-bench-{}.sock", std::process::id()));
    let mut server_config = ServerConfig::unix(&sock);
    server_config.max_connections = threads + 8;
    let server = Server::start(server_config).expect("bind multicore bench socket");
    let addr = server.addr().to_string();

    let mut best: Option<Barrage> = None;
    let mut samples = Vec::with_capacity(reps);
    let mut peak_open = 0u64;
    for rep in 0..reps as u64 {
        let salt = Some(0x3c0_7e5 ^ (rep << 56));
        let sample = barrage(&addr, &images, &expected, threads, per_thread, salt);
        samples.push(sample.elapsed_s);
        peak_open = peak_open.max(sample.peak_open);
        if best.as_ref().is_none_or(|b| sample.elapsed_s < b.elapsed_s) {
            best = Some(sample);
        }
    }
    let best = best.expect("at least one rep");
    let (best_s, sd_s) = crate::variance::best_and_sd(&samples);
    let requests = threads * per_thread;
    let hit_rate = {
        let mut probe = connect_retry(&addr);
        probe.stats().map(|s| s.hit_rate()).unwrap_or(0.0)
    };
    server.shutdown();
    server.join();
    ServeRow {
        label: "mc_serve_distinct".to_owned(),
        ms: best_s * 1e3,
        sd_ms: sd_s * 1e3,
        req_per_s: requests as f64 / best_s,
        p50_us: percentile(&best.latencies_us, 0.50),
        p99_us: percentile(&best.latencies_us, 0.99),
        busy: best.busy,
        hit_rate,
        peak_open,
        requests,
    }
}

impl ServeReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fleet: {} concurrent clients × {} requests, {} distinct corpus images, \
             best of {} reps, peak RSS {:.1} MiB\n\n",
            self.threads,
            self.per_thread,
            self.distinct,
            self.reps,
            self.peak_rss_kb as f64 / 1024.0,
        ));
        s.push_str(&format!(
            "{:<15} {:>10} {:>8} {:>10} {:>9} {:>9} {:>7} {:>9} {:>10}\n",
            "workload", "ms", "±sd", "req/s", "p50 µs", "p99 µs", "busy", "hit-rate", "peak conns"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<15} {:>10.1} {:>8.1} {:>10.1} {:>9} {:>9} {:>7} {:>8.0}% {:>10}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.req_per_s,
                r.p50_us,
                r.p99_us,
                r.busy,
                r.hit_rate * 100.0,
                r.peak_open,
            ));
        }
        s
    }

    /// The trajectory entry for this run, as a JSON object literal
    /// (same document and schema as the batch rows).
    pub fn json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"threads\": {}, \"per_thread\": {}, \"distinct\": {}, \
             \"reps\": {}, \"peak_rss_kb\": {}, {}, \"rows\": [\n",
            label,
            self.threads,
            self.per_thread,
            self.distinct,
            self.reps,
            self.peak_rss_kb,
            self.host.json_fields()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": {:?}, \"ms\": {:.3}, \"sd_ms\": {:.3}, \
                 \"req_per_s\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"busy\": {}, \
                 \"hit_rate\": {:.4}, \"peak_open\": {}, \"requests\": {}}}{}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.req_per_s,
                r.p50_us,
                r.p99_us,
                r.busy,
                r.hit_rate,
                r.peak_open,
                r.requests,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// Appends this run as a new entry to an existing `BENCH_batch.json`
    /// document (or starts a fresh one).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, crate::batch::SCHEMA, self.json_entry(label))
    }
}

/// CI regression gate: compares the fresh duplicate-heavy throughput
/// against the newest committed `serve_dup` row, noise-widened like the
/// batch gate.
pub fn check_against(
    committed: &str,
    fresh: &ServeReport,
    min_ratio: f64,
) -> Result<String, String> {
    let Some(baseline) = trajectory::last_value(committed, "serve_dup", "req_per_s") else {
        return Err("committed BENCH_batch.json has no serve_dup entry".into());
    };
    let Some(now) = fresh.rows.iter().find(|r| r.label == "serve_dup") else {
        return Err("fresh measurement has no serve_dup row".into());
    };
    let committed_cores = trajectory::last_row_meta(committed, "serve_dup", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "skipped: committed serve_dup entry was measured with {} cores, this run uses {} — \
             not comparable",
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = trajectory::last_value(committed, "serve_dup", "sd_ms")
        .zip(trajectory::last_value(committed, "serve_dup", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if now.ms > 0.0 { now.sd_ms / now.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = now.req_per_s / baseline;
    let msg = format!(
        "duplicate-heavy serving: {:.1} req/s vs committed {:.1} req/s ({:.0}% of baseline, \
         threshold {:.0}% incl. {:.0}% noise tolerance)",
        now.req_per_s,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> ServeReport {
        ServeReport {
            threads: 16,
            per_thread: 8,
            distinct: 12,
            reps: 2,
            peak_rss_kb: 50_000,
            host: crate::host::host(),
            rows: vec![
                ServeRow {
                    label: "serve_dup".into(),
                    ms: 80.0,
                    sd_ms: 4.0,
                    req_per_s: 1600.0,
                    p50_us: 900,
                    p99_us: 9000,
                    busy: 0,
                    hit_rate: 0.93,
                    peak_open: 17,
                    requests: 128,
                },
                ServeRow {
                    label: "serve_distinct".into(),
                    ms: 300.0,
                    sd_ms: 10.0,
                    req_per_s: 426.0,
                    p50_us: 2000,
                    p99_us: 40_000,
                    busy: 210,
                    hit_rate: 0.5,
                    peak_open: 17,
                    requests: 128,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_and_gate() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains(crate::batch::SCHEMA));
        assert_eq!(trajectory::last_value(&doc, "serve_dup", "req_per_s"), Some(1600.0));
        assert_eq!(trajectory::last_value(&doc, "serve_distinct", "busy"), Some(210.0));
        assert!(check_against(&doc, &r, 0.7).is_ok());
        let mut slow = fake_report();
        slow.rows[0].req_per_s = 100.0;
        assert!(check_against(&doc, &slow, 0.7).is_err());
        // Re-appending keeps the newest entry authoritative.
        let mut faster = fake_report();
        faster.rows[0].req_per_s = 2000.0;
        let doc2 = faster.append_to_document(Some(&doc), "post");
        assert_eq!(trajectory::last_value(&doc2, "serve_dup", "req_per_s"), Some(2000.0));
    }

    #[test]
    fn percentiles_are_sane() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn quick_load_test_serves_correctly_under_concurrency() {
        let report = run(true);
        let dup = report.rows.iter().find(|r| r.label == "serve_dup").expect("dup row");
        let distinct =
            report.rows.iter().find(|r| r.label == "serve_distinct").expect("distinct row");
        assert_eq!(dup.requests, report.threads * report.per_thread);
        assert!(dup.req_per_s > 0.0 && distinct.req_per_s > 0.0);
        assert!(dup.p50_us <= dup.p99_us);
        // The fleet really was concurrent: the daemon saw (nearly) the
        // whole fleet connected at once.
        assert!(
            dup.peak_open as usize >= report.threads,
            "peak_open {} vs {} threads",
            dup.peak_open,
            report.threads
        );
        // Duplicate-heavy traffic must be absorbed by the cache.
        assert!(dup.hit_rate > 0.5, "dup hit rate {}", dup.hit_rate);
        assert!(!report.render().is_empty());
    }
}
