//! §VI ablation — `-mmanual-endbr`.
//!
//! GCC and Clang can suppress automatic end-branch insertion
//! (`-mmanual-endbr`), leaving markers only where the programmer puts
//! them — which, for a correct program, is every genuine indirect-branch
//! target. The paper argues the impact on FunSeeker "will be marginal":
//! indirect targets must keep their markers (or the program crashes) and
//! regular functions remain discoverable through direct calls; only some
//! direct tail-call targets and unreachable functions (~1.24% by
//! Figure 3) can be lost.
//!
//! This experiment compiles the same corpus twice — default CET emission
//! vs. the manual-endbr model — and measures FunSeeker ④ on both.

use funseeker::FunSeeker;
use funseeker_corpus::{compile_with, BuildConfig, Dataset, DatasetParams, EmissionOptions};

use crate::metrics::Score;
use crate::report::{pct, Table};

/// Aggregates for the two emission modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ManualEndbr {
    /// Default full CET emission.
    pub default_mode: Score,
    /// `-mmanual-endbr` emission.
    pub manual_mode: Score,
}

/// Runs the ablation.
pub fn run(params: &DatasetParams, seed: u64) -> ManualEndbr {
    let specs = Dataset::program_specs(params, seed);
    let seeker = FunSeeker::new();
    let mut out = ManualEndbr::default();
    for (pi, (_suite, spec)) in specs.iter().enumerate() {
        for (ci, &config) in params.configs.iter().enumerate() {
            let bin_seed = seed
                .wrapping_add((pi as u64).wrapping_mul(0x0100_0000_01b3))
                .wrapping_add(ci as u64);
            for (manual, slot) in [(false, 0usize), (true, 1)] {
                let built = compile_with(
                    spec,
                    config,
                    EmissionOptions { manual_endbr: manual, ..Default::default() },
                    bin_seed,
                );
                let truth = built.truth.eval_entries();
                let analysis = seeker.identify(&built.bytes).expect("corpus binary analyzable");
                let score = Score::from_funcset(&analysis.functions, &truth);
                if slot == 0 {
                    out.default_mode += score;
                } else {
                    out.manual_mode += score;
                }
            }
        }
    }
    out
}

impl ManualEndbr {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Emission", "Prec. %", "Rec. %"]);
        t.row([
            "default (-fcf-protection=full)".to_owned(),
            pct(self.default_mode.precision()),
            pct(self.default_mode.recall()),
        ]);
        t.row([
            "-mmanual-endbr".to_owned(),
            pct(self.manual_mode.precision()),
            pct(self.manual_mode.recall()),
        ]);
        let mut out = t.render();
        out.push_str(&format!(
            "\nrecall delta: {:+.3} points (the paper predicts a marginal impact)\n",
            (self.manual_mode.recall() - self.default_mode.recall()) * 100.0
        ));
        out
    }
}

/// Convenience: a small default run.
pub fn run_default(seed: u64) -> ManualEndbr {
    let mut params = DatasetParams::tiny();
    params.programs = (4, 2, 4);
    params.configs = BuildConfig::grid();
    run(&params, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_endbr_impact_is_marginal() {
        let r = run_default(17);
        // Both modes stay strong…
        assert!(r.default_mode.recall() > 0.99);
        assert!(r.manual_mode.recall() > 0.97, "recall {:.4}", r.manual_mode.recall());
        // …and the drop is bounded (the paper estimates ~1.24% of
        // functions are at risk).
        let delta = r.default_mode.recall() - r.manual_mode.recall();
        assert!(delta < 0.02, "recall drop {delta:.4} too large");
        assert!(r.manual_mode.precision() > 0.98);
        let rendered = r.render();
        assert!(rendered.contains("manual-endbr"));
    }
}
