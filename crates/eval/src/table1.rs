//! Table I — distribution of end-branch instruction locations.
//!
//! For every binary, each end-branch found by the linear sweep is
//! classified exactly the way the paper does it:
//!
//! * **Func. Entry** — at a ground-truth function entry,
//! * **Indirect Ret.** — right after a call to an indirect-return
//!   (setjmp-family) PLT stub,
//! * **Exception** — at an exception landing pad (from the LSDAs).

use std::collections::BTreeMap;

use funseeker::prepare;
use funseeker_corpus::{Compiler, CorpusBinary, Dataset, Suite};

use crate::report::Table;
use crate::runner::par_map;

/// Per-group end-branch location counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndbrCounts {
    /// End-branches at function entries.
    pub entry: usize,
    /// End-branches after indirect-return call sites.
    pub indirect_ret: usize,
    /// End-branches at exception landing pads.
    pub exception: usize,
    /// Unexplained (must be 0 on the corpus; kept for real binaries).
    pub other: usize,
}

impl EndbrCounts {
    /// Total classified end-branches.
    pub fn total(&self) -> usize {
        self.entry + self.indirect_ret + self.exception + self.other
    }
}

/// Classifies all end-branches of one binary.
pub fn classify_binary(bin: &CorpusBinary) -> EndbrCounts {
    // One shared PARSE + DISASSEMBLE; the call sites and end-branches come
    // from the sweep index instead of two private sweeps.
    let prepared = prepare(&bin.bytes).expect("corpus binary parses");
    let parsed = &prepared.parsed;

    // Indirect-return points, recomputed from the binary like FILTERENDBR.
    // `call_sites` keeps out-of-code (PLT-bound) targets and records the
    // address *after* each call — exactly the point an end-branch follows.
    let mut ret_points = std::collections::BTreeSet::new();
    for &(after, target) in &prepared.index.call_sites {
        if let Some(name) = parsed.plt.name_at(target) {
            if funseeker::is_indirect_return_name(name) {
                ret_points.insert(after);
            }
        }
    }

    let entries = bin.truth.eval_entries();
    let mut counts = EndbrCounts::default();
    for &addr in &prepared.index.endbrs {
        if entries.contains(&addr) {
            counts.entry += 1;
        } else if parsed.landing_pads.contains(&addr) {
            counts.exception += 1;
        } else if ret_points.contains(&addr) {
            counts.indirect_ret += 1;
        } else {
            counts.other += 1;
        }
    }
    counts
}

/// The Table I result grid.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// Counts per (compiler, suite).
    pub groups: BTreeMap<(&'static str, &'static str), EndbrCounts>,
}

/// Runs the Table I experiment over a dataset.
pub fn run(ds: &Dataset) -> Table1 {
    let per_bin = par_map(&ds.binaries, |b| (b.config.compiler, b.suite, classify_binary(b)));
    let mut groups: BTreeMap<(&'static str, &'static str), EndbrCounts> = BTreeMap::new();
    for (compiler, suite, c) in per_bin {
        let e = groups.entry((compiler.label(), suite.label())).or_default();
        e.entry += c.entry;
        e.indirect_ret += c.indirect_ret;
        e.exception += c.exception;
        e.other += c.other;
    }
    Table1 { groups }
}

impl Table1 {
    /// Builds the result table (percentages per row, paper layout).
    pub fn to_table(&self) -> Table {
        let mut t =
            Table::new(["Compiler", "Suite", "Func. Entry %", "Indirect Ret. %", "Exception %"]);
        for compiler in [Compiler::Gcc, Compiler::Clang] {
            for suite in Suite::ALL {
                let Some(c) = self.groups.get(&(compiler.label(), suite.label())) else { continue };
                let total = c.total().max(1) as f64;
                t.row([
                    compiler.label().to_owned(),
                    suite.label().to_owned(),
                    format!("{:.2}", c.entry as f64 / total * 100.0),
                    format!("{:.2}", c.indirect_ret as f64 / total * 100.0),
                    format!("{:.2}", c.exception as f64 / total * 100.0),
                ]);
            }
        }
        t
    }

    /// Renders the paper's Table I layout as markdown.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders as CSV.
    pub fn render_csv(&self) -> String {
        self.to_table().render_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::DatasetParams;

    #[test]
    fn corpus_endbrs_fully_classified() {
        let mut params = DatasetParams::tiny();
        params.programs = (2, 1, 2);
        let ds = Dataset::generate(&params, 21);
        let t1 = run(&ds);
        let mut any = 0;
        for c in t1.groups.values() {
            assert_eq!(c.other, 0, "unexplained end-branches on the corpus");
            any += c.total();
        }
        assert!(any > 100);
    }

    #[test]
    fn spec_suite_shows_exception_share() {
        let mut params = DatasetParams::tiny();
        params.programs = (2, 1, 4);
        params.configs = funseeker_corpus::BuildConfig::grid();
        let ds = Dataset::generate(&params, 22);
        let t1 = run(&ds);
        for compiler in ["GCC", "Clang"] {
            let spec = t1.groups[&(compiler, "SPEC CPU 2017")];
            let exc_share = spec.exception as f64 / spec.total() as f64;
            assert!(exc_share > 0.05, "{compiler} SPEC exception share too low: {exc_share:.3}");
            let core = t1.groups[&(compiler, "Coreutils")];
            assert_eq!(core.exception, 0, "C suites have no landing pads");
            // The paper reports 99.98% here; at the corpus's small
            // per-binary function counts the (one) setjmp return point
            // weighs proportionally more, so the gate is looser while
            // the *shape* (entry ≫ indirect-return, zero exception)
            // stays the same.
            let entry_share = core.entry as f64 / core.total() as f64;
            assert!(entry_share > 0.90, "{compiler} Coreutils entry share {entry_share:.4}");
            assert!(
                core.entry > 20 * core.indirect_ret,
                "{compiler}: indirect-return share too large"
            );
        }
        let rendered = t1.render();
        assert!(rendered.contains("SPEC CPU 2017"));
        assert!(rendered.contains("Func. Entry"));
    }
}
