//! ARM BTI evaluation — the §VI future-work experiment, beyond the
//! paper's own tables.
//!
//! Generates BTI-enabled AArch64 binaries and scores the BTI identifier
//! with and without tail-call selection, mirroring the x86 ablation.

use funseeker_aarch64::{generate, ArmParams, BtiConfig, BtiSeeker};

use crate::metrics::Score;
use crate::report::{pct, Table};

/// Aggregate result of the ARM experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmEval {
    /// BTI markers + BL targets only.
    pub without_tails: Score,
    /// Full pipeline with tail-call selection.
    pub full: Score,
    /// Binaries evaluated.
    pub binaries: usize,
}

/// Runs the experiment over `count` seeded binaries.
pub fn run(count: usize, seed: u64) -> ArmEval {
    let mut out = ArmEval::default();
    let no_tails =
        BtiSeeker::with_config(BtiConfig { select_tail_calls: false, min_tail_referers: 2 });
    let full = BtiSeeker::new();
    for s in 0..count as u64 {
        let bin = generate(ArmParams::default(), seed ^ (s.wrapping_mul(0x9e37_79b9)));
        let truth = bin.entries();
        let a = no_tails.identify(&bin.bytes).expect("generated ARM binary analyzable");
        out.without_tails += Score::from_sets(&a.functions, &truth);
        let b = full.identify(&bin.bytes).expect("generated ARM binary analyzable");
        out.full += Score::from_sets(&b.functions, &truth);
        out.binaries += 1;
    }
    out
}

impl ArmEval {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["BTI identifier", "Prec. %", "Rec. %"]);
        t.row([
            "BTI ∪ BL-targets".to_owned(),
            pct(self.without_tails.precision()),
            pct(self.without_tails.recall()),
        ]);
        t.row(["+ SELECTTAILCALL".to_owned(), pct(self.full.precision()), pct(self.full.recall())]);
        let mut out = t.render();
        out.push_str(&format!("\n({} AArch64 binaries)\n", self.binaries));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_results_mirror_x86_shape() {
        let r = run(20, 7);
        assert_eq!(r.binaries, 20);
        assert!(r.full.precision() > 0.99);
        assert!(r.full.recall() > 0.99);
        // Tail selection only helps recall, never hurts precision much.
        assert!(r.full.recall() >= r.without_tails.recall());
        let rendered = r.render();
        assert!(rendered.contains("SELECTTAILCALL"));
    }
}
