//! Ablation beyond the paper: FunSeeker accuracy per optimization level.
//!
//! The paper aggregates across `-O0`…`-Ofast`; this breakdown shows *why*
//! that is safe — and where the residual errors concentrate (cold
//! splitting starts at `-O2`, frameless prologues change nothing for an
//! end-branch-based identifier).

use std::collections::BTreeMap;

use funseeker::FunSeeker;
use funseeker_corpus::{Dataset, OptLevel};

use crate::metrics::Score;
use crate::report::{pct, Table};
use crate::runner::par_map;

/// Per-opt-level scores.
#[derive(Debug, Clone, Default)]
pub struct ByOpt {
    /// Level → aggregate score for configuration ④.
    pub levels: BTreeMap<OptLevel, Score>,
}

/// Runs the breakdown over a dataset.
pub fn run(ds: &Dataset) -> ByOpt {
    let per_bin = par_map(&ds.binaries, |bin| {
        let truth = bin.truth.eval_entries();
        let a = FunSeeker::new().identify(&bin.bytes).expect("corpus binary analyzable");
        (bin.config.opt, Score::from_funcset(&a.functions, &truth))
    });
    let mut out = ByOpt::default();
    for (opt, s) in per_bin {
        *out.levels.entry(opt).or_default() += s;
    }
    out
}

impl ByOpt {
    /// Renders the per-level table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Opt", "Prec. %", "Rec. %", "TP", "FP", "FN"]);
        for opt in OptLevel::ALL {
            let Some(s) = self.levels.get(&opt) else { continue };
            t.row([
                opt.label().to_owned(),
                pct(s.precision()),
                pct(s.recall()),
                s.tp.to_string(),
                s.fp.to_string(),
                s.fn_.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{BuildConfig, DatasetParams};

    #[test]
    fn accuracy_holds_across_all_levels() {
        let mut params = DatasetParams::tiny();
        params.programs = (3, 2, 3);
        params.configs = BuildConfig::grid();
        let ds = Dataset::generate(&params, 88);
        let by = run(&ds);
        assert_eq!(by.levels.len(), 6, "all six levels covered");
        for (opt, s) in &by.levels {
            assert!(s.precision() > 0.97, "{}: precision {:.4}", opt.label(), s.precision());
            assert!(s.recall() > 0.98, "{}: recall {:.4}", opt.label(), s.recall());
        }
        // Fragment FPs only exist where cold splitting happens (O2+).
        let o0_fp = by.levels[&OptLevel::O0].fp;
        let o2_fp = by.levels[&OptLevel::O2].fp;
        assert!(o2_fp >= o0_fp, "cold splitting should concentrate FPs at O2+");
        let rendered = by.render();
        assert!(rendered.contains("Ofast"));
    }
}
