//! Host metadata stamped onto every bench-trajectory entry.
//!
//! Trajectory files accumulate entries measured on whatever machine ran
//! the bench — a laptop, a 1-core CI container, a 32-core build box.
//! Throughput comparisons across different core counts are meaningless
//! (a "regression" that is really a narrower host would mask real ones
//! and fail good runs), so each new entry records how wide the pool was
//! and what the host offered, and every `--check` gate first compares
//! the committed entry's `cores_used` against the fresh run's before
//! comparing numbers. Entries predating this metadata carry none and
//! are treated as comparable, preserving gate continuity.

use funseeker_disasm::KernelTier;

/// The execution environment of one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    /// Worker-pool width the run used (after `FUNSEEKER_CORES` /
    /// `--cores` plumbing).
    pub cores_used: usize,
    /// `available_parallelism()` on the host.
    pub available_parallelism: usize,
    /// Active kernel tier name (`avx2`, `sse2`, `swar`, `scalar`).
    pub tier: String,
}

/// Snapshot of the current process's execution environment.
pub fn host() -> Host {
    Host {
        cores_used: funseeker_pool::global().workers(),
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        tier: format!("{:?}", KernelTier::active()).to_ascii_lowercase(),
    }
}

impl Host {
    /// The metadata as JSON object fields (no braces, no trailing
    /// comma), for splicing into an entry header line.
    pub fn json_fields(&self) -> String {
        format!(
            "\"cores_used\": {}, \"avail_par\": {}, \"tier\": {:?}",
            self.cores_used, self.available_parallelism, self.tier
        )
    }

    /// Whether a committed entry's recorded width (from
    /// [`crate::trajectory::last_row_meta`]) is comparable with this
    /// run. `None` — an entry written before host metadata existed — is
    /// treated as comparable.
    pub fn comparable_with(&self, committed_cores: Option<f64>) -> bool {
        committed_cores.is_none_or(|c| c == self.cores_used as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sane_and_renders() {
        let h = host();
        assert!(h.cores_used >= 1);
        assert!(h.available_parallelism >= 1);
        assert!(["avx2", "sse2", "swar", "scalar"].contains(&h.tier.as_str()));
        let fields = h.json_fields();
        assert!(fields.contains("\"cores_used\": "), "{fields}");
        assert!(fields.contains("\"tier\": \""), "{fields}");
    }

    #[test]
    fn comparability_rules() {
        let h = Host { cores_used: 2, available_parallelism: 8, tier: "avx2".into() };
        assert!(h.comparable_with(None), "pre-metadata entries stay comparable");
        assert!(h.comparable_with(Some(2.0)));
        assert!(!h.comparable_with(Some(1.0)), "different width is not comparable");
    }
}
