//! Sweep performance measurement — the `experiments -- perf` subcommand.
//!
//! Builds a deterministic benchmark input (the largest x86-64 GCC binary
//! of a tiny corpus, its `.text` tiled to a few MiB), times the
//! sequential and sharded sweeps plus the full `prepare()` pipeline on
//! it, and reports per-stage counters from [`SweepStats`]. The numbers
//! can be emitted as a machine-readable JSON *trajectory* file
//! (`BENCH_sweep.json`): each run appends an entry, so the committed
//! file records how sweep throughput evolved across changes, and CI can
//! fail a run whose throughput regresses against the last committed
//! entry (see [`check_against`]).
//!
//! Everything here is hand-rolled line-oriented JSON — the workspace has
//! no serde — and the parser in [`last_mb_per_s`] only needs to find the
//! newest `"mb_per_s"` value for a label, so it reads the file as lines,
//! not as a JSON tree.

use std::time::Instant;

use funseeker::prepare;
use funseeker_corpus::{Arch, BuildConfig, Compiler, Dataset, DatasetParams};
use funseeker_disasm::{par_sweep, sweep_all, Mode, SweepStats};
use funseeker_elf::Elf;

/// Seed for the benchmark corpus — fixed so every run times the same
/// bytes (shared with the criterion benches' dataset seed).
const SEED: u64 = 0xBE7C4;

/// Trajectory schema tag for `BENCH_sweep.json`.
pub(crate) const SCHEMA: &str = "funseeker-bench-sweep-v1";

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Configuration name (`sequential`, `shard4`, `prepare`, …).
    pub label: String,
    /// Best-of-N wall time in milliseconds.
    pub ms: f64,
    /// Sample standard deviation of the wall time over the reps, in
    /// milliseconds — the run-to-run noise behind `ms`.
    pub sd_ms: f64,
    /// Throughput over the tiled text, MiB per second.
    pub mb_per_s: f64,
    /// Stage counters from the measured run.
    pub stats: SweepStats,
}

/// The full measurement: the input description plus one row per
/// configuration.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Bytes of tiled `.text` swept per measurement.
    pub bytes: usize,
    /// Repetitions per row (the minimum is reported).
    pub reps: usize,
    /// Execution environment of the run (pool width, host cores,
    /// kernel tier) — recorded so trajectories from different hosts are
    /// never gated against each other.
    pub host: crate::host::Host,
    /// Core-analyzer per-stage counters: the four Table II
    /// configurations analyzed once each over the benchmark binary.
    pub stage: funseeker::StageStats,
    /// Measured configurations.
    pub rows: Vec<PerfRow>,
}

/// Builds the benchmark input: the tiny corpus's largest x86-64 GCC
/// `.text`, tiled up to `target` bytes. Shared with the
/// [`crate::multicore`] scaling bench so every core count sweeps the
/// same bytes.
pub(crate) fn tiled_text(target: usize) -> (Vec<u8>, u64, Mode) {
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = BuildConfig::grid();
    let ds = Dataset::generate(&params, SEED);
    let bin = ds
        .binaries
        .into_iter()
        .filter(|b| b.config.arch == Arch::X64 && b.config.compiler == Compiler::Gcc)
        .max_by_key(|b| b.bytes.len())
        .expect("benchmark dataset is non-empty");
    let elf = Elf::parse(&bin.bytes).expect("benchmark binary parses");
    let (_, text) = elf.section_bytes(".text").expect("benchmark binary has .text");
    let mut code = Vec::with_capacity(target + text.len());
    while code.len() < target {
        code.extend_from_slice(text);
    }
    (code, 0x40_1000, bin.config.arch.mode())
}

/// Times `f` `reps` times and returns the minimum wall time and sample
/// standard deviation in seconds, plus the stats of the final run.
fn best_of(reps: usize, mut f: impl FnMut() -> SweepStats) -> (f64, f64, SweepStats) {
    let mut samples = Vec::with_capacity(reps);
    let mut stats = SweepStats::default();
    for _ in 0..reps {
        let t = Instant::now();
        stats = f();
        samples.push(t.elapsed().as_secs_f64());
    }
    let (best, sd) = crate::variance::best_and_sd(&samples);
    (best, sd, stats)
}

/// Runs the measurement. `quick` shrinks the input and repetition count
/// for CI smoke use (a couple of seconds instead of tens).
pub fn run(quick: bool) -> PerfReport {
    let target = if quick { 2 << 20 } else { 4 << 20 };
    let reps = if quick { 3 } else { 7 };
    let (code, base, mode) = tiled_text(target);
    let mb = code.len() as f64 / (1024.0 * 1024.0);

    // Warm-up: fault in the buffer, initialize the worker pool.
    let _ = par_sweep(&code, base, mode, 2).stream.len();

    let mut rows = Vec::new();
    let mut push = |label: &str, best: f64, sd: f64, stats: SweepStats| {
        rows.push(PerfRow {
            label: label.to_owned(),
            ms: best * 1e3,
            sd_ms: sd * 1e3,
            mb_per_s: mb / best,
            stats,
        });
    };

    let (best, sd, stats) = best_of(reps, || {
        let out = sweep_all(&code, base, mode);
        std::hint::black_box(out.stream.len());
        out.stats
    });
    push("sequential", best, sd, stats);

    for shards in [2usize, 4, 8] {
        let (best, sd, stats) = best_of(reps, || {
            let out = par_sweep(&code, base, mode, shards);
            std::hint::black_box(out.stream.len());
            out.stats
        });
        push(&format!("shard{shards}"), best, sd, stats);
    }

    // End-to-end: ELF parse + sweep + index build over a wrapped image.
    // Reuses the corpus binary rather than the tiled buffer (prepare
    // needs a whole ELF), so its MB/s is relative to that binary's text.
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = BuildConfig::grid();
    let ds = Dataset::generate(&params, SEED);
    let bin = ds
        .binaries
        .into_iter()
        .filter(|b| b.config.arch == Arch::X64 && b.config.compiler == Compiler::Gcc)
        .max_by_key(|b| b.bytes.len())
        .expect("benchmark dataset is non-empty");
    let text_bytes = {
        let elf = Elf::parse(&bin.bytes).expect("parses");
        elf.section_bytes(".text").map(|(_, t)| t.len()).unwrap_or(0)
    };
    let mut samples = Vec::with_capacity(reps);
    let mut stats = SweepStats::default();
    for _ in 0..reps {
        let t = Instant::now();
        let p = prepare(&bin.bytes).expect("benchmark binary prepares");
        stats = *p.sweep_stats();
        std::hint::black_box(p.index.insns.len());
        samples.push(t.elapsed().as_secs_f64());
    }
    let (best, sd) = crate::variance::best_and_sd(&samples);
    rows.push(PerfRow {
        label: "prepare".to_owned(),
        ms: best * 1e3,
        sd_ms: sd * 1e3,
        mb_per_s: text_bytes as f64 / (1024.0 * 1024.0) / best,
        stats,
    });

    // Parallel end-to-end: the same `prepare` fanned over the pool via
    // the timed runner — the per-binary front-end cost batch callers
    // actually pay when many binaries are in flight at once. Reported
    // **per binary** (wall / 8) so the row is directly comparable with
    // the single `prepare` row above; earlier trajectories recorded the
    // whole batch's wall time here, which read as an 8× "regression"
    // against `prepare` when the two rows were really within noise.
    let copies: Vec<&[u8]> = std::iter::repeat_n(&bin.bytes[..], 8).collect();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let timed = crate::runner::par_map_timed(&copies, |image| {
            let p = prepare(image).expect("benchmark binary prepares");
            std::hint::black_box(p.index.insns.len());
        });
        std::hint::black_box(timed.len());
        samples.push(t.elapsed().as_secs_f64() / copies.len() as f64);
    }
    let (best_par, sd_par) = crate::variance::best_and_sd(&samples);
    rows.push(PerfRow {
        label: "prepare_par8".to_owned(),
        ms: best_par * 1e3,
        sd_ms: sd_par * 1e3,
        mb_per_s: text_bytes as f64 / (1024.0 * 1024.0) / best_par,
        stats,
    });

    // Analyzer stage counters (untimed rows above cover the sweep; this
    // records where the back end spends its time on the same binary).
    let p = prepare(&bin.bytes).expect("benchmark binary prepares");
    let mut scratch = funseeker::Scratch::new();
    for (_, cfg) in funseeker::Config::table2() {
        let a = funseeker::FunSeeker::with_config(cfg).run_stages_with(
            &p.parsed,
            &p.index,
            &mut scratch,
        );
        std::hint::black_box(a.functions.len());
    }
    let stage = scratch.take_stats();

    PerfReport { bytes: code.len(), reps, host: crate::host::host(), stage, rows }
}

impl PerfReport {
    /// Human-readable per-stage report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "tiled .text: {:.1} MiB, best of {} runs\n\n",
            self.bytes as f64 / (1024.0 * 1024.0),
            self.reps
        ));
        s.push_str(&format!(
            "{:<12} {:>9} {:>8} {:>9} {:>7} {:>10} {:>10} {:>9} {:>9}\n",
            "config", "ms", "±sd", "MB/s", "shards", "insns", "fast-path", "decode", "stitch"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<12} {:>9.2} {:>8.2} {:>9.1} {:>7} {:>10} {:>9.1}% {:>8.2}ms {:>7.2}ms\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.mb_per_s,
                r.stats.shards,
                r.stats.insns,
                r.stats.fast_path_rate() * 100.0,
                r.stats.decode_ns as f64 / 1e6,
                r.stats.stitch_ns as f64 / 1e6,
            ));
        }
        s.push_str(&format!(
            "\nanalyzer stages (4 configs, benchmark binary): filter {:.3}ms, tailcall \
             {:.3}ms, bounds {:.3}ms, interproc {:.3}ms ({} entry / {} tail / {} final \
             candidates)\n",
            self.stage.filter_ns as f64 / 1e6,
            self.stage.tailcall_ns as f64 / 1e6,
            self.stage.boundaries_ns as f64 / 1e6,
            self.stage.interproc_ns as f64 / 1e6,
            self.stage.entry_candidates,
            self.stage.tail_candidates,
            self.stage.final_candidates,
        ));
        s
    }

    /// The trajectory entry for this run, as a JSON object literal.
    ///
    /// `label` names the code state being measured (e.g. `pre`, `post`,
    /// a short description of a change).
    pub fn json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"bytes\": {}, \"reps\": {}, {}, \"rows\": [\n",
            label,
            self.bytes,
            self.reps,
            self.host.json_fields()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": {:?}, \"ms\": {:.3}, \"sd_ms\": {:.3}, \
                 \"mb_per_s\": {:.1}, \"fast_path_rate\": {:.4}, \"insns\": {}}}{}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.mb_per_s,
                r.stats.fast_path_rate(),
                r.stats.insns,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// Wraps [`PerfReport::json_entry`] values into a complete
    /// `BENCH_sweep.json` document.
    pub fn json_document(entries: &[String]) -> String {
        crate::trajectory::json_document(SCHEMA, entries)
    }

    /// Appends this run as a new entry to an existing document (or
    /// starts a fresh one when `existing` is `None`/unparsable).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        crate::trajectory::append_entry(existing, SCHEMA, self.json_entry(label))
    }
}

/// The newest `mb_per_s` recorded for `config` in a committed
/// `BENCH_sweep.json`, if any.
pub fn last_mb_per_s(doc: &str, config: &str) -> Option<f64> {
    crate::trajectory::last_value(doc, config, "mb_per_s")
}

/// CI regression gate: compares the fresh report's sequential throughput
/// against the newest committed entry, failing if it fell below
/// `min_ratio` (e.g. `0.7` = fail on a >30 % regression). The threshold
/// is **tolerance-aware**: it is widened by the run-to-run noise both
/// sides recorded (see [`crate::variance::noise_tolerance`]), so jitter
/// on a loaded machine doesn't trip the gate.
pub fn check_against(
    committed: &str,
    fresh: &PerfReport,
    min_ratio: f64,
) -> Result<String, String> {
    let Some(baseline) = last_mb_per_s(committed, "sequential") else {
        return Err("committed BENCH_sweep.json has no sequential entry".into());
    };
    let Some(now) = fresh.rows.iter().find(|r| r.label == "sequential") else {
        return Err("fresh measurement has no sequential row".into());
    };
    let committed_cores = crate::trajectory::last_row_meta(committed, "sequential", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "skipped: committed sequential entry was measured with {} cores, this run uses {} — \
             not comparable",
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = crate::trajectory::last_value(committed, "sequential", "sd_ms")
        .zip(crate::trajectory::last_value(committed, "sequential", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if now.ms > 0.0 { now.sd_ms / now.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = now.mb_per_s / baseline;
    let msg = format!(
        "sequential sweep: {:.1} MB/s vs committed {:.1} MB/s ({:.0}% of baseline, \
         threshold {:.0}% incl. {:.0}% noise tolerance)",
        now.mb_per_s,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> PerfReport {
        PerfReport {
            bytes: 2 << 20,
            reps: 3,
            host: crate::host::host(),
            stage: funseeker::StageStats::default(),
            rows: vec![
                PerfRow {
                    label: "sequential".into(),
                    ms: 10.0,
                    sd_ms: 0.2,
                    mb_per_s: 200.0,
                    stats: SweepStats::default(),
                },
                PerfRow {
                    label: "shard4".into(),
                    ms: 9.0,
                    sd_ms: 0.1,
                    mb_per_s: 222.2,
                    stats: SweepStats::default(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_and_append() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains("funseeker-bench-sweep-v1"));
        assert_eq!(last_mb_per_s(&doc, "sequential"), Some(200.0));
        // Appending keeps the old entry and the parser sees the newest.
        let mut r2 = fake_report();
        r2.rows[0].mb_per_s = 321.0;
        let doc2 = r2.append_to_document(Some(&doc), "post");
        assert_eq!(crate::trajectory::extract_entries(&doc2).len(), 2);
        assert!(doc2.contains("\"label\": \"pre\""));
        assert_eq!(last_mb_per_s(&doc2, "sequential"), Some(321.0));
        assert_eq!(last_mb_per_s(&doc2, "shard4"), Some(222.2));
        assert_eq!(last_mb_per_s(&doc2, "shard16"), None);
    }

    #[test]
    fn regression_gate_passes_and_fails() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(check_against(&doc, &r, 0.7).is_ok());
        let mut slow = fake_report();
        slow.rows[0].mb_per_s = 100.0; // 50% of committed
        assert!(check_against(&doc, &slow, 0.7).is_err());
        let mut fastr = fake_report();
        fastr.rows[0].mb_per_s = 500.0;
        assert!(check_against(&doc, &fastr, 0.7).is_ok());
    }

    #[test]
    fn regression_gate_widens_with_recorded_noise() {
        // A run sitting just below the plain threshold passes once its
        // recorded run-to-run noise is taken into account, and the gate
        // still fails a real regression far outside the noise band.
        let mut noisy = fake_report();
        noisy.rows[0].sd_ms = 0.8; // 8% relative noise
        let doc = noisy.append_to_document(None, "pre");
        let mut fresh = fake_report();
        fresh.rows[0].sd_ms = 0.8;
        fresh.rows[0].mb_per_s = 136.0; // 68% of baseline: < 0.7 plain
        let msg = check_against(&doc, &fresh, 0.7).expect("within noise tolerance");
        assert!(msg.contains("noise tolerance"), "{msg}");
        fresh.rows[0].mb_per_s = 90.0; // 45%: regression beyond any tolerance
        assert!(check_against(&doc, &fresh, 0.7).is_err());
    }

    #[test]
    fn regression_gate_skips_on_core_count_mismatch() {
        let mut wide = fake_report();
        wide.host.cores_used = 8;
        let doc = wide.append_to_document(None, "wide");
        let mut narrow = fake_report();
        narrow.host.cores_used = 1;
        narrow.rows[0].mb_per_s = 50.0; // would fail hard if compared
        let msg = check_against(&doc, &narrow, 0.7).expect("mismatched cores must skip");
        assert!(msg.contains("not comparable"), "{msg}");
        // Same width: the gate compares for real again.
        narrow.host.cores_used = 8;
        assert!(check_against(&doc, &narrow, 0.7).is_err());
    }

    #[test]
    fn quick_measurement_produces_sane_rows() {
        let report = run(true);
        assert!(report.bytes >= 2 << 20);
        let labels: Vec<&str> = report.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["sequential", "shard2", "shard4", "shard8", "prepare", "prepare_par8"]);
        for row in &report.rows {
            assert!(row.ms > 0.0, "{}: no time measured", row.label);
            assert!(row.mb_per_s > 0.0, "{}: no throughput", row.label);
            assert!(row.sd_ms >= 0.0 && row.sd_ms.is_finite(), "{}: bad sd", row.label);
        }
        let seq = &report.rows[0];
        // The adaptive fix: no shard configuration may lose to the
        // sequential sweep (on a one-worker host they run the same code,
        // so the margin only absorbs timer noise).
        for shard in &report.rows[1..4] {
            assert!(
                shard.mb_per_s >= 0.8 * seq.mb_per_s,
                "{} ({:.1} MB/s) slower than sequential ({:.1} MB/s)",
                shard.label,
                shard.mb_per_s,
                seq.mb_per_s
            );
        }
        assert!(seq.stats.insns > 100_000, "tiled text should decode to many insns");
        assert!(seq.stats.fast_path_rate() > 0.1, "compiler code hits the fast path");
        // Small-input regression guard: the benchmark binary's .text is a
        // few KiB — far below the parallel work threshold — so prepare
        // must have swept it sequentially (one shard, no stitch), and the
        // fanned-out prepare must stay within noise of the single one
        // per binary instead of the old 8×-slower reading.
        let prep = report.rows.iter().find(|r| r.label == "prepare").expect("prepare row");
        let par8 = report.rows.iter().find(|r| r.label == "prepare_par8").expect("par8 row");
        assert_eq!(prep.stats.shards, 1, "small binary must take the sequential sweep path");
        assert!(
            par8.ms <= 3.0 * prep.ms,
            "per-binary parallel prepare ({:.3} ms) should track sequential ({:.3} ms)",
            par8.ms,
            prep.ms
        );
        assert!(report.stage.total_ns() > 0, "analyzer stage counters must be charged");
        assert!(report.stage.final_candidates > 0);
        assert!(!report.render().is_empty());
    }
}
