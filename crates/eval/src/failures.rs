//! §V-C failure analysis: what FunSeeker's residual false negatives and
//! false positives are made of.
//!
//! The paper reports: 93.3% of false negatives were dead functions and
//! the rest missed tail-call targets; all false positives referred to
//! `.part` blocks (57.1% misidentified tail calls, 42.9% direct-called
//! fragments).

use funseeker::FunSeeker;
use funseeker_corpus::Dataset;

use crate::report::Table;
use crate::runner::par_map;

/// Classified error counts for the full (④) configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// FN: ground-truth functions that are dead code.
    pub fn_dead: usize,
    /// FN: live functions missed (mostly single-caller tail targets).
    pub fn_tail_or_other: usize,
    /// FP: `.cold`/`.part` fragment entries reported as functions.
    pub fp_fragment: usize,
    /// FP: anything else.
    pub fp_other: usize,
}

impl FailureBreakdown {
    /// Total false negatives.
    pub fn total_fn(&self) -> usize {
        self.fn_dead + self.fn_tail_or_other
    }

    /// Total false positives.
    pub fn total_fp(&self) -> usize {
        self.fp_fragment + self.fp_other
    }

    /// Renders the summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Class", "Count", "Share %"]);
        let fns = self.total_fn().max(1) as f64;
        let fps = self.total_fp().max(1) as f64;
        t.row([
            "FN: dead function".to_owned(),
            self.fn_dead.to_string(),
            format!("{:.1}", self.fn_dead as f64 / fns * 100.0),
        ]);
        t.row([
            "FN: missed tail target / other".to_owned(),
            self.fn_tail_or_other.to_string(),
            format!("{:.1}", self.fn_tail_or_other as f64 / fns * 100.0),
        ]);
        t.row([
            "FP: .cold/.part fragment".to_owned(),
            self.fp_fragment.to_string(),
            format!("{:.1}", self.fp_fragment as f64 / fps * 100.0),
        ]);
        t.row([
            "FP: other".to_owned(),
            self.fp_other.to_string(),
            format!("{:.1}", self.fp_other as f64 / fps * 100.0),
        ]);
        t.render()
    }
}

/// Runs the failure analysis over a dataset.
pub fn run(ds: &Dataset) -> FailureBreakdown {
    let per_bin = par_map(&ds.binaries, |bin| {
        let truth = bin.truth.eval_entries();
        let parts = bin.truth.part_entries();
        let analysis = FunSeeker::new().identify(&bin.bytes).expect("corpus binary analyzable");
        let mut b = FailureBreakdown::default();
        for missed in truth.iter().filter(|a| !analysis.functions.contains(a)) {
            let f = bin.truth.by_addr(*missed).expect("truth entry");
            if f.dead {
                b.fn_dead += 1;
            } else {
                b.fn_tail_or_other += 1;
            }
        }
        for extra in analysis.functions.iter().filter(|a| !truth.contains(a)) {
            if parts.contains(extra) {
                b.fp_fragment += 1;
            } else {
                b.fp_other += 1;
            }
        }
        b
    });
    let mut total = FailureBreakdown::default();
    for b in per_bin {
        total.fn_dead += b.fn_dead;
        total.fn_tail_or_other += b.fn_tail_or_other;
        total.fp_fragment += b.fp_fragment;
        total.fp_other += b.fp_other;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{BuildConfig, DatasetParams};

    #[test]
    fn failure_classes_match_the_papers_story() {
        let mut params = DatasetParams::tiny();
        params.programs = (4, 2, 3);
        params.configs = BuildConfig::grid();
        let ds = Dataset::generate(&params, 66);
        let b = run(&ds);
        // There are some errors to classify at all.
        assert!(b.total_fn() > 0, "no FNs — corpus too easy");
        assert!(b.total_fp() > 0, "no FPs — corpus too easy");
        // Dead functions dominate FNs (paper: 93.3%).
        assert!(b.fn_dead * 2 > b.total_fn(), "dead functions should dominate FNs: {b:?}");
        // Fragments dominate FPs (paper: 100%).
        assert!(b.fp_fragment * 2 > b.total_fp(), "fragments should dominate FPs: {b:?}");
        let rendered = b.render();
        assert!(rendered.contains("dead function"));
    }
}
