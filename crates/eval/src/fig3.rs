//! Figure 3 — the Venn relation between the three syntactic function
//! properties: `EndBrAtHead`, `DirJmpTarget`, `DirCallTarget`.

use funseeker::prepare;
use funseeker_corpus::{CorpusBinary, Dataset};

use crate::report::Table;
use crate::runner::par_map;

/// Counts of functions per Venn region. Index bits: 1 = EndBrAtHead,
/// 2 = DirJmpTarget, 4 = DirCallTarget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fig3 {
    /// `regions[bits]` = number of functions with exactly that property
    /// combination (`regions[0]` = none — the dead 0.01% of the paper).
    pub regions: [usize; 8],
}

impl Fig3 {
    /// Total functions counted.
    pub fn total(&self) -> usize {
        self.regions.iter().sum()
    }

    /// Share of functions with an end-branch at the entry (the paper's
    /// 89.3%).
    pub fn endbr_at_head_share(&self) -> f64 {
        let n: usize = (0..8).filter(|b| b & 1 != 0).map(|b| self.regions[b]).sum();
        n as f64 / self.total().max(1) as f64
    }

    /// Share of functions with at least one property (the paper's
    /// 99.99%).
    pub fn any_property_share(&self) -> f64 {
        1.0 - self.regions[0] as f64 / self.total().max(1) as f64
    }

    /// Renders the region table.
    pub fn render(&self) -> String {
        let label = |bits: usize| -> String {
            if bits == 0 {
                return "(none — dead code)".to_owned();
            }
            let mut parts = Vec::new();
            if bits & 1 != 0 {
                parts.push("EndBrAtHead");
            }
            if bits & 2 != 0 {
                parts.push("DirJmpTarget");
            }
            if bits & 4 != 0 {
                parts.push("DirCallTarget");
            }
            parts.join(" ∩ ")
        };
        let total = self.total().max(1) as f64;
        let mut t = Table::new(["Region", "Functions", "Share %"]);
        // Paper-style ordering: biggest single regions first.
        for bits in [1usize, 5, 4, 3, 7, 6, 2, 0] {
            t.row([
                label(bits),
                self.regions[bits].to_string(),
                format!("{:.2}", self.regions[bits] as f64 / total * 100.0),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nEndBrAtHead share: {:.2}%  ·  ≥1 property: {:.2}%\n",
            self.endbr_at_head_share() * 100.0,
            self.any_property_share() * 100.0
        ));
        out
    }
}

/// Computes the property bits for all ground-truth functions of one
/// binary.
pub fn classify_binary(bin: &CorpusBinary) -> Fig3 {
    // One shared PARSE + DISASSEMBLE; the property sets come straight
    // from the sweep index. Ground-truth entries always lie inside the
    // code, so the index's in-code-filtered `C`/`J` sets are
    // membership-equivalent to unfiltered ones here.
    let prepared = prepare(&bin.bytes).expect("corpus binary parses");
    let index = &prepared.index;
    let jmp_targets = index.jmp_targets();

    let mut out = Fig3::default();
    for f in bin.truth.functions.iter().filter(|f| !f.is_part) {
        let mut bits = 0usize;
        if index.endbrs.binary_search(&f.addr).is_ok() {
            bits |= 1;
        }
        if jmp_targets.contains(&f.addr) {
            bits |= 2;
        }
        if index.call_targets.contains(&f.addr) {
            bits |= 4;
        }
        out.regions[bits] += 1;
    }
    out
}

/// Runs the Figure 3 experiment over a dataset.
pub fn run(ds: &Dataset) -> Fig3 {
    let per_bin = par_map(&ds.binaries, classify_binary);
    let mut total = Fig3::default();
    for f in per_bin {
        for (t, s) in total.regions.iter_mut().zip(f.regions) {
            *t += s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::DatasetParams;

    #[test]
    fn properties_cover_nearly_all_functions() {
        let mut params = DatasetParams::tiny();
        params.programs = (3, 2, 3);
        params.configs = funseeker_corpus::BuildConfig::grid();
        let ds = Dataset::generate(&params, 33);
        let fig = run(&ds);
        assert!(fig.total() > 1000);
        // The paper's headline shapes.
        let endbr = fig.endbr_at_head_share();
        assert!(
            endbr > 0.70 && endbr < 0.97,
            "EndBrAtHead share {endbr:.3} out of plausible range (paper: 0.893)"
        );
        let any = fig.any_property_share();
        assert!(any > 0.99, "≥1-property share {any:.4} (paper: 0.9999)");
        // Region 0 (no properties) is exactly the dead, endbr-less code.
        assert!(fig.regions[0] < fig.total() / 100);
        let rendered = fig.render();
        assert!(rendered.contains("EndBrAtHead"));
        assert!(rendered.contains("dead code"));
    }
}
