//! Regenerates the paper's tables and figures on a fresh corpus.
//!
//! ```text
//! experiments <table1|table2|table3|fig3|failures|by-opt|manual-endbr|arm|robustness|all> [--seed N] [--scale tiny|default|large] [--csv]
//! ```

use std::time::Instant;

use funseeker_corpus::{Dataset, DatasetParams};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|fig3|failures|by-opt|manual-endbr|arm|robustness|all> [--seed N] [--scale tiny|default|large] [--csv]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    let mut seed = 2022u64; // the paper's year, for a stable default
    let mut scale = "default".to_owned();
    let mut csv = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            _ => usage(),
        }
        i += 1;
    }

    let mut params = DatasetParams::default();
    match scale.as_str() {
        "tiny" => params.programs = (3, 2, 3),
        "default" => {}
        "large" => params.programs = (27, 8, 12),
        _ => usage(),
    }

    eprintln!(
        "generating corpus: {:?} programs × {} configs (seed {seed})…",
        params.programs,
        params.configs.len()
    );
    let t0 = Instant::now();
    let ds = Dataset::generate(&params, seed);
    let total_functions: usize = ds.binaries.iter().map(|b| b.truth.eval_entries().len()).sum();
    eprintln!(
        "corpus ready: {} binaries, {} ground-truth functions ({:.1}s)",
        ds.len(),
        total_functions,
        t0.elapsed().as_secs_f64()
    );

    let run_one = |name: &str| {
        let t = Instant::now();
        match name {
            "table1" => {
                let t = funseeker_eval::table1::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table I — end-branch location distribution\n");
                    println!("{}", t.render());
                }
            }
            "fig3" => {
                println!("## Figure 3 — syntactic property relation\n");
                println!("{}", funseeker_eval::fig3::run(&ds).render());
            }
            "table2" => {
                let t = funseeker_eval::table2::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table II — FunSeeker configurations (1)-(4)\n");
                    println!("{}", t.render());
                }
            }
            "table3" => {
                let t = funseeker_eval::table3::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table III — tool comparison\n");
                    println!("{}", t.render());
                }
            }
            "by-opt" => {
                println!("## Per-optimization-level breakdown (extension)\n");
                println!("{}", funseeker_eval::by_opt::run(&ds).render());
            }
            "arm" => {
                println!("## ARM BTI extension (Section VI future work)\n");
                println!("{}", funseeker_eval::arm::run(40, seed).render());
            }
            "manual-endbr" => {
                println!("## Section VI — -mmanual-endbr ablation\n");
                println!("{}", funseeker_eval::manual_endbr::run(&params, seed).render());
            }
            "failures" => {
                println!("## Section V-C — failure analysis (configuration (4))\n");
                println!("{}", funseeker_eval::failures::run(&ds).render());
            }
            "robustness" => {
                let t = funseeker_eval::robustness::run(&ds, seed);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Robustness — hostile-input mutation campaign (extension)\n");
                    println!("{}", t.render());
                }
            }
            _ => usage(),
        }
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    };

    match what.as_str() {
        "all" => {
            for name in [
                "table1",
                "fig3",
                "table2",
                "table3",
                "failures",
                "by-opt",
                "manual-endbr",
                "arm",
                "robustness",
            ] {
                run_one(name);
                println!();
            }
        }
        other => run_one(other),
    }
}
