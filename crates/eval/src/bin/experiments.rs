//! Regenerates the paper's tables and figures on a fresh corpus.
//!
//! ```text
//! experiments <table1|table2|table3|fig3|failures|by-opt|manual-endbr|arm|robustness|all> [--seed N] [--scale tiny|default|large] [--csv]
//! experiments perf [--quick] [--json FILE [--label NAME]] [--check FILE]
//! experiments batch [--quick] [--corpus-scale N] [--json FILE [--label NAME]] [--check FILE]
//! experiments analyze [--quick] [--json FILE [--label NAME]] [--check FILE]
//! experiments callgraph [--quick] [--json FILE [--label NAME]] [--check FILE]
//! experiments serve [--quick] [--json FILE [--label NAME]] [--check FILE]
//! experiments io [--quick] [--json FILE [--label NAME]] [--check FILE]
//! experiments multicore [--quick] [--cores N] [--json-sweep FILE] [--json-batch FILE] [--label NAME] [--check FILE]
//! ```
//!
//! The `perf` subcommand measures sweep throughput and per-stage
//! counters on a deterministic tiled corpus (no full corpus generation):
//! `--json FILE` appends the run to a `BENCH_sweep.json` trajectory,
//! `--check FILE` exits non-zero when sequential throughput drops below
//! 70 % of the file's newest committed entry, and `--quick` shrinks the
//! input for CI smoke use.
//!
//! The `batch` subcommand measures the batch engine — binaries/second
//! through the flat, nocache, cold-cache, warm-cache, and disk-cache
//! drivers over a corpus with duplicated images, plus cache hit rates
//! and peak RSS. Flags mirror `perf` against `BENCH_batch.json`;
//! `--check` gates on the newest committed cold-cache entry.
//! `--corpus-scale N` instead runs the paper-scale ingestion
//! measurement: N content-unique binaries (up to ~8,000; without the
//! flag the corpus keeps its regular 576) written to disk and streamed
//! through mmap ingestion under a small admission budget, with peak
//! RSS asserted bounded by that budget rather than the corpus size.
//!
//! The `analyze` subcommand isolates the back end: every binary of a
//! distinct-heavy corpus is parsed and swept once, then the four
//! Table II configurations are analyzed per binary through the unfused
//! stage pipeline (`analyze_naive4`), the shared-`AnalysisPlan`
//! derivation (`analyze_plan4`), and the full cold batch engine
//! (`analyze_cold`), with per-stage FILTERENDBR / SELECTTAILCALL /
//! candidate-algebra / interprocedural timings on every row. Every
//! plan-derived analysis is asserted bit-identical to an independent
//! `run_stages_with` before timing starts. Flags mirror `perf` against
//! `BENCH_batch.json`; `--check` gates on the newest committed
//! `analyze_plan4` row and fails outright when the plan path is slower
//! than the unfused pipeline.
//!
//! The `callgraph` subcommand scores recovered direct/tail call edges
//! against the corpus's emitted call-edge ground truth and times the
//! CFG + call-graph build. Flags mirror `perf` against
//! `BENCH_sweep.json` (a `callgraph` row); `--check` additionally
//! enforces the ≥95 % direct-edge precision floor.
//!
//! The `serve` subcommand load-tests the daemon: it starts an
//! in-process server on a unix socket and drives it with a concurrent
//! client fleet (1,024 connections in full mode) under duplicate-heavy
//! and distinct-heavy traffic, verifying every reply bit-identical to
//! direct analysis. Flags mirror `perf` against `BENCH_batch.json`
//! (rows `serve_dup`/`serve_distinct`); `--check` gates on the newest
//! committed duplicate-heavy throughput.
//!
//! The `io` subcommand measures the zero-copy I/O path: cold mmap vs
//! buffered-read ingestion, the `FSC3` binary cache codec vs the
//! retired v2 text codec, and a duplicate-heavy daemon barrage served
//! from pre-encoded reply bytes. Flags mirror `perf` against
//! `BENCH_io.json`; `--check` gates on the newest committed
//! `decode_v3` throughput and fails outright if the v3 decoder is
//! slower than the v2 one.
//!
//! The `multicore` subcommand measures multi-core scaling: a
//! power-of-two ladder of worker-pool widths up to `--cores N` (default
//! `available_parallelism`), each rung timing the sequential vs
//! morsel-sharded sweep on the tiled text plus the batch engine's
//! corpus aggregate, and one distinct-heavy serving row at the top
//! width. Rungs other than this process's own pool width re-execute the
//! binary as `multicore-probe --cores K` subprocesses (pool width is
//! fixed at first use). `--json-sweep`/`--json-batch` append the run to
//! the two trajectory files; `--check FILE` gates against
//! `BENCH_sweep.json` — sharding slower than sequential on any ≥2-core
//! rung fails, a 1-core host verifies the sequential fallback instead.

use std::time::Instant;

use funseeker_corpus::{Dataset, DatasetParams};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|table2|table3|fig3|failures|by-opt|manual-endbr|arm|robustness|all> [--seed N] [--scale tiny|default|large] [--csv]\n\
         \x20      experiments perf [--quick] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments batch [--quick] [--corpus-scale N] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments analyze [--quick] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments callgraph [--quick] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments serve [--quick] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments io [--quick] [--json FILE [--label NAME]] [--check FILE]\n\
         \x20      experiments multicore [--quick] [--cores N] [--json-sweep FILE] [--json-batch FILE] [--label NAME] [--check FILE]"
    );
    std::process::exit(2);
}

/// Fraction of the committed baseline throughput a fresh `--check` run
/// must reach — fail on a >30 % regression. Shared by `perf`
/// (sequential sweep MB/s) and `batch` (cold-cache binaries/s).
const BENCH_CHECK_MIN_RATIO: f64 = 0.7;

/// Flags shared by the `perf` and `batch` benchmark subcommands.
struct BenchFlags {
    quick: bool,
    json: Option<String>,
    check: Option<String>,
    label: String,
}

impl BenchFlags {
    fn parse(args: &[String]) -> Self {
        let mut flags =
            BenchFlags { quick: false, json: None, check: None, label: "run".to_owned() };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => flags.quick = true,
                "--json" => {
                    i += 1;
                    flags.json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                }
                "--check" => {
                    i += 1;
                    flags.check = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                }
                "--label" => {
                    i += 1;
                    flags.label = args.get(i).cloned().unwrap_or_else(|| usage());
                }
                _ => usage(),
            }
            i += 1;
        }
        flags
    }

    /// Appends to the trajectory file and/or runs the regression gate,
    /// then exits with the gate's verdict.
    fn finish(
        &self,
        name: &str,
        append: impl Fn(Option<&str>, &str) -> String,
        gate: impl Fn(&str) -> Result<String, String>,
    ) -> ! {
        if let Some(path) = &self.json {
            let existing = std::fs::read_to_string(path).ok();
            let doc = append(existing.as_deref(), &self.label);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("{name}: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("{name}: appended entry {:?} to {path}", self.label);
        }
        if let Some(path) = &self.check {
            let committed = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{name}: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            match gate(&committed) {
                Ok(msg) => eprintln!("{name} check OK: {msg}"),
                Err(msg) => {
                    eprintln!("{name} check FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        std::process::exit(0)
    }
}

fn run_perf(args: &[String]) -> ! {
    let flags = BenchFlags::parse(args);
    eprintln!("measuring sweep throughput ({} mode)…", if flags.quick { "quick" } else { "full" });
    let report = funseeker_eval::perf::run(flags.quick);
    println!("## Sweep performance\n");
    println!("{}", report.render());
    flags.finish(
        "perf",
        |existing, label| report.append_to_document(existing, label),
        |committed| funseeker_eval::perf::check_against(committed, &report, BENCH_CHECK_MIN_RATIO),
    )
}

fn run_batch(args: &[String]) -> ! {
    // `--corpus-scale N` replaces the driver comparison with the
    // paper-scale streaming-ingestion measurement; pull it (and its
    // value) out before the shared flag parser sees the rest.
    let mut scale: Option<usize> = None;
    let mut rest: Vec<String> = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--corpus-scale" {
            i += 1;
            scale = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let flags = BenchFlags::parse(&rest);
    if let Some(scale) = scale {
        eprintln!(
            "measuring paper-scale ingestion ({} binaries, {} mode)…",
            scale.min(funseeker_eval::batch::SCALE_CAP),
            if flags.quick { "quick" } else { "full" }
        );
        let report = funseeker_eval::batch::run_scaled(scale, flags.quick);
        println!("## Paper-scale corpus ingestion\n");
        println!("{}", report.render());
        match report.rss_bounded() {
            Ok(msg) => eprintln!("batch corpus-scale OK: {msg}"),
            Err(msg) => {
                eprintln!("batch corpus-scale FAILED: {msg}");
                std::process::exit(1);
            }
        }
        std::process::exit(0);
    }
    eprintln!(
        "measuring batch-engine throughput ({} mode)…",
        if flags.quick { "quick" } else { "full" }
    );
    let report = funseeker_eval::batch::run(flags.quick);
    println!("## Batch engine performance\n");
    println!("{}", report.render());
    flags.finish(
        "batch",
        |existing, label| report.append_to_document(existing, label),
        |committed| funseeker_eval::batch::check_against(committed, &report, BENCH_CHECK_MIN_RATIO),
    )
}

fn run_analyze(args: &[String]) -> ! {
    let flags = BenchFlags::parse(args);
    eprintln!(
        "measuring shared-plan analysis ({} mode)…",
        if flags.quick { "quick" } else { "full" }
    );
    let report = funseeker_eval::analyze::run(flags.quick);
    println!("## Shared-plan analysis\n");
    println!("{}", report.render());
    flags.finish(
        "analyze",
        |existing, label| report.append_to_document(existing, label),
        |committed| {
            funseeker_eval::analyze::check_against(committed, &report, BENCH_CHECK_MIN_RATIO)
        },
    )
}

fn run_callgraph(args: &[String]) -> ! {
    let flags = BenchFlags::parse(args);
    eprintln!("scoring call-graph recovery ({} mode)…", if flags.quick { "quick" } else { "full" });
    let report = funseeker_eval::callgraph::run(flags.quick);
    println!("## Call-edge precision/recall and graph-build throughput\n");
    println!("{}", report.render());
    flags.finish(
        "callgraph",
        |existing, label| report.append_to_document(existing, label),
        |committed| {
            funseeker_eval::callgraph::check_against(committed, &report, BENCH_CHECK_MIN_RATIO)
        },
    )
}

fn run_serve(args: &[String]) -> ! {
    let flags = BenchFlags::parse(args);
    eprintln!("load-testing the daemon ({} mode)…", if flags.quick { "quick" } else { "full" });
    let report = funseeker_eval::serve::run(flags.quick);
    println!("## Serving-layer load test\n");
    println!("{}", report.render());
    flags.finish(
        "serve",
        |existing, label| report.append_to_document(existing, label),
        |committed| funseeker_eval::serve::check_against(committed, &report, BENCH_CHECK_MIN_RATIO),
    )
}

fn run_io(args: &[String]) -> ! {
    let flags = BenchFlags::parse(args);
    eprintln!(
        "measuring the zero-copy I/O path ({} mode)…",
        if flags.quick { "quick" } else { "full" }
    );
    let report = funseeker_eval::io::run(flags.quick);
    println!("## Zero-copy I/O path\n");
    println!("{}", report.render());
    flags.finish(
        "io",
        |existing, label| report.append_to_document(existing, label),
        |committed| funseeker_eval::io::check_against(committed, &report, BENCH_CHECK_MIN_RATIO),
    )
}

fn run_multicore(args: &[String]) -> ! {
    let mut quick = false;
    let mut cores: Option<usize> = None;
    let mut json_sweep: Option<String> = None;
    let mut json_batch: Option<String> = None;
    let mut check: Option<String> = None;
    let mut label = "run".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--cores" => {
                i += 1;
                cores = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--json-sweep" => {
                i += 1;
                json_sweep = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json-batch" => {
                i += 1;
                json_batch = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--label" => {
                i += 1;
                label = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    eprintln!("measuring multi-core scaling ({} mode)…", if quick { "quick" } else { "full" });
    let report = funseeker_eval::multicore::run(quick, cores);
    println!("## Multi-core scaling\n");
    println!("{}", report.render());

    let append = |path: &str, doc: String| {
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("multicore: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("multicore: appended entry {label:?} to {path}");
    };
    if let Some(path) = &json_sweep {
        let existing = std::fs::read_to_string(path).ok();
        append(path, report.append_to_sweep_document(existing.as_deref(), &label));
    }
    if let Some(path) = &json_batch {
        let existing = std::fs::read_to_string(path).ok();
        append(path, report.append_to_batch_document(existing.as_deref(), &label));
    }
    if let Some(path) = &check {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("multicore: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        match funseeker_eval::multicore::check_against(&committed, &report, BENCH_CHECK_MIN_RATIO) {
            Ok(msg) => eprintln!("multicore check OK: {msg}"),
            Err(msg) => {
                eprintln!("multicore check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0)
}

/// Hidden helper subcommand: one rung of the scaling ladder, run in a
/// fresh process so the pool can be pinned to `--cores K` before first
/// use. Prints a single `MCPROBE` line for the parent to parse.
fn run_multicore_probe(args: &[String]) -> ! {
    let mut quick = false;
    let mut cores: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--cores" => {
                i += 1;
                cores = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let k = cores.unwrap_or_else(|| usage());
    if !funseeker_pool::configure_global(k) && funseeker_pool::global().workers() != k {
        eprintln!("multicore-probe: pool already running at a different width");
        std::process::exit(1);
    }
    let point = funseeker_eval::multicore::probe(quick);
    println!("{}", funseeker_eval::multicore::probe_line(&point));
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    if what == "perf" {
        // Perf builds its own deterministic tiled input — skip the
        // corpus generation below entirely.
        run_perf(&args[1..]);
    }
    if what == "batch" {
        // Likewise: batch builds its own duplicated corpus.
        run_batch(&args[1..]);
    }
    if what == "analyze" {
        // Likewise: the shared-plan bench reuses the batch benchmark
        // corpus (distinct images only).
        run_analyze(&args[1..]);
    }
    if what == "callgraph" {
        // Likewise: the call-graph evaluation owns its corpus.
        run_callgraph(&args[1..]);
    }
    if what == "serve" {
        // Likewise: the load test reuses the batch benchmark corpus.
        run_serve(&args[1..]);
    }
    if what == "io" {
        // Likewise: the I/O path bench reuses the batch benchmark corpus.
        run_io(&args[1..]);
    }
    if what == "multicore" {
        // Likewise: the scaling bench reuses the perf tiled text and
        // the batch benchmark corpus.
        run_multicore(&args[1..]);
    }
    if what == "multicore-probe" {
        run_multicore_probe(&args[1..]);
    }
    let mut seed = 2022u64; // the paper's year, for a stable default
    let mut scale = "default".to_owned();
    let mut csv = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            _ => usage(),
        }
        i += 1;
    }

    let mut params = DatasetParams::default();
    match scale.as_str() {
        "tiny" => params.programs = (3, 2, 3),
        "default" => {}
        "large" => params.programs = (27, 8, 12),
        _ => usage(),
    }

    eprintln!(
        "generating corpus: {:?} programs × {} configs (seed {seed})…",
        params.programs,
        params.configs.len()
    );
    let t0 = Instant::now();
    let ds = Dataset::generate(&params, seed);
    let total_functions: usize = ds.binaries.iter().map(|b| b.truth.eval_entries().len()).sum();
    eprintln!(
        "corpus ready: {} binaries, {} ground-truth functions ({:.1}s)",
        ds.len(),
        total_functions,
        t0.elapsed().as_secs_f64()
    );

    let run_one = |name: &str| {
        let t = Instant::now();
        match name {
            "table1" => {
                let t = funseeker_eval::table1::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table I — end-branch location distribution\n");
                    println!("{}", t.render());
                }
            }
            "fig3" => {
                println!("## Figure 3 — syntactic property relation\n");
                println!("{}", funseeker_eval::fig3::run(&ds).render());
            }
            "table2" => {
                let t = funseeker_eval::table2::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table II — FunSeeker configurations (1)-(4)\n");
                    println!("{}", t.render());
                }
            }
            "table3" => {
                let t = funseeker_eval::table3::run(&ds);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Table III — tool comparison\n");
                    println!("{}", t.render());
                }
            }
            "by-opt" => {
                println!("## Per-optimization-level breakdown (extension)\n");
                println!("{}", funseeker_eval::by_opt::run(&ds).render());
            }
            "arm" => {
                println!("## ARM BTI extension (Section VI future work)\n");
                println!("{}", funseeker_eval::arm::run(40, seed).render());
            }
            "manual-endbr" => {
                println!("## Section VI — -mmanual-endbr ablation\n");
                println!("{}", funseeker_eval::manual_endbr::run(&params, seed).render());
            }
            "failures" => {
                println!("## Section V-C — failure analysis (configuration (4))\n");
                println!("{}", funseeker_eval::failures::run(&ds).render());
            }
            "robustness" => {
                let t = funseeker_eval::robustness::run(&ds, seed);
                if csv {
                    print!("{}", t.render_csv());
                } else {
                    println!("## Robustness — hostile-input mutation campaign (extension)\n");
                    println!("{}", t.render());
                }
            }
            _ => usage(),
        }
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    };

    match what.as_str() {
        "all" => {
            for name in [
                "table1",
                "fig3",
                "table2",
                "table3",
                "failures",
                "by-opt",
                "manual-endbr",
                "arm",
                "robustness",
            ] {
                run_one(name);
                println!();
            }
        }
        other => run_one(other),
    }
}
