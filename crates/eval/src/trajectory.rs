//! Shared plumbing for benchmark *trajectory* files
//! (`BENCH_sweep.json`, `BENCH_batch.json`).
//!
//! A trajectory is a committed JSON document that accumulates one entry
//! per measured run, so the repository records how throughput evolved
//! across changes and CI can gate on the newest committed entry. The
//! workspace has no serde; the format is line-oriented by construction
//! — entries start at `    {"label":` and close at `    ]}` — so this
//! module reads documents as lines, not as a JSON tree. Both the sweep
//! ([`crate::perf`]) and batch ([`crate::batch`]) reports emit and
//! parse through here.

/// Wraps pre-rendered entry objects into a complete document under
/// `schema`.
pub fn json_document(schema: &str, entries: &[String]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n  \"schema\": {schema:?},\n  \"entries\": [\n"));
    s.push_str(&entries.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Appends one rendered entry to an existing document (or starts a
/// fresh one when `existing` is `None` or unparsable).
pub fn append_entry(existing: Option<&str>, schema: &str, entry: String) -> String {
    let mut entries = existing.map(extract_entries).unwrap_or_default();
    entries.push(entry);
    json_document(schema, &entries)
}

/// Pulls the raw entry objects back out of a document written by
/// [`json_document`].
pub fn extract_entries(doc: &str) -> Vec<String> {
    let mut entries = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        if line.starts_with("    {\"label\":") {
            current = Some(line.to_owned());
        } else if let Some(cur) = current.as_mut() {
            cur.push('\n');
            if line.trim_start().starts_with("]}") {
                // Strip only the comma that separates entry objects;
                // commas *inside* an entry (between its row objects)
                // are part of the entry and must survive a round trip.
                cur.push_str(line.trim_end_matches(','));
                entries.push(current.take().expect("current entry exists"));
            } else {
                cur.push_str(line);
            }
        }
    }
    entries
}

/// The newest value of numeric `field` on the row named `config`,
/// scanning the whole document so later entries win.
pub fn last_value(doc: &str, config: &str, field: &str) -> Option<f64> {
    let needle = format!("\"config\": {config:?}");
    let field_key = format!("\"{field}\": ");
    let mut last = None;
    for line in doc.lines() {
        if !line.contains(&needle) {
            continue;
        }
        let (_, rest) = line.split_once(&field_key)?;
        let num: String =
            rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(v) = num.parse::<f64>() {
            last = Some(v);
        }
    }
    last
}

/// The newest value of numeric `field` on the *entry header* line (the
/// `    {"label": …}` line) of the newest entry whose rows include
/// `config`. This is how `--check` gates read host metadata
/// (`cores_used`, `avail_par`) recorded next to a row: older entries
/// predating the metadata simply return `None`, which gates treat as
/// "comparable" for continuity.
pub fn last_row_meta(doc: &str, config: &str, field: &str) -> Option<f64> {
    let needle = format!("\"config\": {config:?}");
    let field_key = format!("\"{field}\": ");
    let mut header: Option<&str> = None;
    let mut last = None;
    for line in doc.lines() {
        if line.starts_with("    {\"label\":") {
            header = Some(line);
            continue;
        }
        if !line.contains(&needle) {
            continue;
        }
        let Some(h) = header else { continue };
        let Some((_, rest)) = h.split_once(&field_key) else { continue };
        let num: String =
            rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(v) = num.parse::<f64>() {
            last = Some(v);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, value: f64) -> String {
        format!(
            "    {{\"label\": {label:?}, \"rows\": [\n      \
             {{\"config\": \"cold\", \"bins_per_s\": {value:.1}}},\n      \
             {{\"config\": \"warm\", \"bins_per_s\": {:.1}}}\n    ]}}",
            value * 10.0
        )
    }

    #[test]
    fn document_append_and_extract_round_trip() {
        let doc = append_entry(None, "test-v1", entry("pre", 10.0));
        assert!(doc.contains("\"schema\": \"test-v1\""));
        assert_eq!(extract_entries(&doc), vec![entry("pre", 10.0)]);
        let doc2 = append_entry(Some(&doc), "test-v1", entry("post", 20.0));
        // Entries survive a round trip byte for byte — in particular the
        // commas between an entry's row objects.
        assert_eq!(extract_entries(&doc2), vec![entry("pre", 10.0), entry("post", 20.0)]);
        assert!(doc2.contains("\"label\": \"pre\""));
        assert!(doc2.contains("\"label\": \"post\""));
    }

    #[test]
    fn last_value_prefers_newest_entry() {
        let doc = append_entry(None, "test-v1", entry("pre", 10.0));
        let doc = append_entry(Some(&doc), "test-v1", entry("post", 20.0));
        assert_eq!(last_value(&doc, "cold", "bins_per_s"), Some(20.0));
        assert_eq!(last_value(&doc, "warm", "bins_per_s"), Some(200.0));
        assert_eq!(last_value(&doc, "absent_config", "bins_per_s"), None);
        assert_eq!(last_value(&doc, "cold", "absent_field"), None);
    }

    #[test]
    fn row_meta_comes_from_owning_entry_header() {
        let old = entry("pre", 10.0); // no host metadata on this header
        let new =
            "    {\"label\": \"post\", \"cores_used\": 4, \"avail_par\": 8, \"rows\": [\n      \
             {\"config\": \"cold\", \"bins_per_s\": 20.0}\n    ]}"
                .to_owned();
        let doc = append_entry(None, "test-v1", old);
        assert_eq!(last_row_meta(&doc, "cold", "cores_used"), None, "pre-metadata entry");
        let doc = append_entry(Some(&doc), "test-v1", new);
        assert_eq!(last_row_meta(&doc, "cold", "cores_used"), Some(4.0));
        assert_eq!(last_row_meta(&doc, "cold", "avail_par"), Some(8.0));
        assert_eq!(last_row_meta(&doc, "warm", "cores_used"), None, "row only in old entry");
        assert_eq!(last_row_meta(&doc, "cold", "absent"), None);
    }
}
