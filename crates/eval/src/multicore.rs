//! Multi-core scaling bench — the `experiments -- multicore` subcommand.
//!
//! Measures how the three aggregate layers scale with worker-pool
//! width: the morsel-driven sharded sweep over the 4 MiB tiled `.text`
//! (vs the sequential sweep on the same bytes), the batch engine's
//! corpus aggregate throughput, and the serving layer under
//! distinct-heavy traffic.
//!
//! Pool width is fixed at process start (`FUNSEEKER_CORES` is read once
//! when the global pool initializes), so one process cannot honestly
//! measure several widths. The bench therefore re-executes itself: the
//! parent walks a power-of-two ladder up to the requested core count,
//! runs the rung matching its own pool width in-process, and spawns
//! `experiments -- multicore-probe --cores K` subprocesses for every
//! other rung. Each probe prints one machine-readable `MCPROBE` line
//! (see [`probe_line`]) that the parent parses back into a
//! [`ScalePoint`]. On a single-core host the ladder collapses to `[1]`
//! and everything runs in-process.
//!
//! Every probe asserts the morsel-sharded sweep's instruction stream is
//! **bit-identical** to the sequential sweep's before any number is
//! reported — scaling that changes output is a bug, not a speedup.
//!
//! Results append to *both* trajectory files: sweep scaling rows
//! (`mc{K}`) to `BENCH_sweep.json`, aggregate + serve rows to
//! `BENCH_batch.json`. The `--check` gate fails if any ≥2-core rung's
//! morsel sweep is slower than its own sequential sweep; on a 1-core
//! host it instead verifies the sequential fallback engaged (one shard,
//! no stitch) and skips the scaling comparison.

use std::time::Instant;

use funseeker_batch::BatchOptions;
use funseeker_disasm::{par_sweep, sweep_all};

use crate::serve::ServeRow;
use crate::trajectory;

/// One rung of the scaling ladder: every throughput measured with the
/// worker pool fixed at `cores`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Worker-pool width this rung ran with.
    pub cores: usize,
    /// Sequential sweep throughput over the tiled text, MiB/s.
    pub seq_mb_s: f64,
    /// Morsel-driven sharded sweep throughput on the same bytes, MiB/s.
    pub morsel_mb_s: f64,
    /// Shards the adaptive sweep actually dispatched (1 = sequential
    /// fallback engaged).
    pub shards: usize,
    /// Batch-engine corpus aggregate throughput, binaries/s (nocache
    /// driver, so every image costs a full analysis).
    pub bins_per_s: f64,
    /// Whether the sharded stream was bit-identical to the sequential
    /// one (always asserted by [`probe`]; carried so subprocess rungs
    /// report it too).
    pub identical: bool,
}

/// The full measurement: the ladder plus one serving-layer row taken at
/// the widest configuration.
#[derive(Debug, Clone)]
pub struct MulticoreReport {
    /// Bytes of tiled `.text` swept per sweep measurement.
    pub bytes: usize,
    /// Repetitions per measurement (best is reported).
    pub reps: usize,
    /// Execution environment of the parent run (pool width = the
    /// ladder's top rung, host cores, kernel tier).
    pub host: crate::host::Host,
    /// Measured rungs, ascending by core count.
    pub ladder: Vec<ScalePoint>,
    /// Distinct-heavy serving row measured at the top rung's width
    /// (throughput and latency tail, incl. p99).
    pub serve: ServeRow,
}

/// Measures one rung **in-process** at the current global pool width.
///
/// Asserts the morsel-sharded stream is bit-identical to the sequential
/// stream before reporting any throughput.
pub fn probe(quick: bool) -> ScalePoint {
    let target = if quick { 2 << 20 } else { 4 << 20 };
    let reps = if quick { 3 } else { 5 };
    let (code, base, mode) = crate::perf::tiled_text(target);
    let mb = code.len() as f64 / (1024.0 * 1024.0);
    let cores = funseeker_pool::global().workers();

    // Warm-up faults the buffer in and spins up the pool.
    let baseline = sweep_all(&code, base, mode);

    let mut seq_best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let out = sweep_all(&code, base, mode);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(out.stream.len());
        seq_best = seq_best.min(dt);
    }

    let mut morsel_best = f64::MAX;
    let mut shards = 0usize;
    let mut identical = true;
    for _ in 0..reps {
        let t = Instant::now();
        let out = par_sweep(&code, base, mode, cores);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(out.stream.len());
        identical &= out.stream == baseline.stream;
        shards = out.stats.shards as usize;
        morsel_best = morsel_best.min(dt);
    }
    assert!(identical, "morsel-sharded sweep diverged from sequential at {cores} cores");

    // Corpus aggregate: the nocache driver, so throughput reflects real
    // analysis work on every image rather than cache hits.
    let (images, _) = crate::batch::corpus(quick);
    let configs = [funseeker::Config::c4()];
    let opts = BatchOptions { cache: false, ..Default::default() };
    let batch_reps = if quick { 2 } else { 3 };
    let mut batch_best = f64::MAX;
    for _ in 0..batch_reps {
        let t = Instant::now();
        let out = funseeker_batch::run(&images, &configs, &opts);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(out.results.len());
        batch_best = batch_best.min(dt);
    }

    ScalePoint {
        cores,
        seq_mb_s: mb / seq_best,
        morsel_mb_s: mb / morsel_best,
        shards,
        bins_per_s: images.len() as f64 / batch_best,
        identical,
    }
}

/// Renders a rung as the single machine-readable line a probe
/// subprocess prints for its parent.
pub fn probe_line(p: &ScalePoint) -> String {
    format!(
        "MCPROBE cores={} seq_mb_s={:.3} morsel_mb_s={:.3} shards={} bins_per_s={:.3} \
         identical={}",
        p.cores,
        p.seq_mb_s,
        p.morsel_mb_s,
        p.shards,
        p.bins_per_s,
        u8::from(p.identical),
    )
}

/// Parses a [`probe_line`] back into a rung; `None` for any line that
/// is not a complete `MCPROBE` record.
pub fn parse_probe_line(line: &str) -> Option<ScalePoint> {
    let rest = line.trim().strip_prefix("MCPROBE ")?;
    let mut cores = None;
    let mut seq = None;
    let mut morsel = None;
    let mut shards = None;
    let mut bins = None;
    let mut identical = None;
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "cores" => cores = value.parse::<usize>().ok(),
            "seq_mb_s" => seq = value.parse::<f64>().ok(),
            "morsel_mb_s" => morsel = value.parse::<f64>().ok(),
            "shards" => shards = value.parse::<usize>().ok(),
            "bins_per_s" => bins = value.parse::<f64>().ok(),
            "identical" => identical = value.parse::<u8>().ok().map(|v| v != 0),
            _ => {}
        }
    }
    Some(ScalePoint {
        cores: cores?,
        seq_mb_s: seq?,
        morsel_mb_s: morsel?,
        shards: shards?,
        bins_per_s: bins?,
        identical: identical?,
    })
}

/// The power-of-two ladder up to `top` (inclusive; `top` itself is
/// appended when it is not a power of two).
fn ladder(top: usize) -> Vec<usize> {
    let mut rungs = Vec::new();
    let mut k = 1usize;
    while k <= top {
        rungs.push(k);
        k *= 2;
    }
    if *rungs.last().unwrap_or(&0) != top {
        rungs.push(top);
    }
    rungs
}

/// Spawns `experiments -- multicore-probe --cores K` and parses its
/// `MCPROBE` line. `None` when the subprocess fails or prints no record
/// (e.g. the current executable is not the experiments binary).
fn subprocess_probe(k: usize, quick: bool) -> Option<ScalePoint> {
    let exe = std::env::current_exe().ok()?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("multicore-probe").arg("--cores").arg(k.to_string());
    if quick {
        cmd.arg("--quick");
    }
    // Belt and braces: the probe subcommand configures the pool from
    // --cores before first use, but the env var covers any pool touch
    // that might precede argument parsing in future refactors.
    cmd.env("FUNSEEKER_CORES", k.to_string());
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout.lines().rev().find_map(parse_probe_line)
}

/// Runs the full measurement. `cores` caps the ladder (default: the
/// host's `available_parallelism`). The rung matching this process's
/// pool width runs in-process; other rungs run as subprocesses and are
/// skipped (with a note on stderr) if re-execution fails.
pub fn run(quick: bool, cores: Option<usize>) -> MulticoreReport {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let top = cores.unwrap_or(avail).max(1);
    // Pin this process's pool to the top rung. If the pool is already
    // running at another width (library callers, tests), the in-process
    // rung simply lands wherever the pool is.
    let _ = funseeker_pool::configure_global(top);
    let own = funseeker_pool::global().workers();

    let mut points = Vec::new();
    for k in ladder(top) {
        let point = if k == own { Some(probe(quick)) } else { subprocess_probe(k, quick) };
        match point {
            Some(p) => points.push(p),
            None => eprintln!(
                "multicore: skipping {k}-core rung (subprocess probe unavailable from this binary)"
            ),
        }
    }
    points.sort_by_key(|p| p.cores);

    let serve = crate::serve::distinct_probe(quick);

    MulticoreReport {
        bytes: if quick { 2 << 20 } else { 4 << 20 },
        reps: if quick { 3 } else { 5 },
        host: crate::host::host(),
        ladder: points,
        serve,
    }
}

impl MulticoreReport {
    /// Parallel efficiency of a rung: morsel throughput relative to
    /// `cores ×` the 1-core *sequential* baseline. `None` without a
    /// 1-core rung to anchor it.
    pub fn efficiency(&self, p: &ScalePoint) -> Option<f64> {
        let base = self.ladder.iter().find(|q| q.cores == 1)?.seq_mb_s;
        (base > 0.0).then(|| p.morsel_mb_s / (p.cores as f64 * base))
    }

    /// Human-readable scaling table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "tiled .text: {:.1} MiB, best of {} runs, host offers {} core(s), tier {}\n\n",
            self.bytes as f64 / (1024.0 * 1024.0),
            self.reps,
            self.host.available_parallelism,
            self.host.tier,
        ));
        s.push_str(&format!(
            "{:<7} {:>10} {:>12} {:>7} {:>9} {:>11} {:>10}\n",
            "cores", "seq MB/s", "morsel MB/s", "shards", "speedup", "efficiency", "bins/s"
        ));
        for p in &self.ladder {
            let speedup = if p.seq_mb_s > 0.0 { p.morsel_mb_s / p.seq_mb_s } else { 0.0 };
            let eff = self
                .efficiency(p)
                .map_or_else(|| "n/a".to_owned(), |e| format!("{:.0}%", e * 100.0));
            s.push_str(&format!(
                "{:<7} {:>10.1} {:>12.1} {:>7} {:>8.2}x {:>11} {:>10.1}\n",
                p.cores, p.seq_mb_s, p.morsel_mb_s, p.shards, speedup, eff, p.bins_per_s,
            ));
        }
        s.push_str(&format!(
            "\nserving (distinct-heavy, {} requests): {:.1} req/s, p50 {} µs, p99 {} µs, \
             {} busy\n",
            self.serve.requests,
            self.serve.req_per_s,
            self.serve.p50_us,
            self.serve.p99_us,
            self.serve.busy,
        ));
        s
    }

    /// The sweep-scaling trajectory entry (`BENCH_sweep.json` schema):
    /// one `mc{K}` row per rung, `mb_per_s` carrying the morsel
    /// throughput so the standard parser finds it.
    pub fn sweep_json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"bytes\": {}, \"reps\": {}, {}, \"rows\": [\n",
            label,
            self.bytes,
            self.reps,
            self.host.json_fields()
        ));
        for (i, p) in self.ladder.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": \"mc{}\", \"cores\": {}, \"mb_per_s\": {:.1}, \
                 \"seq_mb_per_s\": {:.1}, \"shards\": {}, \"efficiency\": {:.3}}}{}\n",
                p.cores,
                p.cores,
                p.morsel_mb_s,
                p.seq_mb_s,
                p.shards,
                self.efficiency(p).unwrap_or(0.0),
                if i + 1 < self.ladder.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// The aggregate-throughput trajectory entry (`BENCH_batch.json`
    /// schema): one `mc{K}` row per rung plus the serving row.
    pub fn batch_json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"reps\": {}, {}, \"rows\": [\n",
            label,
            self.reps,
            self.host.json_fields()
        ));
        for p in &self.ladder {
            s.push_str(&format!(
                "      {{\"config\": \"mc{}\", \"cores\": {}, \"bins_per_s\": {:.1}}},\n",
                p.cores, p.cores, p.bins_per_s,
            ));
        }
        s.push_str(&format!(
            "      {{\"config\": \"mc_serve_distinct\", \"req_per_s\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"busy\": {}, \"requests\": {}}}\n",
            self.serve.req_per_s,
            self.serve.p50_us,
            self.serve.p99_us,
            self.serve.busy,
            self.serve.requests,
        ));
        s.push_str("    ]}");
        s
    }

    /// Appends this run to an existing `BENCH_sweep.json` document (or
    /// starts a fresh one).
    pub fn append_to_sweep_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, crate::perf::SCHEMA, self.sweep_json_entry(label))
    }

    /// Appends this run to an existing `BENCH_batch.json` document (or
    /// starts a fresh one).
    pub fn append_to_batch_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, crate::batch::SCHEMA, self.batch_json_entry(label))
    }
}

/// CI regression gate over the fresh scaling run.
///
/// * Every rung must have produced a bit-identical stream.
/// * Every ≥2-core rung's morsel sweep must at least match its own
///   sequential sweep (95 % floor for timer noise) — "sharded slower
///   than sequential on a multi-core host" is the regression this
///   bench exists to catch.
/// * The top rung's morsel throughput is compared against the newest
///   committed `mc{K}` row at the same core count, noise-free 70 %
///   floor; mismatched or absent committed entries skip that part.
/// * On a 1-core ladder the scaling comparison is vacuous; the gate
///   instead verifies the sequential fallback engaged (one shard).
pub fn check_against(
    committed_sweep: &str,
    fresh: &MulticoreReport,
    min_ratio: f64,
) -> Result<String, String> {
    if fresh.ladder.is_empty() {
        return Err("no scaling rungs measured".into());
    }
    for p in &fresh.ladder {
        if !p.identical {
            return Err(format!("{}-core rung produced a divergent stream", p.cores));
        }
    }
    let top = fresh.ladder.last().expect("non-empty ladder");

    if top.cores == 1 {
        if top.shards != 1 {
            return Err(format!(
                "single-core rung dispatched {} shards; the sequential fallback must engage",
                top.shards
            ));
        }
        return Ok(format!(
            "single-core host: scaling gate skipped; sequential fallback verified \
             ({:.1} MB/s seq, {:.1} MB/s via adaptive path)",
            top.seq_mb_s, top.morsel_mb_s
        ));
    }

    for p in fresh.ladder.iter().filter(|p| p.cores >= 2) {
        if p.morsel_mb_s < 0.95 * p.seq_mb_s {
            return Err(format!(
                "{}-core morsel sweep ({:.1} MB/s) slower than sequential ({:.1} MB/s)",
                p.cores, p.morsel_mb_s, p.seq_mb_s
            ));
        }
    }

    let config = format!("mc{}", top.cores);
    let committed_cores = trajectory::last_row_meta(committed_sweep, &config, "cores_used");
    let baseline = trajectory::last_value(committed_sweep, &config, "mb_per_s");
    match baseline {
        Some(base) if fresh.host.comparable_with(committed_cores) => {
            let ratio = top.morsel_mb_s / base;
            let msg = format!(
                "{}-core morsel sweep: {:.1} MB/s vs committed {:.1} MB/s ({:.0}% of baseline)",
                top.cores,
                top.morsel_mb_s,
                base,
                ratio * 100.0
            );
            if ratio < min_ratio {
                Err(msg)
            } else {
                Ok(msg)
            }
        }
        Some(_) => Ok(format!(
            "scaling invariants hold; committed {config} entry was measured at a different \
             width — baseline comparison skipped"
        )),
        None => Ok(format!(
            "scaling invariants hold at {} cores; no committed {config} entry to gate against",
            top.cores
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_point(cores: usize, seq: f64, morsel: f64, shards: usize) -> ScalePoint {
        ScalePoint {
            cores,
            seq_mb_s: seq,
            morsel_mb_s: morsel,
            shards,
            bins_per_s: 40.0 * cores as f64,
            identical: true,
        }
    }

    fn fake_report(top: usize) -> MulticoreReport {
        let ladder = super::ladder(top)
            .into_iter()
            .map(|k| {
                let seq = 250.0;
                let morsel = if k == 1 { 248.0 } else { 250.0 * 0.9 * k as f64 };
                fake_point(k, seq, morsel, if k == 1 { 1 } else { 4 * k })
            })
            .collect();
        MulticoreReport {
            bytes: 2 << 20,
            reps: 3,
            host: crate::host::Host {
                cores_used: top,
                available_parallelism: top,
                tier: "swar".into(),
            },
            ladder,
            serve: ServeRow {
                label: "mc_serve_distinct".into(),
                ms: 120.0,
                sd_ms: 5.0,
                req_per_s: 533.0,
                p50_us: 1500,
                p99_us: 30_000,
                busy: 12,
                hit_rate: 0.0,
                peak_open: 17,
                requests: 64,
            },
        }
    }

    #[test]
    fn probe_line_round_trips() {
        let p = fake_point(4, 251.337, 901.2, 16);
        let line = probe_line(&p);
        let back = parse_probe_line(&line).expect("round trip");
        assert_eq!(back.cores, 4);
        assert_eq!(back.shards, 16);
        assert!(back.identical);
        assert!((back.seq_mb_s - 251.337).abs() < 1e-6);
        assert!((back.morsel_mb_s - 901.2).abs() < 1e-6);
        // Garbage and partial records parse to nothing.
        assert!(parse_probe_line("MCPROBE cores=2").is_none());
        assert!(parse_probe_line("something else").is_none());
        assert!(parse_probe_line(
            "MCPROBE cores=x seq_mb_s=1 morsel_mb_s=1 shards=1 \
                                  bins_per_s=1 identical=1"
        )
        .is_none());
    }

    #[test]
    fn ladder_shapes() {
        assert_eq!(super::ladder(1), [1]);
        assert_eq!(super::ladder(2), [1, 2]);
        assert_eq!(super::ladder(8), [1, 2, 4, 8]);
        assert_eq!(super::ladder(6), [1, 2, 4, 6]);
    }

    #[test]
    fn json_entries_land_in_both_documents() {
        let r = fake_report(4);
        let sweep = r.append_to_sweep_document(None, "multicore");
        assert!(sweep.contains("funseeker-bench-sweep-v1"));
        assert_eq!(trajectory::last_value(&sweep, "mc4", "mb_per_s"), Some(900.0));
        assert_eq!(trajectory::last_row_meta(&sweep, "mc4", "cores_used"), Some(4.0));
        let batch = r.append_to_batch_document(None, "multicore");
        assert!(batch.contains("funseeker-bench-batch-v1"));
        assert_eq!(trajectory::last_value(&batch, "mc2", "bins_per_s"), Some(80.0));
        assert_eq!(trajectory::last_value(&batch, "mc_serve_distinct", "p99_us"), Some(30_000.0));
    }

    #[test]
    fn gate_passes_scaling_and_fails_shard_regression() {
        let r = fake_report(4);
        let doc = r.append_to_sweep_document(None, "multicore");
        assert!(check_against(&doc, &r, 0.7).is_ok());
        // A rung where sharding lost to sequential must fail.
        let mut regressed = fake_report(4);
        regressed.ladder[1].morsel_mb_s = 0.5 * regressed.ladder[1].seq_mb_s;
        assert!(check_against(&doc, &regressed, 0.7).is_err());
        // A divergent stream fails regardless of throughput.
        let mut divergent = fake_report(4);
        divergent.ladder[2].identical = false;
        assert!(check_against(&doc, &divergent, 0.7).is_err());
        // Big drop vs the committed baseline fails.
        let mut slow = fake_report(4);
        for p in &mut slow.ladder {
            p.morsel_mb_s *= 0.5;
            p.seq_mb_s *= 0.5;
        }
        assert!(check_against(&doc, &slow, 0.7).is_err());
    }

    #[test]
    fn gate_single_core_verifies_fallback_and_skips_scaling() {
        let r = fake_report(1);
        let doc = r.append_to_sweep_document(None, "multicore");
        let msg = check_against(&doc, &r, 0.7).expect("1-core run passes via fallback check");
        assert!(msg.contains("scaling gate skipped"), "{msg}");
        let mut bad = fake_report(1);
        bad.ladder[0].shards = 3;
        assert!(check_against(&doc, &bad, 0.7).is_err(), "fallback must engage on 1 core");
    }

    #[test]
    fn gate_skips_baseline_on_width_mismatch() {
        // Committed entry at 4 cores; fresh run at 2 cores with a much
        // lower absolute number must still pass (invariants hold, the
        // baseline is not comparable).
        let wide = fake_report(4);
        let doc = wide.append_to_sweep_document(None, "multicore");
        let narrow = fake_report(2);
        let msg = check_against(&doc, &narrow, 0.7).expect("incomparable baseline must skip");
        assert!(msg.contains("baseline comparison skipped"), "{msg}");
        // With no committed entry at all, the gate still passes on the
        // invariants alone.
        let msg = check_against("", &narrow, 0.7).expect("no baseline must skip");
        assert!(msg.contains("no committed mc2 entry"), "{msg}");
    }

    #[test]
    fn quick_probe_measures_and_verifies_identity() {
        let p = probe(true);
        assert!(p.cores >= 1);
        assert!(p.identical);
        assert!(p.seq_mb_s > 0.0 && p.morsel_mb_s > 0.0 && p.bins_per_s > 0.0);
        if p.cores == 1 {
            assert_eq!(p.shards, 1, "1-worker pool must take the sequential fallback");
        } else {
            assert!(p.shards >= p.cores, "adaptive sweep should fan out past the pool width");
        }
        // The report renders with the rung and a serve row.
        let r = MulticoreReport {
            bytes: 2 << 20,
            reps: 3,
            host: crate::host::host(),
            ladder: vec![p],
            serve: fake_report(1).serve,
        };
        assert!(r.render().contains("cores"));
        assert!(r.sweep_json_entry("multicore").contains("\"config\": \"mc"));
        assert!(r.batch_json_entry("multicore").contains("mc_serve_distinct"));
    }
}
