//! Zero-copy I/O path measurement — the `experiments -- io`
//! subcommand.
//!
//! Quantifies the three legs of the zero-copy path introduced with the
//! `FSC3` cache format (DESIGN.md §7):
//!
//! | row | what it measures |
//! |---|---|
//! | `ingest_mmap` | cold ingestion via memory-mapped [`Image`]s: map + content-hash every corpus file (MB/s) |
//! | `ingest_read` | the same files through the buffered `fs::read` fallback (MB/s) |
//! | `decode_v3` | decoding `FSC3` binary cache records back into `Analysis` values (records/s) |
//! | `decode_v2` | the retired line-oriented v2 text codec on the same analyses (records/s) |
//! | `io_serve_dup` | a duplicate-heavy daemon barrage where every repeat reply is a memcpy of the cached pre-encoded record (req/s) |
//!
//! Every decoded analysis and every daemon reply is checked
//! bit-identical to the direct computation before it counts. Results
//! append to `BENCH_io.json` (same line-oriented trajectory format as
//! `BENCH_sweep.json`); `--check` gates CI on the newest committed
//! `decode_v3` throughput and on the in-run invariant that the v3
//! decoder is not slower than the v2 one.

use std::sync::Arc;
use std::time::Instant;

use funseeker::{Analysis, Config};
use funseeker_batch::{cache, hash_bytes, mix64, BatchOptions};
use funseeker_elf::Image;
use funseeker_server::{Server, ServerConfig};

use crate::batch::peak_rss_kb;
use crate::trajectory;

/// Trajectory schema tag for `BENCH_io.json`.
pub(crate) const SCHEMA: &str = "funseeker-bench-io-v1";

/// One measured leg of the I/O path.
#[derive(Debug, Clone)]
pub struct IoRow {
    /// Row name (`ingest_mmap`, `ingest_read`, `decode_v3`,
    /// `decode_v2`, `io_serve_dup`).
    pub label: String,
    /// Best-of-N wall time in milliseconds.
    pub ms: f64,
    /// Sample standard deviation of the wall time over the reps, ms.
    pub sd_ms: f64,
    /// Throughput on the best rep, in `unit`s.
    pub rate: f64,
    /// Unit of `rate` (`MB/s`, `records/s`, `req/s`).
    pub unit: &'static str,
    /// Per-row auxiliary ratio: mmap coverage for `ingest_mmap`
    /// (fraction of files actually mapped), pre-encoded-reply coverage
    /// for `io_serve_dup` (fraction of results served from cached
    /// bytes), 0 elsewhere.
    pub aux: f64,
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct IoReport {
    /// Distinct corpus binaries measured.
    pub binaries: usize,
    /// Total corpus bytes (the ingestion rows' numerator).
    pub total_bytes: u64,
    /// Repetitions per row (the best is reported).
    pub reps: usize,
    /// `VmHWM` of the process at the end, KiB.
    pub peak_rss_kb: u64,
    /// Execution environment of the run.
    pub host: crate::host::Host,
    /// Measured rows.
    pub rows: Vec<IoRow>,
}

/// Runs the measurement. `quick` shrinks the corpus, fleet, and
/// repetition count for CI smoke use.
pub fn run(quick: bool) -> IoReport {
    let (images, _) = crate::batch::corpus(quick);
    // The ingestion and codec rows work on the distinct prefix (the
    // corpus interleaves duplicates; one copy each is the honest
    // denominator for byte throughput).
    let config = Config::c4();
    let expected: Vec<Arc<Analysis>> =
        funseeker_batch::run(&images, std::slice::from_ref(&config), &BatchOptions::default())
            .results
            .into_iter()
            .map(|mut per_config| per_config.remove(0).expect("benchmark corpus parses"))
            .collect();
    let mut seen = std::collections::HashSet::new();
    let distinct: Vec<(&[u8], &Analysis)> = images
        .iter()
        .zip(&expected)
        .filter(|(img, _)| seen.insert(hash_bytes(img)))
        .map(|(img, a)| (img.as_slice(), a.as_ref()))
        .collect();
    let total_bytes: u64 = distinct.iter().map(|(img, _)| img.len() as u64).sum();
    let reps = if quick { 2 } else { 5 };

    let mut rows: Vec<IoRow> = Vec::new();
    let mut push = |label: &str, samples: &[f64], per_s_of: f64, unit: &'static str, aux: f64| {
        let (best_s, sd_s) = crate::variance::best_and_sd(samples);
        rows.push(IoRow {
            label: label.to_owned(),
            ms: best_s * 1e3,
            sd_ms: sd_s * 1e3,
            rate: per_s_of / best_s,
            unit,
            aux,
        });
    };

    // ---- ingestion: the same corpus written once to disk, then pulled
    // back through both paths. Both run against a warm page cache, so
    // the delta is the copy + allocation, not the disk.
    let dir = std::env::temp_dir().join(format!("funseeker-io-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create io bench dir");
    let paths: Vec<std::path::PathBuf> = distinct
        .iter()
        .enumerate()
        .map(|(i, (img, _))| {
            let path = dir.join(format!("{i:05}.bin"));
            std::fs::write(&path, img).expect("write io bench binary");
            path
        })
        .collect();

    let mut samples = Vec::with_capacity(reps);
    let mut mapped = 0usize;
    for _ in 0..reps {
        mapped = 0;
        let t = Instant::now();
        let mut sum = 0u64;
        for path in &paths {
            let image = Image::load(path).expect("io bench file readable");
            mapped += usize::from(image.is_mapped());
            sum ^= hash_bytes(&image);
        }
        samples.push(t.elapsed().as_secs_f64());
        assert_ne!(sum, 0, "hash mix is never zero over a real corpus");
    }
    let mb = total_bytes as f64 / 1e6;
    push("ingest_mmap", &samples, mb, "MB/s", mapped as f64 / paths.len() as f64);

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let mut sum = 0u64;
        for path in &paths {
            let bytes = std::fs::read(path).expect("io bench file readable");
            sum ^= hash_bytes(&bytes);
        }
        samples.push(t.elapsed().as_secs_f64());
        assert_ne!(sum, 0, "hash mix is never zero over a real corpus");
    }
    push("ingest_read", &samples, mb, "MB/s", 0.0);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- codec: the same analyses through both record formats,
    // decode verified bit-identical to the original.
    let fp = cache::config_fingerprint(&config);
    let keyed: Vec<(u64, &[u8], &Analysis)> =
        distinct.iter().map(|&(img, a)| (hash_bytes(img), img, a)).collect();
    let v3: Vec<(u64, Vec<u8>)> = keyed
        .iter()
        .map(|&(h, _, a)| (mix64(h, fp), cache::encode(h, fp, a).expect("corpus analyses encode")))
        .collect();
    let v2: Vec<(u64, String)> = keyed
        .iter()
        .map(|&(h, _, a)| {
            let key = mix64(h, fp);
            (key, cache::serialize_v2(key, a).expect("corpus analyses serialize"))
        })
        .collect();

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for ((key, record), &(_, _, a)) in v3.iter().zip(&keyed) {
            let decoded = cache::decode(*key, record).expect("round trip");
            assert_eq!(&decoded, a, "v3 decode diverged");
        }
        samples.push(t.elapsed().as_secs_f64());
    }
    push("decode_v3", &samples, v3.len() as f64, "records/s", 0.0);

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for ((key, text), &(_, _, a)) in v2.iter().zip(&keyed) {
            let decoded = cache::deserialize_v2(*key, text).expect("round trip");
            assert_eq!(&decoded, a, "v2 decode diverged");
        }
        samples.push(t.elapsed().as_secs_f64());
    }
    push("decode_v2", &samples, v2.len() as f64, "records/s", 0.0);

    // ---- serving: duplicate-heavy traffic, where after the first
    // computation every reply body is a memcpy of the cached
    // pre-encoded record.
    let threads = if quick { 8 } else { 64 };
    let per_thread = if quick { 8 } else { 48 };
    let sock = std::env::temp_dir().join(format!("fs-io-bench-{}.sock", std::process::id()));
    let mut server_config = ServerConfig::unix(&sock);
    server_config.max_connections = threads + 8;
    let server = Server::start(server_config).expect("bind io bench socket");
    let addr = server.addr().to_string();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let sample = crate::serve::barrage(&addr, &images, &expected, threads, per_thread, None);
        samples.push(sample.elapsed_s);
    }
    let reply_cached = {
        let mut probe = crate::serve::connect_retry(&addr);
        let stats = probe.stats().expect("io bench stats");
        let results = stats.get("results_total").unwrap_or(0);
        let hits = stats.get("reply_bytes_hits").unwrap_or(0);
        if results == 0 {
            0.0
        } else {
            hits as f64 / results as f64
        }
    };
    server.shutdown();
    server.join();
    push("io_serve_dup", &samples, (threads * per_thread) as f64, "req/s", reply_cached);

    IoReport {
        binaries: distinct.len(),
        total_bytes,
        reps,
        peak_rss_kb: peak_rss_kb(),
        host: crate::host::host(),
        rows,
    }
}

impl IoReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "corpus: {} distinct binaries ({:.1} MB), best of {} reps, peak RSS {:.1} MiB\n\n",
            self.binaries,
            self.total_bytes as f64 / 1e6,
            self.reps,
            self.peak_rss_kb as f64 / 1024.0,
        ));
        s.push_str(&format!(
            "{:<14} {:>10} {:>8} {:>12} {:<10} {:>8}\n",
            "row", "ms", "±sd", "rate", "unit", "aux"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<14} {:>10.2} {:>8.2} {:>12.1} {:<10} {:>7.0}%\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.rate,
                r.unit,
                r.aux * 100.0,
            ));
        }
        s
    }

    /// The trajectory entry for this run, as a JSON object literal.
    pub fn json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"binaries\": {}, \"total_bytes\": {}, \"reps\": {}, \
             \"peak_rss_kb\": {}, {}, \"rows\": [\n",
            label,
            self.binaries,
            self.total_bytes,
            self.reps,
            self.peak_rss_kb,
            self.host.json_fields()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": {:?}, \"ms\": {:.3}, \"sd_ms\": {:.3}, \"rate\": {:.1}, \
                 \"unit\": {:?}, \"aux\": {:.4}}}{}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.rate,
                r.unit,
                r.aux,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// Appends this run as a new entry to an existing `BENCH_io.json`
    /// document (or starts a fresh one).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, SCHEMA, self.json_entry(label))
    }
}

/// CI regression gate: the fresh `decode_v3` throughput must reach
/// `min_ratio` of the newest committed entry (noise-widened, and
/// skipped when the committed entry ran on a different core count), and
/// — unconditionally — the v3 decoder must not be slower than the v2
/// codec it replaced.
pub fn check_against(committed: &str, fresh: &IoReport, min_ratio: f64) -> Result<String, String> {
    let v3 = fresh
        .rows
        .iter()
        .find(|r| r.label == "decode_v3")
        .ok_or("fresh measurement has no decode_v3 row")?;
    let v2 = fresh
        .rows
        .iter()
        .find(|r| r.label == "decode_v2")
        .ok_or("fresh measurement has no decode_v2 row")?;
    if v3.rate < v2.rate {
        return Err(format!(
            "v3 decode ({:.1} records/s) is slower than the v2 codec it replaced \
             ({:.1} records/s)",
            v3.rate, v2.rate
        ));
    }
    let Some(baseline) = trajectory::last_value(committed, "decode_v3", "rate") else {
        return Err("committed BENCH_io.json has no decode_v3 entry".into());
    };
    let committed_cores = trajectory::last_row_meta(committed, "decode_v3", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "v3 {:.1}x the v2 codec; baseline skipped: committed decode_v3 entry was measured \
             with {} cores, this run uses {} — not comparable",
            v3.rate / v2.rate,
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = trajectory::last_value(committed, "decode_v3", "sd_ms")
        .zip(trajectory::last_value(committed, "decode_v3", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if v3.ms > 0.0 { v3.sd_ms / v3.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = v3.rate / baseline;
    let msg = format!(
        "v3 decode: {:.1} records/s vs committed {:.1} records/s ({:.0}% of baseline, threshold \
         {:.0}% incl. {:.0}% noise tolerance); {:.1}x the v2 codec",
        v3.rate,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
        v3.rate / v2.rate,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> IoReport {
        let row = |label: &str, rate: f64, unit: &'static str| IoRow {
            label: label.into(),
            ms: 50.0,
            sd_ms: 1.0,
            rate,
            unit,
            aux: 0.0,
        };
        IoReport {
            binaries: 100,
            total_bytes: 5_000_000,
            reps: 2,
            peak_rss_kb: 80_000,
            host: crate::host::host(),
            rows: vec![
                row("ingest_mmap", 900.0, "MB/s"),
                row("ingest_read", 600.0, "MB/s"),
                row("decode_v3", 50_000.0, "records/s"),
                row("decode_v2", 9_000.0, "records/s"),
                row("io_serve_dup", 12_000.0, "req/s"),
            ],
        }
    }

    #[test]
    fn json_round_trip_and_gate() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains(SCHEMA));
        assert_eq!(trajectory::last_value(&doc, "decode_v3", "rate"), Some(50_000.0));
        assert_eq!(trajectory::last_value(&doc, "ingest_mmap", "rate"), Some(900.0));
        assert!(check_against(&doc, &r, 0.7).is_ok());
        // A regression below threshold fails the gate.
        let mut slow = fake_report();
        slow.rows[2].rate = 10_000.0;
        assert!(check_against(&doc, &slow, 0.7).is_err());
        // v3 slower than v2 fails even when the baseline would pass.
        let mut inverted = fake_report();
        inverted.rows[2].rate = 8_000.0;
        inverted.rows[3].rate = 9_000.0;
        assert!(check_against(&doc, &inverted, 0.0).is_err());
        // Newest entry is authoritative after an append.
        let mut faster = fake_report();
        faster.rows[2].rate = 60_000.0;
        let doc2 = faster.append_to_document(Some(&doc), "post");
        assert_eq!(trajectory::last_value(&doc2, "decode_v3", "rate"), Some(60_000.0));
    }

    #[test]
    fn quick_measurement_covers_every_row() {
        let report = run(true);
        let get = |label: &str| {
            report
                .rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label} missing"))
        };
        for label in ["ingest_mmap", "ingest_read", "decode_v3", "decode_v2", "io_serve_dup"] {
            assert!(get(label).rate > 0.0, "{label} measured nothing");
        }
        if std::env::var("FUNSEEKER_MMAP").as_deref() != Ok("0") {
            assert!(get("ingest_mmap").aux > 0.99, "regular files must map");
        }
        // The duplicate-heavy barrage must actually exercise the
        // pre-encoded reply path.
        assert!(get("io_serve_dup").aux > 0.5, "reply-bytes coverage too low");
        assert!(!report.render().is_empty());
    }
}
