//! Table II — precision/recall of FunSeeker's four configurations
//! (the FILTERENDBR / SELECTTAILCALL ablation, §V-B).

use std::collections::BTreeMap;

use std::cell::RefCell;

use funseeker::{prepare, AnalysisPlan, Config, Scratch};
use funseeker_corpus::{Compiler, Dataset, Suite};

use crate::metrics::Score;
use crate::report::{pct, Table};
use crate::runner::par_map;

/// Scores per (compiler, suite) per configuration ①–④.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    /// `(compiler, suite) → [score_c1, score_c2, score_c3, score_c4]`.
    pub groups: BTreeMap<(&'static str, &'static str), [Score; 4]>,
    /// Dataset-wide totals.
    pub total: [Score; 4],
}

thread_local! {
    /// One scratch arena + analysis plan per evaluation worker, so the
    /// four-configuration column sweep pays one plan rebuild per binary
    /// and derives each column by set algebra.
    static WORKSPACE: RefCell<(Scratch, AnalysisPlan)> =
        RefCell::new((Scratch::new(), AnalysisPlan::new()));
}

/// Runs all four configurations over the dataset, reusing one
/// disassembly pass *and* one [`AnalysisPlan`] rebuild per binary (the
/// four columns differ only in set algebra over the plan's primitives).
pub fn run(ds: &Dataset) -> Table2 {
    let per_bin = par_map(&ds.binaries, |bin| {
        let truth = bin.truth.eval_entries();
        let prepared = prepare(&bin.bytes).expect("corpus binary parses");
        let mut scores = [Score::default(); 4];
        WORKSPACE.with(|w| {
            let (scratch, plan) = &mut *w.borrow_mut();
            plan.rebuild(&prepared.parsed, &prepared.index, scratch);
            for (i, (_, cfg)) in Config::table2().iter().enumerate() {
                let analysis = plan.derive(cfg, &prepared.parsed, &prepared.index, scratch);
                scores[i] = Score::from_funcset(&analysis.functions, &truth);
            }
        });
        (bin.config.compiler, bin.suite, scores)
    });

    let mut out = Table2::default();
    for (compiler, suite, scores) in per_bin {
        let group = out.groups.entry((compiler.label(), suite.label())).or_default();
        for i in 0..4 {
            group[i] += scores[i];
            out.total[i] += scores[i];
        }
    }
    out
}

impl Table2 {
    /// Builds the result table (paper layout).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "Compiler", "Suite", "1 Prec.", "1 Rec.", "2 Prec.", "2 Rec.", "3 Prec.", "3 Rec.",
            "4 Prec.", "4 Rec.",
        ]);
        for compiler in [Compiler::Gcc, Compiler::Clang] {
            for suite in Suite::ALL {
                let Some(g) = self.groups.get(&(compiler.label(), suite.label())) else { continue };
                let mut row = vec![compiler.label().to_owned(), suite.label().to_owned()];
                for s in g {
                    row.push(pct(s.precision()));
                    row.push(pct(s.recall()));
                }
                t.row(row);
            }
        }
        let mut row = vec!["Total".to_owned(), String::new()];
        for s in &self.total {
            row.push(pct(s.precision()));
            row.push(pct(s.recall()));
        }
        t.row(row);
        t
    }

    /// Renders the paper's Table II layout as markdown.
    pub fn render(&self) -> String {
        self.to_table().render()
    }

    /// Renders as CSV.
    pub fn render_csv(&self) -> String {
        self.to_table().render_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::DatasetParams;

    #[test]
    fn table2_shape_matches_paper() {
        let mut params = DatasetParams::tiny();
        params.programs = (3, 2, 3);
        params.configs = funseeker_corpus::BuildConfig::grid();
        let ds = Dataset::generate(&params, 44);
        let t2 = run(&ds);

        let [c1, c2, c3, c4] = t2.total;
        // ② strictly improves precision over ① and keeps recall.
        assert!(c2.precision() > c1.precision());
        assert_eq!(c1.recall(), c2.recall());
        // ③ maximizes recall but collapses precision.
        assert!(c3.recall() >= c2.recall());
        assert!(c3.precision() < 0.7);
        // ④ recovers precision (the paper's +73.18 points) and keeps a
        // recall edge over ②.
        assert!(c4.precision() - c3.precision() > 0.2);
        assert!(c4.recall() >= c2.recall());
        assert!(c4.precision() > 0.97);

        // SPEC (C++) is where ① hurts most for each compiler.
        for compiler in ["GCC", "Clang"] {
            let spec = &t2.groups[&(compiler, "SPEC CPU 2017")];
            let core = &t2.groups[&(compiler, "Coreutils")];
            assert!(
                spec[0].precision() < core[0].precision(),
                "{compiler}: ① precision should dip on C++-heavy SPEC"
            );
        }
        let rendered = t2.render();
        assert!(rendered.contains("Total"));
    }
}
