//! Batch-engine throughput measurement — the `experiments -- batch`
//! subcommand.
//!
//! Builds a deterministic corpus with the duplicate structure real
//! corpora have (the same binary recurring across optimization sweeps
//! and reruns — each generated image appears several times), then
//! measures binaries/second through five drivers:
//!
//! | row | what it measures |
//! |---|---|
//! | `flat` | the pre-batch driver: one `par_map` task per binary, fresh `prepare` + identify, no cache |
//! | `nocache` | the pipelined scheduler with caching *and dedup off* — isolates pipeline + scratch-arena gains |
//! | `cold` | the full engine, empty cache — dedup + pipeline + scratch |
//! | `warm` | a rerun against the populated in-memory cache — hash, look up, done |
//! | `disk` | a fresh process's view: empty memory cache served by the on-disk layer |
//!
//! Results append to the `BENCH_batch.json` trajectory (same
//! line-oriented format as `BENCH_sweep.json`, via
//! [`crate::trajectory`]) and `--check` gates CI on the newest
//! committed `cold` row. Peak RSS comes from `VmHWM` in
//! `/proc/self/status`, covering the whole process including the
//! corpus itself.

use std::sync::Arc;
use std::time::Instant;

use funseeker::{prepare, Analysis, Config, FunSeeker};
use funseeker_batch::{inflight_estimate, Ballast, BatchOptions, ResultCache};
use funseeker_corpus::{BuildConfig, Dataset, DatasetParams};
use funseeker_elf::Image;

use crate::runner::par_map_timed;
use crate::trajectory;

/// Seed for the benchmark corpus (shared with [`crate::perf`]).
const SEED: u64 = 0xBE7C4;

/// Trajectory schema tag for `BENCH_batch.json` (shared with
/// [`crate::serve`], whose rows land in the same document).
pub(crate) const SCHEMA: &str = "funseeker-bench-batch-v1";

/// How many times each generated image recurs in the corpus.
const DUPLICATES: usize = 3;

/// One measured driver.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Driver name (`flat`, `nocache`, `cold`, `warm`, `disk`).
    pub label: String,
    /// Best-of-N wall time in milliseconds for the whole corpus.
    pub ms: f64,
    /// Sample standard deviation of the wall time over the reps, in
    /// milliseconds — the run-to-run noise behind `ms`.
    pub sd_ms: f64,
    /// Corpus binaries analyzed per second (each under all four Table II
    /// configurations).
    pub bins_per_s: f64,
    /// Result-cache hit rate observed on the measured run.
    pub hit_rate: f64,
    /// Distinct images the run actually analyzed.
    pub unique_images: usize,
}

/// The full measurement: corpus description plus one row per driver.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Binaries in the corpus (after duplication).
    pub binaries: usize,
    /// Distinct images before duplication.
    pub distinct: usize,
    /// Configurations analyzed per binary.
    pub configs: usize,
    /// Repetitions per row (the minimum is reported).
    pub reps: usize,
    /// `VmHWM` of the process at the end of the measurement, in KiB.
    pub peak_rss_kb: u64,
    /// Execution environment of the run (pool width, host cores,
    /// kernel tier).
    pub host: crate::host::Host,
    /// Core-analyzer per-stage counters from the cold driver's measured
    /// run (see [`funseeker::StageStats`]).
    pub stage: funseeker::StageStats,
    /// Measured drivers.
    pub rows: Vec<BatchRow>,
}

/// Peak resident set size of this process (`VmHWM`), in KiB; 0 when
/// `/proc` is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// The benchmark corpus: a deterministic dataset with each image
/// repeated [`DUPLICATES`] times, interleaved so duplicates are not
/// adjacent (the scheduler must find them by content, not position).
/// Shared with the [`crate::serve`] load harness so the daemon is
/// measured over exactly the corpus the batch engine is.
pub(crate) fn corpus(quick: bool) -> (Vec<Vec<u8>>, usize) {
    let mut params = DatasetParams::tiny();
    if !quick {
        params.programs = (3, 2, 3);
        params.configs = BuildConfig::grid();
    }
    let ds = Dataset::generate(&params, SEED);
    let distinct = ds.binaries.len();
    let mut images = Vec::with_capacity(distinct * DUPLICATES);
    for round in 0..DUPLICATES {
        for bin in &ds.binaries {
            let _ = round;
            images.push(bin.bytes.clone());
        }
    }
    (images, distinct)
}

fn total_functions(results: &[Vec<Option<Arc<Analysis>>>]) -> usize {
    results
        .iter()
        .flat_map(|per_config| per_config.iter())
        .map(|a| a.as_ref().map_or(0, |a| a.functions.len()))
        .sum()
}

/// Runs the measurement. `quick` shrinks the corpus and repetition
/// count for CI smoke use.
pub fn run(quick: bool) -> BatchReport {
    let (images, distinct) = corpus(quick);
    let configs: Vec<Config> = Config::table2().iter().map(|&(_, c)| c).collect();
    // 5 reps in full mode: the first cold repetition pays every
    // worker's scratch/plan arena growth, so best-of needs a couple of
    // steady-state samples behind it.
    let reps = if quick { 2 } else { 5 };
    let n = images.len();
    let mut rows = Vec::new();
    let mut push = |label: &str, samples: &[f64], hit_rate: f64, unique: usize| {
        let (best_s, sd_s) = crate::variance::best_and_sd(samples);
        rows.push(BatchRow {
            label: label.to_owned(),
            ms: best_s * 1e3,
            sd_ms: sd_s * 1e3,
            bins_per_s: n as f64 / best_s,
            hit_rate,
            unique_images: unique,
        });
    };

    // Warm-up: initialize the pool, fault the corpus in.
    let _ = funseeker_batch::hash_bytes(&images[0]);
    let _ = funseeker_pool::global().workers();

    // ---- flat: the pre-batch driver. One task per binary, fresh
    // front end, fresh per-call scratch, no cache, no dedup.
    let mut flat_functions = 0usize;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let outs = par_map_timed(&images, |image| {
            let prepared = match prepare(image) {
                Ok(p) => p,
                Err(_) => return 0usize,
            };
            configs
                .iter()
                .map(|&c| FunSeeker::with_config(c).identify_prepared(&prepared).functions.len())
                .sum()
        });
        samples.push(t.elapsed().as_secs_f64());
        flat_functions = outs.iter().map(|(f, _)| f).sum();
    }
    push("flat", &samples, 0.0, n);

    // ---- nocache: pipeline + scratch arenas only.
    let mut samples = Vec::with_capacity(reps);
    let mut last_stats = None;
    let nocache_opts = BatchOptions { cache: false, ..Default::default() };
    for _ in 0..reps {
        let t = Instant::now();
        let out = funseeker_batch::run(&images, &configs, &nocache_opts);
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(total_functions(&out.results), flat_functions, "nocache diverged from flat");
        last_stats = Some(out.stats);
    }
    push("nocache", &samples, 0.0, last_stats.expect("ran").unique_images);

    // ---- cold: the full engine from an empty cache, fresh every rep.
    let mut samples = Vec::with_capacity(reps);
    let mut cold_cache = ResultCache::new();
    let mut cold_stats = None;
    for _ in 0..reps {
        let cache = ResultCache::new();
        let t = Instant::now();
        let out =
            funseeker_batch::run_with_cache(&images, &configs, &BatchOptions::default(), &cache);
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(total_functions(&out.results), flat_functions, "cold diverged from flat");
        cold_stats = Some(out.stats);
        cold_cache = cache;
    }
    let cold_stats = cold_stats.expect("ran");
    push("cold", &samples, cold_stats.hit_rate(), cold_stats.unique_images);
    let cold_stage = cold_stats.stage;

    // ---- warm: rerun against the last cold run's populated cache.
    let mut samples = Vec::with_capacity(reps);
    let mut warm_stats = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = funseeker_batch::run_with_cache(
            &images,
            &configs,
            &BatchOptions::default(),
            &cold_cache,
        );
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(total_functions(&out.results), flat_functions, "warm diverged from flat");
        warm_stats = Some(out.stats);
    }
    let warm_stats = warm_stats.expect("ran");
    push("warm", &samples, warm_stats.hit_rate(), warm_stats.unique_images);

    // ---- disk: an empty memory cache backed by a populated disk layer
    // (a fresh process rerunning yesterday's corpus).
    let dir = std::env::temp_dir().join(format!("funseeker-batch-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_opts = BatchOptions { disk_cache: Some(dir.clone()), ..Default::default() };
    // Populate the disk layer (untimed).
    let _ = funseeker_batch::run(&images, &configs, &disk_opts);
    let mut samples = Vec::with_capacity(reps);
    let mut disk_stats = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = funseeker_batch::run(&images, &configs, &disk_opts);
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(total_functions(&out.results), flat_functions, "disk diverged from flat");
        disk_stats = Some(out.stats);
    }
    let disk_stats = disk_stats.expect("ran");
    // On a fresh memory cache every lookup is a "miss"; the disk row's
    // hit rate is the fraction of those misses the disk layer served.
    let disk_rate = if disk_stats.cache_misses == 0 {
        0.0
    } else {
        disk_stats.disk_hits as f64 / disk_stats.cache_misses as f64
    };
    push("disk", &samples, disk_rate, disk_stats.unique_images);
    let _ = std::fs::remove_dir_all(&dir);

    BatchReport {
        binaries: n,
        distinct,
        configs: configs.len(),
        reps,
        peak_rss_kb: peak_rss_kb(),
        host: crate::host::host(),
        stage: cold_stage,
        rows,
    }
}

impl BatchReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "corpus: {} binaries ({} distinct ×{}), {} configs each, best of {} runs, \
             peak RSS {:.1} MiB\n\n",
            self.binaries,
            self.distinct,
            DUPLICATES,
            self.configs,
            self.reps,
            self.peak_rss_kb as f64 / 1024.0,
        ));
        s.push_str(&format!(
            "{:<9} {:>10} {:>8} {:>12} {:>10} {:>8}\n",
            "driver", "ms", "±sd", "binaries/s", "hit-rate", "unique"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<9} {:>10.1} {:>8.1} {:>12.1} {:>9.0}% {:>8}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.bins_per_s,
                r.hit_rate * 100.0,
                r.unique_images,
            ));
        }
        s.push_str(&format!(
            "\ncold analyze stages: filter {:.2}ms, tailcall {:.2}ms, bounds {:.2}ms, \
             interproc {:.2}ms ({} entry / {} tail / {} final candidates)\n",
            self.stage.filter_ns as f64 / 1e6,
            self.stage.tailcall_ns as f64 / 1e6,
            self.stage.boundaries_ns as f64 / 1e6,
            self.stage.interproc_ns as f64 / 1e6,
            self.stage.entry_candidates,
            self.stage.tail_candidates,
            self.stage.final_candidates,
        ));
        s
    }

    /// The trajectory entry for this run, as a JSON object literal.
    pub fn json_entry(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "    {{\"label\": {:?}, \"binaries\": {}, \"configs\": {}, \"reps\": {}, \
             \"peak_rss_kb\": {}, {}, \"rows\": [\n",
            label,
            self.binaries,
            self.configs,
            self.reps,
            self.peak_rss_kb,
            self.host.json_fields()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"config\": {:?}, \"ms\": {:.3}, \"sd_ms\": {:.3}, \
                 \"bins_per_s\": {:.1}, \"hit_rate\": {:.4}, \"unique\": {}}}{}\n",
                r.label,
                r.ms,
                r.sd_ms,
                r.bins_per_s,
                r.hit_rate,
                r.unique_images,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("    ]}");
        s
    }

    /// Appends this run as a new entry to an existing `BENCH_batch.json`
    /// document (or starts a fresh one).
    pub fn append_to_document(&self, existing: Option<&str>, label: &str) -> String {
        trajectory::append_entry(existing, SCHEMA, self.json_entry(label))
    }
}

/// The newest `bins_per_s` recorded for `config` in a committed
/// `BENCH_batch.json`, if any.
pub fn last_bins_per_s(doc: &str, config: &str) -> Option<f64> {
    trajectory::last_value(doc, config, "bins_per_s")
}

/// CI regression gate: compares the fresh report's cold-cache
/// throughput against the newest committed entry, failing when it fell
/// below `min_ratio` (e.g. `0.7` = fail on a >30 % regression). Like the
/// sweep gate, the threshold is widened by the run-to-run noise both
/// sides recorded (see [`crate::variance::noise_tolerance`]).
pub fn check_against(
    committed: &str,
    fresh: &BatchReport,
    min_ratio: f64,
) -> Result<String, String> {
    let Some(baseline) = last_bins_per_s(committed, "cold") else {
        return Err("committed BENCH_batch.json has no cold entry".into());
    };
    let Some(now) = fresh.rows.iter().find(|r| r.label == "cold") else {
        return Err("fresh measurement has no cold row".into());
    };
    let committed_cores = trajectory::last_row_meta(committed, "cold", "cores_used");
    if !fresh.host.comparable_with(committed_cores) {
        return Ok(format!(
            "skipped: committed cold entry was measured with {} cores, this run uses {} — \
             not comparable",
            committed_cores.unwrap_or(0.0),
            fresh.host.cores_used
        ));
    }
    let rel_committed = trajectory::last_value(committed, "cold", "sd_ms")
        .zip(trajectory::last_value(committed, "cold", "ms"))
        .map_or(0.0, |(sd, ms)| if ms > 0.0 { sd / ms } else { 0.0 });
    let rel_fresh = if now.ms > 0.0 { now.sd_ms / now.ms } else { 0.0 };
    let tol = crate::variance::noise_tolerance(rel_committed, rel_fresh);
    let threshold = min_ratio * (1.0 - tol);
    let ratio = now.bins_per_s / baseline;
    let msg = format!(
        "cold-cache batch: {:.1} binaries/s vs committed {:.1} binaries/s ({:.0}% of baseline, \
         threshold {:.0}% incl. {:.0}% noise tolerance)",
        now.bins_per_s,
        baseline,
        ratio * 100.0,
        threshold * 100.0,
        tol * 100.0,
    );
    if ratio < threshold {
        Err(msg)
    } else {
        Ok(msg)
    }
}

// ---------------------------------------------------------------------
// Paper-scale ingestion: the `--corpus-scale N` knob
// ---------------------------------------------------------------------

/// Hard cap on `--corpus-scale` (the paper's evaluation corpus is
/// ~8,000 binaries).
pub const SCALE_CAP: usize = 8000;

/// In-flight byte budget for the scaled run's [`Ballast`]. Deliberately
/// far below the corpus total so the RSS bound below is a real claim
/// about streaming ingestion, not slack.
const SCALE_INFLIGHT_BYTES: usize = 32 << 20;

/// Result of the paper-scale on-disk ingestion measurement: `N`
/// content-unique binaries written to disk, then streamed through the
/// analyzer via memory-mapped [`Image`]s under a [`Ballast`] admission
/// budget far smaller than the corpus.
#[derive(Debug, Clone)]
pub struct ScaledReport {
    /// Binaries written and analyzed.
    pub binaries: usize,
    /// Distinct generated base images the corpus was derived from.
    pub distinct_bases: usize,
    /// Total on-disk corpus size in bytes.
    pub total_bytes: u64,
    /// Wall time for the ingestion sweep, in milliseconds.
    pub ms: f64,
    /// Binaries analyzed per second.
    pub bins_per_s: f64,
    /// Total functions identified (sanity anchor: must be nonzero).
    pub functions: usize,
    /// Fraction of binaries ingested via `mmap` (vs the read fallback).
    pub mapped_fraction: f64,
    /// `VmHWM` immediately before the timed sweep, in KiB.
    pub rss_before_kb: u64,
    /// `VmHWM` after the sweep, in KiB.
    pub peak_rss_kb: u64,
    /// The `Ballast` cap the sweep was admitted under, in bytes.
    pub max_inflight_bytes: usize,
    /// Execution environment.
    pub host: crate::host::Host,
}

/// Runs the paper-scale ingestion measurement: writes `scale`
/// content-unique binaries (base corpus images made distinct by a
/// trailing tag outside any ELF-described region, so analysis output is
/// unchanged while every content hash differs) to a temp directory,
/// then analyzes all of them from disk. Each worker admits the
/// binary's in-flight estimate against a shared [`Ballast`], maps it
/// with [`Image::load`], analyzes, and unmaps before releasing — so
/// peak RSS tracks the admission budget, not the corpus size.
pub fn run_scaled(scale: usize, quick: bool) -> ScaledReport {
    let scale = scale.clamp(1, SCALE_CAP);
    let mut params = DatasetParams::tiny();
    if !quick {
        params.programs = (3, 2, 3);
        params.configs = BuildConfig::grid();
    }
    let ds = Dataset::generate(&params, SEED);
    let bases: Vec<&[u8]> = ds.binaries.iter().map(|b| b.bytes.as_slice()).collect();

    let dir = std::env::temp_dir().join(format!("funseeker-corpus-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scaled-corpus dir");
    let mut paths = Vec::with_capacity(scale);
    let mut total_bytes = 0u64;
    // One reused buffer: the build phase must not set a high-water mark
    // the streaming claim below would then hide under.
    let mut buf = Vec::new();
    for i in 0..scale {
        let base = bases[i % bases.len()];
        buf.clear();
        buf.extend_from_slice(base);
        buf.extend_from_slice(&(i as u64).to_le_bytes());
        let path = dir.join(format!("{i:05}.bin"));
        std::fs::write(&path, &buf).expect("write scaled-corpus binary");
        total_bytes += buf.len() as u64;
        paths.push(path);
    }
    drop(buf);

    let _ = funseeker_pool::global().workers();
    let rss_before_kb = peak_rss_kb();
    let ballast = Ballast::new(SCALE_INFLIGHT_BYTES);
    let seeker = FunSeeker::with_config(Config::c4());
    let t = Instant::now();
    let outs = par_map_timed(&paths, |path| {
        let len = std::fs::metadata(path).map(|m| m.len() as usize).unwrap_or(0);
        let est = inflight_estimate(len);
        ballast.acquire(est);
        let out = match Image::load(path) {
            Ok(image) => {
                let mapped = image.is_mapped();
                let functions = seeker.identify(&image).map(|a| a.functions.len()).unwrap_or(0);
                (functions, mapped)
            }
            Err(_) => (0, false),
        };
        // `out` dropped the Image already (analysis holds no borrow);
        // release only after the unmap so the budget really bounds
        // resident mapped bytes.
        ballast.release(est);
        out
    });
    let wall = t.elapsed().as_secs_f64();
    let peak_after_kb = peak_rss_kb();
    let _ = std::fs::remove_dir_all(&dir);

    let functions: usize = outs.iter().map(|((f, _), _)| f).sum();
    let mapped = outs.iter().filter(|((_, m), _)| *m).count();
    ScaledReport {
        binaries: scale,
        distinct_bases: bases.len(),
        total_bytes,
        ms: wall * 1e3,
        bins_per_s: scale as f64 / wall,
        functions,
        mapped_fraction: mapped as f64 / scale as f64,
        rss_before_kb,
        peak_rss_kb: peak_after_kb,
        max_inflight_bytes: SCALE_INFLIGHT_BYTES,
        host: crate::host::host(),
    }
}

impl ScaledReport {
    /// The streaming-ingestion claim: the sweep's RSS growth is bounded
    /// by a small multiple of the admission budget plus fixed process
    /// slack — never by the corpus size. `Err` carries the same message
    /// with the numbers that broke the bound.
    pub fn rss_bounded(&self) -> Result<String, String> {
        // 3× the budget (the in-flight estimate is deliberately rough)
        // plus 128 MiB of fixed slack for the pool, allocator, and
        // page-cache accounting noise.
        let bound_kb = 3 * (self.max_inflight_bytes as u64 / 1024) + (128 << 10);
        let grew_kb = self.peak_rss_kb.saturating_sub(self.rss_before_kb);
        let msg = format!(
            "scaled ingestion: {} binaries ({:.1} MiB on disk), RSS grew {:.1} MiB \
             (bound {:.1} MiB, ballast {:.1} MiB)",
            self.binaries,
            self.total_bytes as f64 / (1 << 20) as f64,
            grew_kb as f64 / 1024.0,
            bound_kb as f64 / 1024.0,
            self.max_inflight_bytes as f64 / (1 << 20) as f64,
        );
        if grew_kb > bound_kb {
            Err(msg)
        } else {
            Ok(msg)
        }
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        format!(
            "corpus-scale: {} binaries ({} bases, {:.1} MiB on disk), {:.0}% mmap-ingested\n\
             {:>10.1} ms, {:.1} binaries/s, {} functions\n\
             RSS: {:.1} MiB before sweep, {:.1} MiB peak, ballast {:.1} MiB\n",
            self.binaries,
            self.distinct_bases,
            self.total_bytes as f64 / (1 << 20) as f64,
            self.mapped_fraction * 100.0,
            self.ms,
            self.bins_per_s,
            self.functions,
            self.rss_before_kb as f64 / 1024.0,
            self.peak_rss_kb as f64 / 1024.0,
            self.max_inflight_bytes as f64 / (1 << 20) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> BatchReport {
        BatchReport {
            binaries: 20,
            distinct: 10,
            configs: 4,
            reps: 2,
            peak_rss_kb: 100_000,
            host: crate::host::host(),
            stage: funseeker::StageStats::default(),
            rows: vec![
                BatchRow {
                    label: "flat".into(),
                    ms: 100.0,
                    sd_ms: 2.0,
                    bins_per_s: 200.0,
                    hit_rate: 0.0,
                    unique_images: 20,
                },
                BatchRow {
                    label: "cold".into(),
                    ms: 40.0,
                    sd_ms: 1.0,
                    bins_per_s: 500.0,
                    hit_rate: 0.66,
                    unique_images: 10,
                },
                BatchRow {
                    label: "warm".into(),
                    ms: 2.0,
                    sd_ms: 0.1,
                    bins_per_s: 10_000.0,
                    hit_rate: 1.0,
                    unique_images: 10,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_and_gate() {
        let r = fake_report();
        let doc = r.append_to_document(None, "pre");
        assert!(doc.contains("funseeker-bench-batch-v1"));
        assert_eq!(last_bins_per_s(&doc, "cold"), Some(500.0));
        assert_eq!(last_bins_per_s(&doc, "flat"), Some(200.0));
        assert!(check_against(&doc, &r, 0.7).is_ok());
        let mut slow = fake_report();
        slow.rows[1].bins_per_s = 100.0;
        assert!(check_against(&doc, &slow, 0.7).is_err());
        // Appending keeps history and the gate reads the newest entry.
        let doc2 = slow.append_to_document(Some(&doc), "post");
        assert_eq!(trajectory::extract_entries(&doc2).len(), 2);
        assert_eq!(last_bins_per_s(&doc2, "cold"), Some(100.0));
    }

    #[test]
    fn scaled_ingestion_is_mapped_and_rss_bounded() {
        let report = run_scaled(64, true);
        assert_eq!(report.binaries, 64);
        assert!(report.functions > 0, "scaled corpus must identify functions");
        // The padding tag keeps every binary content-unique.
        assert!(report.total_bytes > 0);
        if std::env::var("FUNSEEKER_MMAP").as_deref() != Ok("0") {
            assert!(
                report.mapped_fraction > 0.99,
                "regular files must ingest via mmap (got {:.0}%)",
                report.mapped_fraction * 100.0
            );
        }
        report.rss_bounded().expect("RSS growth bounded by the admission budget");
        assert!(!report.render().is_empty());
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let kb = peak_rss_kb();
        assert!(kb > 1_000, "a Rust test process uses more than 1 MiB (got {kb} KiB)");
    }

    #[test]
    fn quick_measurement_hits_the_acceptance_bars() {
        let report = run(true);
        let get = |label: &str| {
            report.rows.iter().find(|r| r.label == label).unwrap_or_else(|| {
                panic!("row {label} missing");
            })
        };
        let (flat, nocache) = (get("flat"), get("nocache"));
        let (cold, warm, disk) = (get("cold"), get("warm"), get("disk"));
        assert!(report.binaries > report.distinct, "corpus must contain duplicates");
        assert_eq!(cold.unique_images, report.distinct);
        assert_eq!(nocache.unique_images, report.binaries, "nocache must not dedup");
        assert!(warm.hit_rate > 0.99, "warm rerun hits everything");
        assert!(disk.hit_rate > 0.99, "disk layer serves every fresh-cache miss");
        // The headline acceptance bars (quick mode, so with margin
        // removed: cold strictly faster than flat, warm ≥ 5× flat; the
        // committed full-mode numbers in BENCH_batch.json carry the
        // real ≥1.5×/≥10× evidence).
        assert!(
            cold.bins_per_s > flat.bins_per_s,
            "cold {:.1} <= flat {:.1}",
            cold.bins_per_s,
            flat.bins_per_s
        );
        assert!(
            warm.bins_per_s > 5.0 * flat.bins_per_s,
            "warm {:.1} <= 5x flat {:.1}",
            warm.bins_per_s,
            flat.bins_per_s
        );
        assert!(report.peak_rss_kb > 0);
        assert!(report.stage.total_ns() > 0, "cold run must charge stage counters");
        assert!(report.stage.final_candidates > 0);
        assert!(!report.render().is_empty());
    }
}
