//! Symbol-based ground-truth extraction (§V-A1 methodology).
//!
//! The paper derives ground truth from debug/symbol information with two
//! corrections: `.cold`/`.part` symbols are *excluded* (they are
//! fragments, not functions), and the `__x86.get_pc_thunk` intrinsic is
//! *included* even when the compiler forgot its symbol.
//!
//! The corpus carries exact [`funseeker_corpus::GroundTruth`] alongside
//! each binary, so evaluation itself never needs this extractor; it
//! exists to reproduce the paper's methodology from the binary alone and
//! is cross-validated against the corpus truth in tests.

use std::collections::BTreeSet;

use funseeker_elf::Elf;

/// Whether a symbol name denotes a compiler-generated fragment rather
/// than a function (`foo.cold`, `foo.part.0`, `foo.constprop.0.cold`…).
pub fn is_fragment_name(name: &str) -> bool {
    name.ends_with(".cold")
        || name.contains(".cold.")
        || name.contains(".part.")
        || name.ends_with(".part")
}

/// Extracts function entries from `.symtab`, applying the paper's two
/// corrections. `thunk_hints` supplies addresses of `__x86.get_pc_thunk`
/// instances known through other means (the paper added them manually).
pub fn extract(bytes: &[u8], thunk_hints: &[u64]) -> Result<BTreeSet<u64>, funseeker_elf::Error> {
    let elf = Elf::parse(bytes)?;
    let mut out: BTreeSet<u64> = elf
        .symbols()?
        .iter()
        .filter(|s| s.is_defined_func() && !is_fragment_name(&s.name))
        .map(|s| s.value)
        .collect();
    out.extend(thunk_hints.iter().copied());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_corpus::{Dataset, DatasetParams};

    #[test]
    fn fragment_names() {
        assert!(is_fragment_name("sort_files.cold"));
        assert!(is_fragment_name("helper.part.0"));
        assert!(is_fragment_name("x.cold.1"));
        assert!(!is_fragment_name("main"));
        assert!(!is_fragment_name("partition"));
        assert!(!is_fragment_name("coldstart"));
    }

    #[test]
    fn symbol_extraction_matches_corpus_truth() {
        let ds = Dataset::generate(&DatasetParams::tiny(), 99);
        for bin in &ds.binaries {
            // Thunk hints: the corpus knows where symbol-less thunks are.
            let hints: Vec<u64> = bin
                .truth
                .functions
                .iter()
                .filter(|f| f.is_thunk && !f.has_symbol)
                .map(|f| f.addr)
                .collect();
            let extracted = extract(&bin.bytes, &hints).unwrap();
            assert_eq!(
                extracted,
                bin.truth.eval_entries(),
                "{} {}",
                bin.program,
                bin.config.label()
            );
        }
    }
}
