//! Property tests for the shared [`AnalysisPlan`]: every analysis
//! derived from the plan must be **bit-identical** to an independent
//! staged run (`run_stages_with` on a fresh scratch) for every Table II
//! configuration and every extension toggle — on pristine corpora and
//! across hostile mutant images alike.
//!
//! This is the contract the batch scheduler relies on when it rebuilds
//! one plan per image and derives each configuration by set algebra.

use funseeker::{prepare, AnalysisPlan, Config, FunSeeker, Scratch};
use funseeker_corpus::{BuildConfig, Dataset, DatasetParams, Mutator};
use proptest::prelude::*;

fn dataset(seed: u64) -> Dataset {
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = BuildConfig::grid();
    Dataset::generate(&params, seed)
}

/// Every configuration the plan must reproduce exactly: the four
/// Table II columns crossed with the extension toggles (reachability
/// pruning, interprocedural summaries), plus the fallback-path
/// configurations (`endbr_pattern_scan`, unfiltered tail-call
/// selection) and a non-default tail-referer threshold.
fn config_matrix() -> Vec<Config> {
    let mut out = Vec::new();
    for (_, base) in Config::table2() {
        for (reach_prune, interproc) in [(false, false), (true, false), (false, true), (true, true)]
        {
            out.push(Config { reach_prune, interproc, ..base });
        }
    }
    out.push(Config { endbr_pattern_scan: true, ..Config::c4() });
    out.push(Config { filter_endbr: false, ..Config::c4() });
    out.push(Config { min_tail_referers: 1, ..Config::c4() });
    out.push(Config { min_tail_referers: 5, reach_prune: true, ..Config::c4() });
    out
}

/// Rebuilds one plan for `bytes` and checks every matrix configuration
/// against an independent staged run. Returns the number of
/// configurations checked (0 when the image does not parse — mutants
/// may be rejected, never analyzed inconsistently).
fn assert_plan_matches_stages(bytes: &[u8], ctx: &str) -> usize {
    let Ok(prepared) = prepare(bytes) else { return 0 };
    let mut plan = AnalysisPlan::new();
    let mut scratch = Scratch::new();
    plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
    let mut checked = 0;
    for config in config_matrix() {
        let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
        // Fresh scratch: the staged run must not depend on anything the
        // plan or a previous derivation left behind.
        let slow = FunSeeker::with_config(config).run_stages_with(
            &prepared.parsed,
            &prepared.index,
            &mut Scratch::new(),
        );
        assert_eq!(fast, slow, "{ctx}: plan-derived analysis diverged under {config:?}");
        checked += 1;
    }
    checked
}

#[test]
fn plan_matches_stages_on_a_pristine_corpus() {
    let ds = dataset(0x91A7);
    let mut checked = 0;
    for bin in &ds.binaries {
        checked += assert_plan_matches_stages(
            &bin.bytes,
            &format!("{} {}", bin.program, bin.config.label()),
        );
    }
    assert!(checked > 100, "expected many configurations, checked {checked}");
}

#[test]
fn one_plan_serves_interleaved_derivations() {
    // The batch scheduler derives configurations in arbitrary order from
    // one long-lived plan; interleaving must not let one configuration's
    // scratch state leak into the next.
    let ds = dataset(0x91A8);
    let bin = &ds.binaries[0];
    let prepared = prepare(&bin.bytes).unwrap();
    let mut plan = AnalysisPlan::new();
    let mut scratch = Scratch::new();
    plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
    let matrix = config_matrix();
    // Forward, backward, and a shuffled-ish stride through the matrix.
    let order: Vec<usize> = (0..matrix.len())
        .chain((0..matrix.len()).rev())
        .chain((0..matrix.len()).map(|i| (i * 7) % matrix.len()))
        .collect();
    for &i in &order {
        let config = &matrix[i];
        let fast = plan.derive(config, &prepared.parsed, &prepared.index, &mut scratch);
        let slow = FunSeeker::with_config(*config).identify_prepared(&prepared);
        assert_eq!(fast, slow, "interleaved derivation diverged under {config:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("FUNSEEKER_MUTATION_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    ))]

    /// Hostile mutants: whatever a corrupted image parses to, the plan
    /// derivation and the staged pipeline must agree bit-for-bit on
    /// every configuration — corruption may change *what* is found,
    /// never make the two paths disagree.
    #[test]
    fn plan_matches_stages_on_hostile_mutants(seed in any::<u64>()) {
        let ds = dataset(0x91A9);
        let bin = &ds.binaries[(seed % ds.len() as u64) as usize];
        let mut mutator = Mutator::new(seed);
        let (mutated, corruption) = mutator.mutate(&bin.bytes);
        assert_plan_matches_stages(
            &mutated,
            &format!("{} under {}", bin.program, corruption.label()),
        );
    }
}
