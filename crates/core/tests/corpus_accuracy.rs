//! Accuracy of the full FunSeeker pipeline against corpus ground truth.
//!
//! These are the coarse sanity gates; the fine-grained per-suite numbers
//! are produced by `funseeker-eval` (Tables II/III).

use funseeker::{Config, FunSeeker, FuncSet};
use funseeker_corpus::{BuildConfig, Dataset, DatasetParams};

fn dataset() -> Dataset {
    let mut params = DatasetParams::tiny();
    params.programs = (4, 2, 3);
    params.configs = BuildConfig::grid();
    Dataset::generate(&params, 0xFACADE)
}

fn prf(found: &FuncSet, truth: &FuncSet) -> (f64, f64) {
    let tp = found.intersection(truth).count() as f64;
    let p = if found.is_empty() { 1.0 } else { tp / found.len() as f64 };
    let r = if truth.is_empty() { 1.0 } else { tp / truth.len() as f64 };
    (p, r)
}

#[test]
fn config4_exceeds_99_percent_on_the_corpus() {
    let ds = dataset();
    let seeker = FunSeeker::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for bin in &ds.binaries {
        let truth: FuncSet = bin.truth.eval_entries().into_iter().collect();
        let a = seeker.identify(&bin.bytes).unwrap();
        tp += a.functions.intersection(&truth).count();
        fp += a.functions.difference(&truth).count();
        fn_ += truth.difference(&a.functions).count();
    }
    let prec = tp as f64 / (tp + fp) as f64;
    let rec = tp as f64 / (tp + fn_) as f64;
    eprintln!("corpus-wide: precision {prec:.4}, recall {rec:.4} (tp={tp} fp={fp} fn={fn_})");
    assert!(prec > 0.98, "precision {prec:.4} (paper: >0.99)");
    assert!(rec > 0.99, "recall {rec:.4} (paper: >0.998)");
}

#[test]
fn per_binary_recall_never_collapses() {
    let ds = dataset();
    let seeker = FunSeeker::new();
    for bin in &ds.binaries {
        let truth: FuncSet = bin.truth.eval_entries().into_iter().collect();
        let a = seeker.identify(&bin.bytes).unwrap();
        let (p, r) = prf(&a.functions, &truth);
        assert!(r > 0.9, "{} {}: recall {r:.3} precision {p:.3}", bin.program, bin.config.label());
        assert!(p > 0.9, "{} {}: precision {p:.3}", bin.program, bin.config.label());
        assert_eq!(a.decode_errors, 0);
    }
}

#[test]
fn ablation_shape_matches_table2() {
    // ①: recall high, precision hurt on C++ (landing pads).
    // ②: precision recovers, recall unchanged.
    // ③: recall max, precision collapses.
    // ④: precision close to ②, recall ≥ ②.
    let ds = dataset();
    let mut agg = [(0usize, 0usize, 0usize); 4]; // (tp, fp, fn) per config
    let configs = Config::table2();
    for bin in &ds.binaries {
        let truth: FuncSet = bin.truth.eval_entries().into_iter().collect();
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let a = FunSeeker::with_config(*cfg).identify(&bin.bytes).unwrap();
            agg[i].0 += a.functions.intersection(&truth).count();
            agg[i].1 += a.functions.difference(&truth).count();
            agg[i].2 += truth.difference(&a.functions).count();
        }
    }
    let pr = |(tp, fp, fnn): (usize, usize, usize)| {
        (tp as f64 / (tp + fp) as f64, tp as f64 / (tp + fnn) as f64)
    };
    let (p1, r1) = pr(agg[0]);
    let (p2, r2) = pr(agg[1]);
    let (p3, r3) = pr(agg[2]);
    let (p4, r4) = pr(agg[3]);
    eprintln!("1: P={p1:.4} R={r1:.4}\n2: P={p2:.4} R={r2:.4}\n3: P={p3:.4} R={r3:.4}\n4: P={p4:.4} R={r4:.4}");

    assert!(p2 > p1, "FILTERENDBR must improve precision");
    assert!((r2 - r1).abs() < 1e-9, "FILTERENDBR must not change recall");
    assert!(r3 >= r2, "adding J can only help recall");
    assert!(p3 < 0.7, "raw J floods false positives (paper: ~26%)");
    assert!(p4 > p3 + 0.2, "SELECTTAILCALL recovers precision");
    assert!(r4 >= r2, "J′ helps recall over ②");
    assert!(p4 > 0.97, "④ precision must stay high");
}
