//! Property tests for the interprocedural layer: CFG block partitions
//! must exactly tile each function's slice of the packed stream — no
//! gaps, no overlaps, every block non-empty — and the CET constraint on
//! indirect-edge candidates must hold, on pristine corpora and across
//! hostile mutants alike.

use funseeker::{build_call_graph, build_cfgs, prepare, FunSeeker};
use funseeker_corpus::{BuildConfig, Dataset, DatasetParams, Mutator};
use proptest::prelude::*;

fn dataset(seed: u64) -> Dataset {
    let mut params = DatasetParams::tiny();
    params.programs = (3, 2, 3);
    params.configs = BuildConfig::grid();
    Dataset::generate(&params, seed)
}

/// Checks the tiling invariant for every identified function of one
/// image. Returns the number of CFGs checked (0 when the image does not
/// parse — mutants are allowed to be rejected, never to break tiling).
fn assert_cfgs_tile(bytes: &[u8], ctx: &str) -> usize {
    let Ok(prepared) = prepare(bytes) else { return 0 };
    let analysis = FunSeeker::new().run_stages(&prepared.parsed, &prepared.index);
    let entries: Vec<u64> = analysis.functions.iter().copied().collect();
    let cfgs = build_cfgs(&prepared.index, &entries);
    assert_eq!(cfgs.len(), entries.len(), "{ctx}: one CFG per entry");

    let s = &prepared.index.insns;
    for (cfg, &entry) in cfgs.iter().zip(&entries) {
        assert_eq!(cfg.entry, entry);
        let lo = s.partition_point_addr(cfg.range.0);
        let hi = s.partition_point_addr(cfg.range.1.max(cfg.range.0));
        let mut at = lo;
        for b in &cfg.blocks {
            assert_eq!(b.insns.start, at, "{ctx} fn {entry:#x}: gap/overlap at {:#x}", b.start);
            assert!(b.insns.end > b.insns.start, "{ctx} fn {entry:#x}: empty block");
            assert_eq!(s.addr_at(b.insns.start), b.start, "{ctx} fn {entry:#x}: start addr");
            assert_eq!(s.end_at(b.insns.end - 1), b.end, "{ctx} fn {entry:#x}: end addr");
            // Every successor index refers to a real block.
            for &succ in &b.succs {
                assert!(succ < cfg.blocks.len(), "{ctx} fn {entry:#x}: dangling edge");
            }
            at = b.insns.end;
        }
        assert_eq!(at, hi, "{ctx} fn {entry:#x}: blocks must cover the whole range");
    }
    cfgs.len()
}

#[test]
fn cfg_blocks_tile_every_function_of_a_pristine_corpus() {
    let ds = dataset(0xCF60);
    let mut checked = 0;
    for bin in &ds.binaries {
        checked += assert_cfgs_tile(&bin.bytes, &format!("{} {}", bin.program, bin.config.label()));
    }
    assert!(checked > 100, "expected many CFGs, checked {checked}");
}

#[test]
fn indirect_edge_candidates_honor_the_endbr_constraint() {
    // On a pristine corpus every CET-constrained indirect target must be
    // an entry whose ground truth says "starts with an end-branch" —
    // never a plain entry the hardware would fault on.
    let ds = dataset(0xCF61);
    let mut targets = 0;
    for bin in &ds.binaries {
        let prepared = prepare(&bin.bytes).unwrap();
        let analysis = FunSeeker::new().run_stages(&prepared.parsed, &prepared.index);
        let entries: Vec<u64> = analysis.functions.iter().copied().collect();
        let graph = build_call_graph(&prepared.index, &entries);
        for &t in &graph.indirect_targets {
            if let Some(f) = bin.truth.by_addr(t) {
                assert!(
                    f.has_endbr,
                    "{} {}: {:#x} ({}) lacks an end-branch but was offered as an indirect target",
                    bin.program,
                    bin.config.label(),
                    t,
                    f.name
                );
                targets += 1;
            }
        }
    }
    assert!(targets > 50, "constraint checked on only {targets} targets");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("FUNSEEKER_MUTATION_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(48)
    ))]

    /// Hostile mutants: whatever a corrupted image decodes to, the CFG
    /// partition over it still tiles exactly — junk decodes land in
    /// blocks, they never produce gaps, overlaps, or panics.
    #[test]
    fn cfg_tiling_survives_hostile_mutants(seed in any::<u64>()) {
        let ds = dataset(0xCF62);
        let bin = &ds.binaries[(seed % ds.len() as u64) as usize];
        let mut mutator = Mutator::new(seed);
        let (mutated, corruption) = mutator.mutate(&bin.bytes);
        assert_cfgs_tile(&mutated, &format!("{} under {}", bin.program, corruption.label()));
    }
}
