//! FILTERENDBR — drop end-branches that are not function entries
//! (Algorithm 1 line 4, §IV-C).
//!
//! Two non-entry locations exist (§III-B): the instruction after a call
//! to an *indirect-return* function (`setjmp` family), and C++ exception
//! landing pads. Both are recognized from metadata that cannot be
//! stripped: the PLT/relocation machinery and `.gcc_except_table`.
//!
//! The working sets here are sorted `Vec`s rather than `BTreeSet`s: the
//! inputs arrive nearly sorted (the sweep emits addresses in order), so
//! sort-then-dedup plus binary search beats per-element tree inserts,
//! and the buffers can be reused across binaries via [`crate::Scratch`].

use crate::parse::Parsed;

/// GCC's list of indirect-return functions (from `special_function_p` in
/// gcc/calls.c): calls to these are followed by an end-branch that is a
/// *return point*, not a function entry.
pub const INDIRECT_RETURN_FUNCTIONS: &[&str] =
    &["setjmp", "_setjmp", "sigsetjmp", "__sigsetjmp", "vfork", "getcontext", "savectx"];

/// Checks whether a PLT callee name is an indirect-return function.
///
/// Matches GCC's semantics: the unprefixed name and common
/// leading-underscore aliases both count (e.g. `__vfork`).
pub fn is_indirect_return_name(name: &str) -> bool {
    let trimmed = name.trim_start_matches('_');
    INDIRECT_RETURN_FUNCTIONS.iter().any(|f| name == *f || trimmed == f.trim_start_matches('_'))
}

/// Computes `E′`: `E` minus setjmp-return points and landing pads.
///
/// `call_sites` are `(address_after_call, target)` pairs from the shared
/// sweep index; `endbrs` is the end-branch list to filter (either the
/// sweep's or the pattern-scan-augmented one). The result is sorted and
/// deduplicated.
pub fn filter_endbr(p: &Parsed<'_>, call_sites: &[(u64, u64)], endbrs: &[u64]) -> Vec<u64> {
    let mut return_points = Vec::new();
    let mut out = Vec::new();
    filter_endbr_into(p, call_sites, endbrs, &mut return_points, &mut out);
    out
}

/// Buffer-reusing body of [`filter_endbr`]: `return_points` and `out`
/// are cleared and refilled, keeping their capacity across calls.
pub(crate) fn filter_endbr_into(
    p: &Parsed<'_>,
    call_sites: &[(u64, u64)],
    endbrs: &[u64],
    return_points: &mut Vec<u64>,
    out: &mut Vec<u64>,
) {
    // Return points of indirect-return calls: address right after each
    // call whose target is a PLT stub for a listed function.
    return_points.clear();
    for &(after, target) in call_sites {
        if let Some(name) = p.plt.name_at(target) {
            if is_indirect_return_name(name) {
                return_points.push(after);
            }
        }
    }
    return_points.sort_unstable();
    return_points.dedup();

    out.clear();
    out.extend(
        endbrs
            .iter()
            .copied()
            .filter(|a| return_points.binary_search(a).is_err() && !p.landing_pads.contains(a)),
    );
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_elf::PltMap;

    #[test]
    fn name_matching_covers_aliases() {
        for n in [
            "setjmp",
            "_setjmp",
            "sigsetjmp",
            "__sigsetjmp",
            "vfork",
            "__vfork",
            "getcontext",
            "savectx",
        ] {
            assert!(is_indirect_return_name(n), "{n}");
        }
        for n in ["longjmp", "fork", "malloc", "setjmp2", "mysetjmp"] {
            assert!(!is_indirect_return_name(n), "{n}");
        }
    }

    fn parsed_with(plt: PltMap, pads: &[u64]) -> Parsed<'static> {
        let mut p = Parsed::from_region(0x1000, &[], true);
        p.landing_pads = pads.iter().copied().collect();
        p.plt = plt;
        p
    }

    #[test]
    fn filters_setjmp_return_points() {
        let plt = PltMap::from_pairs([(0x500u64, "setjmp"), (0x510, "puts")]);
        let p = parsed_with(plt, &[]);
        // call setjmp@plt ending at 0x1040; call puts@plt ending at 0x1080.
        let call_sites = [(0x1040, 0x500), (0x1080, 0x510)];
        let e = filter_endbr(&p, &call_sites, &[0x1000, 0x1040, 0x1080]);
        assert!(e.contains(&0x1000));
        assert!(!e.contains(&0x1040), "post-setjmp endbr must be dropped");
        assert!(e.contains(&0x1080), "post-puts endbr is a coincidence and stays");
    }

    #[test]
    fn filters_landing_pads() {
        let p = parsed_with(PltMap::default(), &[0x1100, 0x1200]);
        let e = filter_endbr(&p, &[], &[0x1000, 0x1100, 0x1200]);
        assert_eq!(e, vec![0x1000]);
    }

    #[test]
    fn no_metadata_means_no_filtering() {
        let p = parsed_with(PltMap::default(), &[]);
        assert_eq!(filter_endbr(&p, &[], &[1, 2, 3]).len(), 3);
    }

    #[test]
    fn result_is_sorted_and_deduplicated() {
        // The pattern-scan union path can hand in out-of-order
        // duplicates; the set semantics of the old BTreeSet result must
        // be preserved.
        let p = parsed_with(PltMap::default(), &[]);
        assert_eq!(filter_endbr(&p, &[], &[3, 1, 2, 1, 3]), vec![1, 2, 3]);
    }
}
