//! Analysis configurations (the ablation grid of §V-B).

/// Knobs controlling which stages of Algorithm 1 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Run FILTERENDBR (drop landing-pad and post-`setjmp` end-branches).
    pub filter_endbr: bool,
    /// Include direct jump targets (the set J) as candidates.
    pub include_jump_targets: bool,
    /// Run SELECTTAILCALL (reduce J to tail-call targets J′).
    pub select_tail_calls: bool,
    /// SELECTTAILCALL condition (2): a jump target is kept only when
    /// direct jumps from at least this many *distinct other functions*
    /// reference it ("referenced by multiple functions other than the
    /// current function", §IV-D).
    pub min_tail_referers: usize,
    /// Superset-style end-branch recovery (§VI future work): in addition
    /// to the linear sweep, scan `.text` for the end-branch byte pattern
    /// at *every* offset. Hand-written assembly or inline data can
    /// desynchronize a linear sweep and swallow a following `ENDBR`; the
    /// 4-byte marker pattern is practically self-synchronizing, so a raw
    /// scan recovers those entries. Off by default — the paper's
    /// FunSeeker is purely linear.
    pub endbr_pattern_scan: bool,
    /// Reachability pruning (interprocedural extension): walk the packed
    /// stream from the entry point and every end-branch, following
    /// fallthrough, direct branches, and direct calls, and demote
    /// candidates **that only jump-target evidence supports** when no
    /// walk reaches them. Conservative by construction: end-branch
    /// entries, call targets, and SELECTTAILCALL selections are never
    /// demoted (a closed static call cycle could make them look
    /// unreachable), so only the plain-`J` candidates of configurations
    /// that skip SELECTTAILCALL can be pruned. Off by default; when off,
    /// results are bit-identical to the paper pipeline.
    pub reach_prune: bool,
    /// Interprocedural summaries (extension): after the entry set is
    /// final, build per-function CFGs and the CET-constrained call graph
    /// and record their sizes in [`crate::Analysis::interproc`]. Off by
    /// default — consumers that need the graphs themselves call
    /// [`crate::build_cfgs`] / [`crate::build_call_graph`] directly.
    pub interproc: bool,
}

impl Config {
    /// Configuration ① of Table II: `E ∪ C` — raw end-branches plus
    /// direct call targets.
    pub fn c1() -> Config {
        Config {
            filter_endbr: false,
            include_jump_targets: false,
            select_tail_calls: false,
            min_tail_referers: 2,
            endbr_pattern_scan: false,
            reach_prune: false,
            interproc: false,
        }
    }

    /// Configuration ②: `E′ ∪ C` — ① plus FILTERENDBR.
    pub fn c2() -> Config {
        Config { filter_endbr: true, ..Config::c1() }
    }

    /// Configuration ③: `E′ ∪ C ∪ J` — ② plus *all* direct jump targets.
    pub fn c3() -> Config {
        Config { include_jump_targets: true, ..Config::c2() }
    }

    /// Configuration ④ (the full FunSeeker): `E′ ∪ C ∪ J′`.
    pub fn c4() -> Config {
        Config { select_tail_calls: true, ..Config::c3() }
    }

    /// All four configurations with their Table II labels.
    pub fn table2() -> [(&'static str, Config); 4] {
        [("1", Config::c1()), ("2", Config::c2()), ("3", Config::c3()), ("4", Config::c4())]
    }
}

impl Default for Config {
    /// The full algorithm (configuration ④).
    fn default() -> Self {
        Config::c4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_nest() {
        let c1 = Config::c1();
        assert!(!c1.filter_endbr && !c1.include_jump_targets && !c1.select_tail_calls);
        let c2 = Config::c2();
        assert!(c2.filter_endbr && !c2.include_jump_targets);
        let c3 = Config::c3();
        assert!(c3.filter_endbr && c3.include_jump_targets && !c3.select_tail_calls);
        let c4 = Config::c4();
        assert!(c4.filter_endbr && c4.include_jump_targets && c4.select_tail_calls);
        assert_eq!(Config::default(), c4);
        assert_eq!(Config::table2().len(), 4);
    }

    #[test]
    fn extension_stages_default_off_in_every_configuration() {
        // The paper's four configurations never enable the
        // interprocedural extensions — bit-identical to the original
        // pipeline unless a caller opts in explicitly.
        for (_, c) in Config::table2() {
            assert!(!c.reach_prune);
            assert!(!c.interproc);
            assert!(!c.endbr_pattern_scan);
        }
    }
}
