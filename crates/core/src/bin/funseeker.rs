//! `funseeker` — command-line function identification for CET binaries.
//!
//! ```text
//! funseeker [--config 1|2|3|4] [--summary] [--disasm] [--callgraph] [--strict] <binary>…
//! ```
//!
//! Prints one function entry address per line (hex), a per-binary
//! summary with `--summary`, or the CET-constrained call graph over the
//! identified entries with `--callgraph`. Malformed optional metadata
//! normally degrades to warnings on stderr; `--strict` turns those
//! warnings into errors. Exit code 1 if any input failed to parse.

use funseeker::{Config, FunSeeker};

fn usage() -> ! {
    eprintln!(
        "usage: funseeker [--config 1|2|3|4] [--summary] [--disasm] [--callgraph] [--strict] <binary>..."
    );
    std::process::exit(2);
}

fn main() {
    let mut config = Config::c4();
    let mut summary = false;
    let mut disasm = false;
    let mut callgraph = false;
    let mut strict = false;
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let v = args.next().unwrap_or_else(|| usage());
                config = match v.as_str() {
                    "1" => Config::c1(),
                    "2" => Config::c2(),
                    "3" => Config::c3(),
                    "4" => Config::c4(),
                    _ => usage(),
                };
            }
            "--summary" => summary = true,
            "--disasm" => disasm = true,
            "--callgraph" => callgraph = true,
            "--strict" => strict = true,
            "-h" | "--help" => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        usage();
    }

    let seeker = FunSeeker::with_config(config).strict(strict);
    let mut failed = false;
    for path in &paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match seeker.identify(&bytes) {
            Ok(analysis) => {
                for warning in analysis.diagnostics.iter() {
                    eprintln!("{path}: warning: {warning}");
                }
                if summary {
                    println!(
                        "{path}: {} functions ({} endbr, {} filtered, {} call targets, {} tail targets, {} decode errors){}",
                        analysis.functions.len(),
                        analysis.endbr_count,
                        analysis.filtered_endbrs,
                        analysis.call_target_count,
                        analysis.tail_target_count,
                        analysis.decode_errors,
                        if analysis.cet_enabled { "" } else { " [no CET property note]" }
                    );
                } else if callgraph {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    print_call_graph(&bytes, &analysis);
                } else if disasm {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    print_disassembly(&bytes, &analysis);
                } else {
                    if paths.len() > 1 {
                        println!("# {path}");
                    }
                    for addr in &analysis.functions {
                        println!("{addr:#x}");
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Prints the call graph over the identified entries: every resolved
/// direct/tail edge, then the CET-constrained indirect summary.
fn print_call_graph(bytes: &[u8], analysis: &funseeker::Analysis) {
    let Ok(prepared) = funseeker::prepare(bytes) else { return };
    let entries: Vec<u64> = analysis.functions.iter().copied().collect();
    let graph = funseeker::build_call_graph(&prepared.index, &entries);
    println!(
        "{} nodes, {} direct edges, {} tail edges",
        graph.nodes.len(),
        graph.direct_count(),
        graph.tail_count(),
    );
    for e in &graph.edges {
        let kind = match e.kind {
            funseeker::CallKind::Direct => "call",
            funseeker::CallKind::Tail => "tail",
        };
        match e.caller {
            Some(caller) => println!("{:#x}: {kind} {:#x} -> {:#x}", caller, e.site, e.callee),
            None => println!("?: {kind} {:#x} -> {:#x}", e.site, e.callee),
        }
    }
    println!(
        "indirect: {} call sites, {} jump sites, {} notrack; {} endbr targets",
        graph.indirect_call_sites.len(),
        graph.indirect_jump_sites.len(),
        graph.notrack_sites,
        graph.indirect_targets.len(),
    );
}

/// Prints the disassembly of every code region with identified function
/// entries marked.
fn print_disassembly(bytes: &[u8], analysis: &funseeker::Analysis) {
    let Ok(parsed) = funseeker::parse::parse(bytes) else { return };
    let mode = parsed.mode();
    for region in parsed.code.regions() {
        println!("\nDisassembly of section {}:", region.name);
        let mut off = 0usize;
        while off < region.bytes.len() {
            let addr = region.addr.wrapping_add(off as u64);
            if analysis.functions.contains(&addr) {
                println!("\n{addr:#x} <fn>:");
            }
            match funseeker_disasm::format_insn(&region.bytes[off..], addr, mode) {
                Ok((text, len)) => {
                    println!("  {addr:#x}: {text}");
                    off += len;
                }
                Err(_) => {
                    println!("  {addr:#x}: (bad) {:02x}", region.bytes[off]);
                    off += 1;
                }
            }
        }
    }
}
