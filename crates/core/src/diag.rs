//! Diagnostics — the graceful-degradation sink of the pipeline.
//!
//! The paper's pipeline assumes well-formed CET binaries, but a
//! production identifier meets truncated, corrupt, and adversarial
//! images. Mirroring how interactive tools (IDA, Ghidra) never hard-fail
//! on recoverable damage, PARSE downgrades malformed *optional* metadata
//! — `.eh_frame`, `.gcc_except_table`, `.note.gnu.property`, the PLT
//! relocation chain, structural layout oddities — to warnings collected
//! here, and keeps analyzing every region it can still read. Callers
//! that prefer rejection over degradation enable strict mode on
//! [`crate::FunSeeker`] (or pass `--strict` to the CLI), which turns a
//! non-empty sink into [`crate::Error::Strict`].

use core::fmt;

/// The pipeline component a diagnostic originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Component {
    /// Section/segment header layout (overlaps, ranges past the file).
    Layout,
    /// `.eh_frame` CIE/FDE parsing.
    EhFrame,
    /// `.gcc_except_table` LSDA parsing.
    GccExceptTable,
    /// `.note.gnu.property` CET property parsing.
    NoteProperty,
    /// PLT stub resolution (`.rela.plt` / `DT_JMPREL` chain).
    Plt,
    /// `.dynamic` tag walking.
    Dynamic,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Component::Layout => "layout",
            Component::EhFrame => ".eh_frame",
            Component::GccExceptTable => ".gcc_except_table",
            Component::NoteProperty => ".note.gnu.property",
            Component::Plt => "plt",
            Component::Dynamic => ".dynamic",
        })
    }
}

/// One warning recorded while parsing a damaged input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which component degraded.
    pub component: Component,
    /// Human-readable description (typically the underlying parse
    /// error's `Display` output).
    pub message: String,
    /// How many times this exact warning occurred (identical warnings
    /// are coalesced so a section with thousands of damaged records
    /// cannot balloon memory).
    pub count: usize,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.component, self.message)?;
        if self.count > 1 {
            write!(f, " (x{})", self.count)?;
        }
        Ok(())
    }
}

/// An ordered collection of [`Diagnostic`]s.
///
/// Duplicate `(component, message)` pairs are coalesced into one entry
/// with a count, which bounds memory on inputs engineered to produce the
/// same failure millions of times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a warning, coalescing exact duplicates.
    pub fn warn(&mut self, component: Component, message: impl Into<String>) {
        self.record(component, message, 1);
    }

    /// Records a warning that occurred `count` times, coalescing with an
    /// existing identical entry. `count == 0` records nothing. Used by
    /// persistence layers (the batch result cache) to reconstruct a sink
    /// without replaying each occurrence.
    pub fn record(&mut self, component: Component, message: impl Into<String>, count: usize) {
        if count == 0 {
            return;
        }
        let message = message.into();
        if let Some(d) =
            self.items.iter_mut().find(|d| d.component == component && d.message == message)
        {
            d.count += count;
        } else {
            self.items.push(Diagnostic { component, message, count });
        }
    }

    /// The recorded warnings, in first-occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of distinct warnings (after coalescing).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing degraded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total occurrences across all warnings (before coalescing).
    pub fn total(&self) -> usize {
        self.items.iter().map(|d| d.count).sum()
    }

    /// Whether any warning came from `component`.
    pub fn has(&self, component: Component) -> bool {
        self.items.iter().any(|d| d.component == component)
    }

    /// Merges another sink into this one (coalescing duplicates).
    pub fn extend(&mut self, other: &Diagnostics) {
        for d in &other.items {
            if let Some(e) =
                self.items.iter_mut().find(|e| e.component == d.component && e.message == d.message)
            {
                e.count += d.count;
            } else {
                self.items.push(d.clone());
            }
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "warning: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warns_and_coalesces() {
        let mut d = Diagnostics::new();
        assert!(d.is_empty());
        d.warn(Component::EhFrame, "truncated record");
        d.warn(Component::EhFrame, "truncated record");
        d.warn(Component::Plt, "bad reloc");
        assert_eq!(d.len(), 2);
        assert_eq!(d.total(), 3);
        assert!(d.has(Component::EhFrame));
        assert!(!d.has(Component::Dynamic));
        let first = d.iter().next().unwrap();
        assert_eq!(first.count, 2);
        assert!(first.to_string().contains("x2"));
    }

    #[test]
    fn extend_merges_counts() {
        let mut a = Diagnostics::new();
        a.warn(Component::Layout, "overlap");
        let mut b = Diagnostics::new();
        b.warn(Component::Layout, "overlap");
        b.warn(Component::NoteProperty, "bad note");
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().next().unwrap().count, 2);
    }

    #[test]
    fn display_is_line_per_warning() {
        let mut d = Diagnostics::new();
        d.warn(Component::EhFrame, "a");
        d.warn(Component::Plt, "b");
        let s = d.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().all(|l| l.starts_with("warning: ")));
    }
}
