//! Analysis errors.

use core::fmt;

/// Errors from [`crate::FunSeeker::identify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The input is not a parseable ELF image.
    Elf(funseeker_elf::Error),
    /// The image has no `.text` section to analyze.
    NoText,
    /// Strict mode rejected an input that would otherwise have been
    /// analyzed with degraded metadata. Carries the warnings that would
    /// have been recorded (see [`crate::Diagnostics`]).
    Strict(crate::Diagnostics),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Elf(e) => write!(f, "ELF parse error: {e}"),
            Error::NoText => f.write_str("binary has no .text section"),
            Error::Strict(d) => {
                write!(f, "strict mode: input degraded with {} warning(s)", d.len())?;
                if let Some(first) = d.iter().next() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Elf(e) => Some(e),
            Error::NoText | Error::Strict(_) => None,
        }
    }
}

impl From<funseeker_elf::Error> for Error {
    fn from(e: funseeker_elf::Error) -> Self {
        Error::Elf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_elf_errors_with_source() {
        let e: Error = funseeker_elf::Error::BadClass(9).into();
        assert!(e.to_string().contains("class"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&Error::NoText).is_none());
    }

    #[test]
    fn strict_error_reports_first_warning() {
        let mut d = crate::Diagnostics::new();
        d.warn(crate::diag::Component::EhFrame, "truncated record");
        let e = Error::Strict(d);
        let s = e.to_string();
        assert!(s.contains("strict mode"));
        assert!(s.contains("truncated record"));
    }
}
