//! Analysis errors.

use core::fmt;

/// Errors from [`crate::FunSeeker::identify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The input is not a parseable ELF image.
    Elf(funseeker_elf::Error),
    /// The image has no `.text` section to analyze.
    NoText,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Elf(e) => write!(f, "ELF parse error: {e}"),
            Error::NoText => f.write_str("binary has no .text section"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Elf(e) => Some(e),
            Error::NoText => None,
        }
    }
}

impl From<funseeker_elf::Error> for Error {
    fn from(e: funseeker_elf::Error) -> Self {
        Error::Elf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_elf_errors_with_source() {
        let e: Error = funseeker_elf::Error::BadClass(9).into();
        assert!(e.to_string().contains("class"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&Error::NoText).is_none());
    }
}
