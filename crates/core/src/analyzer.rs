//! The FunSeeker analyzer — Algorithm 1 end to end.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::disassemble::{disassemble, SweepSets};
use crate::error::Error;
use crate::filter::filter_endbr;
use crate::parse::parse;
use crate::tailcall::select_tail_calls;

/// Function identification result with per-stage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Identified function entry addresses.
    pub functions: BTreeSet<u64>,
    /// `[start, end)` of the analyzed `.text`.
    pub text_range: (u64, u64),
    /// |E| — end-branches found by the sweep.
    pub endbr_count: usize,
    /// |E| − |E′| — end-branches removed by FILTERENDBR.
    pub filtered_endbrs: usize,
    /// |C| — direct call targets inside `.text`.
    pub call_target_count: usize,
    /// |J| — distinct direct jump targets inside `.text`.
    pub jmp_target_count: usize,
    /// |J′| — jump targets kept by SELECTTAILCALL (0 when disabled).
    pub tail_target_count: usize,
    /// Byte positions skipped over decode errors during the sweep.
    pub decode_errors: usize,
    /// Whether the binary declares full CET support
    /// (`.note.gnu.property` with IBT and SHSTK — §II's definition of a
    /// CET-enabled binary). End-branch evidence is still used either
    /// way; this flag tells the caller how much to trust it.
    pub cet_enabled: bool,
}

/// The FunSeeker function identifier.
///
/// ```
/// use funseeker::FunSeeker;
/// let bytes = std::fs::read("/proc/self/exe").unwrap();
/// let analysis = FunSeeker::new().identify(&bytes).unwrap();
/// println!("{} functions", analysis.functions.len());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FunSeeker {
    config: Config,
}

impl FunSeeker {
    /// An analyzer running the full algorithm (configuration ④).
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer with an explicit [`Config`] (e.g. the Table II
    /// ablations).
    pub fn with_config(config: Config) -> Self {
        FunSeeker { config }
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Identifies function entries in a raw ELF image.
    pub fn identify(&self, bytes: &[u8]) -> Result<Analysis, Error> {
        let parsed = parse(bytes)?;
        let sweep = disassemble(&parsed);
        Ok(self.run_stages(&parsed, &sweep))
    }

    /// Runs FILTERENDBR/SELECTTAILCALL over pre-computed sweep sets.
    /// Exposed for the evaluation harness, which reuses one sweep across
    /// all four configurations.
    pub fn run_stages(&self, parsed: &crate::parse::Parsed<'_>, sweep: &SweepSets) -> Analysis {
        // Optional superset pass: recover end-branches the linear sweep
        // may have lost to data-in-text desynchronization.
        let mut sweep_aug;
        let sweep = if self.config.endbr_pattern_scan {
            sweep_aug = sweep.clone();
            let mut all: BTreeSet<u64> = sweep_aug.endbrs.iter().copied().collect();
            all.extend(crate::disassemble::scan_endbr_pattern(parsed));
            sweep_aug.endbrs = all.into_iter().collect();
            &sweep_aug
        } else {
            sweep
        };

        let endbr_count = sweep.endbrs.len();

        // E or E′.
        let e: BTreeSet<u64> = if self.config.filter_endbr {
            filter_endbr(parsed, sweep)
        } else {
            sweep.endbrs.iter().copied().collect()
        };
        let filtered = endbr_count - e.len();

        // E′ ∪ C.
        let mut functions = e;
        functions.extend(sweep.call_targets.iter().copied());

        // ∪ J or ∪ J′.
        let jmp_targets = sweep.jmp_targets();
        let mut tail_count = 0;
        if self.config.include_jump_targets {
            if self.config.select_tail_calls {
                let tails =
                    select_tail_calls(&functions, &sweep.jmp_edges, self.config.min_tail_referers);
                tail_count = tails.len();
                functions.extend(tails);
            } else {
                functions.extend(jmp_targets.iter().copied());
            }
        }

        Analysis {
            functions,
            text_range: (parsed.text_addr, parsed.text_end()),
            endbr_count,
            filtered_endbrs: filtered,
            call_target_count: sweep.call_targets.len(),
            jmp_target_count: jmp_targets.len(),
            tail_target_count: tail_count,
            decode_errors: sweep.decode_errors,
            cet_enabled: parsed.cet.full(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    #[test]
    fn identifies_functions_in_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let a = FunSeeker::new().identify(&bytes).unwrap();
        // A Rust test binary has thousands of functions; at minimum the
        // direct-call graph should surface plenty.
        assert!(a.functions.len() > 100, "found {}", a.functions.len());
        assert!(a.functions.iter().all(|&f| f >= a.text_range.0 && f < a.text_range.1));
    }

    #[test]
    fn config_monotonicity_on_real_binary() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let c1 = FunSeeker::with_config(Config::c1()).identify(&bytes).unwrap();
        let c2 = FunSeeker::with_config(Config::c2()).identify(&bytes).unwrap();
        let c3 = FunSeeker::with_config(Config::c3()).identify(&bytes).unwrap();
        let c4 = FunSeeker::with_config(Config::c4()).identify(&bytes).unwrap();
        // ② ⊆ ①: filtering only removes.
        assert!(c2.functions.is_subset(&c1.functions));
        // ② ⊆ ④ ⊆ ③: tail-call selection keeps a subset of J.
        assert!(c2.functions.is_subset(&c4.functions));
        assert!(c4.functions.is_subset(&c3.functions));
    }

    #[test]
    fn garbage_input_errors() {
        assert!(FunSeeker::new().identify(b"junk").is_err());
    }
}
