//! The FunSeeker analyzer — Algorithm 1 end to end.

use std::time::Instant;

use crate::config::Config;
use crate::disassemble::{disassemble, SweepIndex};
use crate::error::Error;
use crate::filter::filter_endbr_into;
use crate::funcset::FuncSet;
use crate::parse::{parse, Parsed};
use crate::scratch::Scratch;
use crate::tailcall::select_tail_calls_into;

/// A binary with its front-end work done: parsed sections plus the one
/// shared disassembly pass.
///
/// This is the unit of work the evaluation harness and the baseline
/// identifiers share — PARSE and DISASSEMBLE run once per binary here,
/// and every consumer (all four FunSeeker configurations, each baseline
/// tool, the figure/table classifiers) reads the same [`SweepIndex`]
/// instead of re-decoding the image.
#[derive(Debug, Clone)]
pub struct Prepared<'a> {
    /// Sections, exception info, PLT map.
    pub parsed: Parsed<'a>,
    /// The shared linear-sweep index over all code regions.
    pub index: SweepIndex,
}

impl<'a> Prepared<'a> {
    /// Runs the disassembly pass over an already-parsed binary.
    pub fn from_parsed(parsed: Parsed<'a>) -> Self {
        let index = disassemble(&parsed);
        Prepared { parsed, index }
    }

    /// Decode-work and timing counters of the shared sweep, merged over
    /// all code regions — what `experiments -- perf` reports.
    pub fn sweep_stats(&self) -> &funseeker_disasm::SweepStats {
        &self.index.stats
    }
}

/// Parses a raw ELF image and runs the shared disassembly pass.
pub fn prepare(bytes: &[u8]) -> Result<Prepared<'_>, Error> {
    Ok(Prepared::from_parsed(parse(bytes)?))
}

/// Sizes of the interprocedural artifacts built over the final entry
/// set — per-function CFGs and the CET-constrained call graph. Recorded
/// in [`Analysis::interproc`] when [`Config::interproc`] is enabled;
/// callers that need the graphs themselves use [`crate::build_cfgs`] and
/// [`crate::build_call_graph`] directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterprocSummary {
    /// Per-function CFGs built (= identified functions).
    pub cfg_count: usize,
    /// Basic blocks across all CFGs.
    pub block_count: usize,
    /// Intra-procedural edges across all CFGs.
    pub cfg_edge_count: usize,
    /// Direct call edges (`CALL rel32` sites).
    pub direct_call_edges: usize,
    /// Tail-call edges (direct jumps to another function's entry).
    pub tail_call_edges: usize,
    /// Indirect call/jump sites (tracked and `NOTRACK`).
    pub indirect_sites: usize,
    /// CET-constrained indirect-target candidates (ENDBR-marked
    /// entries).
    pub indirect_targets: usize,
}

/// Function identification result with per-stage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Identified function entry addresses — a packed sorted set (one
    /// contiguous allocation, binary-search membership).
    pub functions: FuncSet,
    /// `[start, end)` span of the analyzed code (first region start to
    /// last region end).
    pub text_range: (u64, u64),
    /// |E| — end-branches found by the sweep.
    pub endbr_count: usize,
    /// |E| − |E′| — end-branches removed by FILTERENDBR.
    pub filtered_endbrs: usize,
    /// |C| — direct call targets inside the analyzed code.
    pub call_target_count: usize,
    /// |J| — distinct direct jump targets inside the analyzed code.
    pub jmp_target_count: usize,
    /// |J′| — jump targets kept by SELECTTAILCALL (0 when disabled).
    pub tail_target_count: usize,
    /// Byte positions skipped over decode errors during the sweep.
    pub decode_errors: usize,
    /// Candidates demoted by reachability pruning (0 unless
    /// [`Config::reach_prune`] is enabled and plain jump-target
    /// candidates were in play).
    pub pruned_count: usize,
    /// Interprocedural artifact sizes, when [`Config::interproc`] is
    /// enabled.
    pub interproc: Option<InterprocSummary>,
    /// Whether the binary declares full CET support
    /// (`.note.gnu.property` with IBT and SHSTK — §II's definition of a
    /// CET-enabled binary). End-branch evidence is still used either
    /// way; this flag tells the caller how much to trust it.
    pub cet_enabled: bool,
    /// Warnings recorded while the front end degraded over malformed
    /// optional metadata; empty for a clean image. See
    /// [`crate::Diagnostics`].
    pub diagnostics: crate::Diagnostics,
}

/// The FunSeeker function identifier.
///
/// ```
/// use funseeker::FunSeeker;
/// let bytes = std::fs::read("/proc/self/exe").unwrap();
/// let analysis = FunSeeker::new().identify(&bytes).unwrap();
/// println!("{} functions", analysis.functions.len());
/// ```
///
/// Malformed *optional* metadata (a corrupt `.eh_frame`, property note,
/// or PLT relocation chain) does not fail [`identify`]: the pipeline
/// degrades, records what happened in [`Analysis::diagnostics`], and
/// analyzes the regions it can still read. Opt into rejection instead
/// with [`strict`]:
///
/// ```
/// use funseeker::FunSeeker;
/// let bytes = std::fs::read("/proc/self/exe").unwrap();
/// let analysis = FunSeeker::new().strict(true).identify(&bytes).unwrap();
/// assert!(analysis.diagnostics.is_empty()); // strict Ok implies no warnings
/// ```
///
/// [`identify`]: FunSeeker::identify
/// [`strict`]: FunSeeker::strict
#[derive(Debug, Clone, Default)]
pub struct FunSeeker {
    config: Config,
    strict: bool,
}

impl FunSeeker {
    /// An analyzer running the full algorithm (configuration ④).
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer with an explicit [`Config`] (e.g. the Table II
    /// ablations).
    pub fn with_config(config: Config) -> Self {
        FunSeeker { config, strict: false }
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Sets strict mode: when enabled, [`FunSeeker::identify`] turns
    /// front-end degradation warnings into [`Error::Strict`] instead of
    /// returning a degraded [`Analysis`].
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether strict mode is enabled.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Identifies function entries in a raw ELF image.
    pub fn identify(&self, bytes: &[u8]) -> Result<Analysis, Error> {
        let analysis = self.identify_prepared(&prepare(bytes)?);
        if self.strict && !analysis.diagnostics.is_empty() {
            return Err(Error::Strict(analysis.diagnostics));
        }
        Ok(analysis)
    }

    /// Identifies function entries in an already-prepared binary,
    /// reusing its shared sweep.
    pub fn identify_prepared(&self, prepared: &Prepared<'_>) -> Analysis {
        self.run_stages(&prepared.parsed, &prepared.index)
    }

    /// Runs FILTERENDBR/SELECTTAILCALL over a pre-computed sweep index.
    /// Exposed for the evaluation harness, which reuses one sweep across
    /// all four configurations.
    ///
    /// Allocates a fresh working-set arena per call; batch callers that
    /// analyze many binaries should hold a [`Scratch`] per worker and use
    /// [`run_stages_with`] instead.
    ///
    /// [`run_stages_with`]: FunSeeker::run_stages_with
    pub fn run_stages(&self, parsed: &Parsed<'_>, sweep: &SweepIndex) -> Analysis {
        self.run_stages_with(parsed, sweep, &mut Scratch::new())
    }

    /// [`run_stages`] with caller-provided working-set buffers.
    ///
    /// All intermediate collections live in `scratch`, which is cleared
    /// and refilled — after the arena has grown to the workload's
    /// high-water mark, the per-binary stages allocate nothing beyond
    /// the returned [`Analysis`] itself. The result is identical to
    /// [`run_stages`] regardless of what the arena held before.
    ///
    /// [`run_stages`]: FunSeeker::run_stages
    pub fn run_stages_with(
        &self,
        parsed: &Parsed<'_>,
        sweep: &SweepIndex,
        scratch: &mut Scratch,
    ) -> Analysis {
        // Optional superset pass: recover end-branches the linear sweep
        // may have lost to data-in-text desynchronization. Only the
        // end-branch list is augmented — borrow the rest of the index
        // rather than cloning it.
        let t = Instant::now();
        let endbrs: &[u64] = if self.config.endbr_pattern_scan {
            scratch.endbr_union.clear();
            scratch.endbr_union.extend_from_slice(&sweep.endbrs);
            scratch.endbr_union.extend(crate::disassemble::scan_endbr_pattern(parsed));
            scratch.endbr_union.sort_unstable();
            scratch.endbr_union.dedup();
            &scratch.endbr_union
        } else {
            &sweep.endbrs
        };

        let endbr_count = endbrs.len();

        // E or E′ — sorted and deduplicated either way.
        if self.config.filter_endbr {
            filter_endbr_into(
                parsed,
                &sweep.call_sites,
                endbrs,
                &mut scratch.return_points,
                &mut scratch.entries,
            );
        } else {
            scratch.entries.clear();
            scratch.entries.extend_from_slice(endbrs);
            scratch.entries.sort_unstable();
            scratch.entries.dedup();
        }
        let filtered = endbr_count - scratch.entries.len();
        scratch.stats.filter_ns += t.elapsed().as_nanos() as u64;

        // E′ ∪ C.
        let t = Instant::now();
        scratch.functions.clear();
        scratch.functions.extend_from_slice(&scratch.entries);
        scratch.functions.extend(sweep.call_targets.iter().copied());
        scratch.functions.sort_unstable();
        scratch.functions.dedup();

        // J as a set of distinct targets.
        scratch.jmp_targets.clear();
        scratch.jmp_targets.extend(sweep.jmp_edges.iter().map(|&(_, t)| t));
        scratch.jmp_targets.sort_unstable();
        scratch.jmp_targets.dedup();
        let jmp_target_count = scratch.jmp_targets.len();
        scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;

        // ∪ J or ∪ J′.
        let t = Instant::now();
        let mut tail_count = 0;
        if self.config.include_jump_targets {
            if self.config.select_tail_calls {
                scratch.region_starts.clear();
                scratch.region_starts.extend(sweep.regions.iter().map(|r| r.start));
                select_tail_calls_into(
                    &scratch.functions,
                    &sweep.jmp_edges,
                    self.config.min_tail_referers,
                    &scratch.region_starts,
                    &mut scratch.referers,
                    &mut scratch.tails,
                );
                tail_count = scratch.tails.len();
                scratch.functions.extend_from_slice(&scratch.tails);
            } else {
                scratch.functions.extend_from_slice(&scratch.jmp_targets);
            }
            scratch.functions.sort_unstable();
            scratch.functions.dedup();
        }
        if self.config.select_tail_calls && self.config.include_jump_targets {
            scratch.stats.tailcall_ns += t.elapsed().as_nanos() as u64;
        } else {
            scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;
        }

        // Optional reachability pruning (interprocedural extension).
        // Plain jump-target candidates exist only when J is included
        // unfiltered; every other configuration's candidates carry
        // end-branch, call-target, or SELECTTAILCALL evidence and are
        // never demoted, so the stage short-circuits to a no-op there.
        let mut pruned_count = 0;
        if self.config.reach_prune
            && self.config.include_jump_targets
            && !self.config.select_tail_calls
        {
            let t = Instant::now();
            {
                let Scratch { endbr_union, entries, functions, reach, work, .. } = scratch;
                let endbrs: &[u64] =
                    if self.config.endbr_pattern_scan { endbr_union } else { &sweep.endbrs };
                // Roots: the program entry, every end-branch (landing pads
                // and filtered end-branches are still executed code), and
                // every protected candidate (E′ ∪ C).
                let roots = std::iter::once(parsed.entry)
                    .chain(endbrs.iter().copied())
                    .chain(entries.iter().copied())
                    .chain(sweep.call_targets.iter().copied());
                crate::callgraph::reachable_insns_into(sweep, roots, reach, work);
                let before = functions.len();
                functions.retain(|&f| {
                    entries.binary_search(&f).is_ok()
                        || sweep.call_targets.contains(&f)
                        || f == parsed.entry
                        || sweep.insn_at(f).is_some_and(|i| reach[i / 64] >> (i % 64) & 1 == 1)
                });
                pruned_count = before - functions.len();
            }
            scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;
        }

        // Optional interprocedural summaries over the final entry set.
        let interproc = self.config.interproc.then(|| {
            let t = Instant::now();
            let cfgs = crate::cfg::build_cfgs(sweep, &scratch.functions);
            let graph = crate::callgraph::build_call_graph(sweep, &scratch.functions);
            let summary = InterprocSummary {
                cfg_count: cfgs.len(),
                block_count: cfgs.iter().map(|c| c.blocks.len()).sum(),
                cfg_edge_count: cfgs.iter().map(crate::cfg::Cfg::edge_count).sum(),
                direct_call_edges: graph.direct_count(),
                tail_call_edges: graph.tail_count(),
                indirect_sites: graph.indirect_call_sites.len()
                    + graph.indirect_jump_sites.len()
                    + graph.notrack_sites,
                indirect_targets: graph.indirect_targets.len(),
            };
            scratch.stats.interproc_ns += t.elapsed().as_nanos() as u64;
            summary
        });

        scratch.stats.entry_candidates += scratch.entries.len() as u64;
        scratch.stats.tail_candidates += tail_count as u64;
        scratch.stats.final_candidates += scratch.functions.len() as u64;

        Analysis {
            // One exact-size allocation + memcpy from the sorted run.
            functions: FuncSet::from_sorted_slice(&scratch.functions),
            text_range: parsed.code.bounds(),
            endbr_count,
            filtered_endbrs: filtered,
            call_target_count: sweep.call_targets.len(),
            jmp_target_count,
            tail_target_count: tail_count,
            decode_errors: sweep.decode_errors,
            pruned_count,
            interproc,
            cet_enabled: parsed.cet.full(),
            diagnostics: parsed.diagnostics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    #[test]
    fn identifies_functions_in_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let a = FunSeeker::new().identify(&bytes).unwrap();
        // A Rust test binary has thousands of functions; at minimum the
        // direct-call graph should surface plenty.
        assert!(a.functions.len() > 100, "found {}", a.functions.len());
        assert!(a.functions.iter().all(|&f| f >= a.text_range.0 && f < a.text_range.1));
    }

    #[test]
    fn config_monotonicity_on_real_binary() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let c1 = FunSeeker::with_config(Config::c1()).identify_prepared(&prepared);
        let c2 = FunSeeker::with_config(Config::c2()).identify_prepared(&prepared);
        let c3 = FunSeeker::with_config(Config::c3()).identify_prepared(&prepared);
        let c4 = FunSeeker::with_config(Config::c4()).identify_prepared(&prepared);
        // ② ⊆ ①: filtering only removes.
        assert!(c2.functions.is_subset(&c1.functions));
        // ② ⊆ ④ ⊆ ③: tail-call selection keeps a subset of J.
        assert!(c2.functions.is_subset(&c4.functions));
        assert!(c4.functions.is_subset(&c3.functions));
    }

    #[test]
    fn prepared_reuse_matches_direct_identify() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let via_prepared = FunSeeker::new().identify_prepared(&prepared);
        let direct = FunSeeker::new().identify(&bytes).unwrap();
        assert_eq!(via_prepared, direct);
    }

    #[test]
    fn garbage_input_errors() {
        assert!(FunSeeker::new().identify(b"junk").is_err());
    }

    #[test]
    fn reach_prune_only_demotes_plain_jump_candidates() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        // On ②/④ every candidate is protected: pruning must change
        // nothing but still report zero demotions.
        for base in [Config::c2(), Config::c4()] {
            let plain = FunSeeker::with_config(base).identify_prepared(&prepared);
            let pruned = FunSeeker::with_config(Config { reach_prune: true, ..base })
                .identify_prepared(&prepared);
            assert_eq!(pruned.pruned_count, 0);
            assert_eq!(plain.functions, pruned.functions);
        }
        // On ③ the pruned set is a subset of the unpruned one, and every
        // demoted candidate is a plain jump target (not in ②'s set).
        let c3 = FunSeeker::with_config(Config::c3()).identify_prepared(&prepared);
        let c3p = FunSeeker::with_config(Config { reach_prune: true, ..Config::c3() })
            .identify_prepared(&prepared);
        assert!(c3p.functions.is_subset(&c3.functions));
        assert_eq!(c3.functions.len() - c3p.functions.len(), c3p.pruned_count);
        let c2 = FunSeeker::with_config(Config::c2()).identify_prepared(&prepared);
        for demoted in c3.functions.difference(&c3p.functions) {
            assert!(!c2.functions.contains(demoted), "{demoted:#x} was protected");
        }
    }

    #[test]
    fn disabled_prune_stage_is_bit_identical() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let plain = FunSeeker::with_config(Config::c3()).identify_prepared(&prepared);
        let off = FunSeeker::with_config(Config { reach_prune: false, ..Config::c3() })
            .identify_prepared(&prepared);
        assert_eq!(plain, off);
        assert_eq!(plain.pruned_count, 0);
    }

    #[test]
    fn interproc_summary_is_populated_on_request() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let base = FunSeeker::new().identify_prepared(&prepared);
        assert!(base.interproc.is_none(), "off by default");
        let with = FunSeeker::with_config(Config { interproc: true, ..Config::c4() })
            .identify_prepared(&prepared);
        let s = with.interproc.expect("summary requested");
        assert_eq!(s.cfg_count, with.functions.len());
        assert!(s.block_count >= s.cfg_count, "every function has at least one block");
        assert!(s.cfg_edge_count > 0);
        assert!(s.direct_call_edges > 100, "a real binary has many calls");
        assert!(s.indirect_targets <= with.functions.len());
        // The summary is the only difference from the base analysis.
        assert_eq!(with.functions, base.functions);
    }
}
