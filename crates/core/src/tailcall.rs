//! SELECTTAILCALL — choose the jump targets that are tail calls
//! (Algorithm 1 line 5, §IV-D).
//!
//! A direct jump target joins `J′` only when:
//!
//! 1. it lies **beyond the boundary** of the function the jump belongs to
//!    (condition suggested by Qiao et al.), and
//! 2. it is **referenced by multiple functions** other than the one it
//!    would fall inside (inspired by FETCH).
//!
//! "Function boundaries" here are approximated by the candidate set
//! `E′ ∪ C`: each candidate starts an interval that runs to the next
//! candidate, exactly the cheap approximation the paper's linear-time
//! budget allows. Region starts are additional interval breaks — a
//! function never spans two executable sections, so a jump target in a
//! candidate-free region (e.g. `.fini`) is not attributed to the last
//! `.text` candidate's interval.

use std::collections::{BTreeMap, BTreeSet};

/// Identifies tail-call targets among the jump edges.
///
/// * `candidates` — the current function-start estimate (`E′ ∪ C`).
/// * `jmp_edges` — `(site, target)` pairs of direct unconditional jumps.
/// * `min_referers` — condition (2)'s threshold ("multiple" = 2 in the
///   default configuration).
/// * `region_starts` — sorted start addresses of the code regions; may
///   be empty for single-interval analyses (tests, synthetic inputs).
pub fn select_tail_calls(
    candidates: &BTreeSet<u64>,
    jmp_edges: &[(u64, u64)],
    min_referers: usize,
    region_starts: &[u64],
) -> BTreeSet<u64> {
    // Interval id of an address = the greatest candidate-or-region-start
    // ≤ address (None for addresses before all of them). For a single
    // region this matches the plain candidate interval: addresses below
    // the first candidate share the region-start interval, which the
    // site/target comparison treats just like sharing `None`.
    let interval = |addr: u64| -> Option<u64> {
        let cand = candidates.range(..=addr).next_back().copied();
        let region = region_starts[..region_starts.partition_point(|&s| s <= addr)].last().copied();
        cand.max(region)
    };

    // target → set of referring intervals (excluding the target's own).
    let mut referers: BTreeMap<u64, BTreeSet<Option<u64>>> = BTreeMap::new();
    for &(site, target) in jmp_edges {
        if candidates.contains(&target) {
            continue; // already identified; nothing to decide
        }
        let site_iv = interval(site);
        let target_iv = interval(target);
        // Condition (1): the jump must leave its own function's interval.
        if site_iv == target_iv {
            continue;
        }
        referers.entry(target).or_default().insert(site_iv);
    }

    referers.into_iter().filter(|(_, ivs)| ivs.len() >= min_referers).map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(v: &[u64]) -> BTreeSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn intra_function_jumps_are_rejected() {
        // One function at 0x100; jumps inside it never qualify.
        let c = cands(&[0x100]);
        let edges = [(0x110u64, 0x150u64), (0x120, 0x150), (0x130, 0x150)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn shared_target_is_selected() {
        // Functions at 0x100, 0x200, 0x300; both 0x100 and 0x200 jump to
        // 0x350 (inside 0x300's interval — a fragment-looking target that
        // is really a tail-called function at 0x350? No: 0x350 is beyond
        // both jump sites' own intervals and referenced by two distinct
        // functions, so it is selected).
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x210, 0x350)];
        let sel = select_tail_calls(&c, &edges, 2, &[]);
        assert_eq!(sel.into_iter().collect::<Vec<_>>(), vec![0x350]);
    }

    #[test]
    fn single_referer_is_rejected_at_threshold_two() {
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x110u64, 0x250u64)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
        // …but accepted when the threshold is relaxed.
        assert_eq!(select_tail_calls(&c, &edges, 1, &[]).len(), 1);
    }

    #[test]
    fn jumps_from_targets_own_interval_do_not_count() {
        // Target 0x250 lives in 0x200's interval; a jump from 0x210
        // (same interval) must not count as a referer.
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x210u64, 0x250u64), (0x110, 0x250)];
        let sel = select_tail_calls(&c, &edges, 2, &[]);
        assert!(sel.is_empty(), "only one *other* function refers to 0x250");
        let sel = select_tail_calls(&c, &edges, 1, &[]);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn already_identified_targets_are_skipped() {
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x110u64, 0x200u64), (0x150, 0x200)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn multiple_distinct_referers_required_not_multiple_jumps() {
        // Two jumps from the same function are one referer.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x120, 0x350)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn empty_candidates_use_prelude_interval() {
        // With no candidates at all, every site shares interval None, so
        // nothing distinguishes functions and nothing is selected at
        // threshold 2.
        let c = cands(&[]);
        let edges = [(0x10u64, 0x50u64), (0x20, 0x50)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn region_starts_break_intervals() {
        // Candidates only in the first region; the target lives in a
        // second, candidate-free region (say `.fini`). Without the region
        // break, 0x2000 would share 0x180's interval and the jump from
        // 0x190 would look intra-function.
        let c = cands(&[0x100, 0x180]);
        let edges = [(0x190u64, 0x2000u64), (0x110, 0x2000)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
        let sel = select_tail_calls(&c, &edges, 2, &[0x100, 0x2000]);
        assert_eq!(sel.into_iter().collect::<Vec<_>>(), vec![0x2000]);
    }

    #[test]
    fn region_starts_equivalent_to_none_for_single_region() {
        // For single-region inputs the region start must not change any
        // verdict: rerun the scenarios above with the base as the sole
        // region start.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x210, 0x350)];
        assert_eq!(
            select_tail_calls(&c, &edges, 2, &[]),
            select_tail_calls(&c, &edges, 2, &[0x100]),
        );
        let edges = [(0x10u64, 0x350u64), (0x210, 0x350)];
        assert_eq!(
            select_tail_calls(&c, &edges, 2, &[]),
            select_tail_calls(&c, &edges, 2, &[0x10]),
        );
    }
}
