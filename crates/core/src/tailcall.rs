//! SELECTTAILCALL — choose the jump targets that are tail calls
//! (Algorithm 1 line 5, §IV-D).
//!
//! A direct jump target joins `J′` only when:
//!
//! 1. it lies **beyond the boundary** of the function the jump belongs to
//!    (condition suggested by Qiao et al.), and
//! 2. it is **referenced by multiple functions** other than the one it
//!    would fall inside (inspired by FETCH).
//!
//! "Function boundaries" here are approximated by the candidate set
//! `E′ ∪ C`: each candidate starts an interval that runs to the next
//! candidate, exactly the cheap approximation the paper's linear-time
//! budget allows. Region starts are additional interval breaks — a
//! function never spans two executable sections, so a jump target in a
//! candidate-free region (e.g. `.fini`) is not attributed to the last
//! `.text` candidate's interval.
//!
//! The accumulator is a flat `Vec<(target, interval)>` that is sorted
//! and deduplicated once, then scanned in runs per target — replacing
//! the former `BTreeMap<u64, BTreeSet<…>>`, whose per-edge tree inserts
//! dominated this stage's cost at corpus scale. The buffers can be
//! reused across binaries via [`crate::Scratch`].
//!
//! # Relation to the call graph
//!
//! This stage only *selects entries*: a `J′` member is the jump
//! **target** — the callee's entry — never the address after the jump.
//! The interprocedural layer ([`crate::callgraph`]) turns the same
//! sites into proper `Tail` call-graph edges with identical semantics
//! (site → callee entry, caller looked up by the same
//! interval-with-region-breaks rule used here), and the CFG layer
//! deliberately drops the out-of-range jump as an intra-procedural
//! edge so the transfer appears exactly once, interprocedurally. The
//! regression test `tail_jump_targets_callee_entry_not_fallthrough`
//! in `callgraph.rs` pins this down.

/// Identifies tail-call targets among the jump edges.
///
/// * `candidates` — the current function-start estimate (`E′ ∪ C`) as a
///   **sorted, deduplicated** slice.
/// * `jmp_edges` — `(site, target)` pairs of direct unconditional jumps.
/// * `min_referers` — condition (2)'s threshold ("multiple" = 2 in the
///   default configuration).
/// * `region_starts` — sorted start addresses of the code regions; may
///   be empty for single-interval analyses (tests, synthetic inputs).
///
/// Returns the selected targets sorted in ascending order.
pub fn select_tail_calls(
    candidates: &[u64],
    jmp_edges: &[(u64, u64)],
    min_referers: usize,
    region_starts: &[u64],
) -> Vec<u64> {
    let mut referers = Vec::new();
    let mut out = Vec::new();
    select_tail_calls_into(
        candidates,
        jmp_edges,
        min_referers,
        region_starts,
        &mut referers,
        &mut out,
    );
    out
}

/// Buffer-reusing body of [`select_tail_calls`]: `referers` and `out`
/// are cleared and refilled, keeping their capacity across calls.
pub(crate) fn select_tail_calls_into(
    candidates: &[u64],
    jmp_edges: &[(u64, u64)],
    min_referers: usize,
    region_starts: &[u64],
    referers: &mut Vec<(u64, Option<u64>)>,
    out: &mut Vec<u64>,
) {
    collect_referers(candidates, jmp_edges, region_starts, referers);

    // Each run of equal targets holds its distinct referring intervals.
    out.clear();
    let mut i = 0;
    while i < referers.len() {
        let target = referers[i].0;
        let mut j = i + 1;
        while j < referers.len() && referers[j].0 == target {
            j += 1;
        }
        if j - i >= min_referers {
            out.push(target);
        }
        i = j;
    }
}

/// The SELECTTAILCALL interval structure itself, config-invariant form:
/// for every jump target that passes condition (1), the number of
/// *distinct* referring intervals. `runs` comes back sorted by target,
/// so `J′` for **any** `min_referers` threshold is the targets whose
/// count clears it — what [`crate::AnalysisPlan`] materializes once per
/// binary.
pub(crate) fn tail_referer_runs_into(
    candidates: &[u64],
    jmp_edges: &[(u64, u64)],
    region_starts: &[u64],
    referers: &mut Vec<(u64, Option<u64>)>,
    runs: &mut Vec<(u64, u32)>,
) {
    collect_referers(candidates, jmp_edges, region_starts, referers);
    runs.clear();
    let mut i = 0;
    while i < referers.len() {
        let target = referers[i].0;
        let mut j = i + 1;
        while j < referers.len() && referers[j].0 == target {
            j += 1;
        }
        runs.push((target, (j - i) as u32));
        i = j;
    }
}

/// Shared accumulation pass: fills `referers` with sorted, deduplicated
/// `(target, referring interval)` pairs for every jump that leaves its
/// own interval toward a not-yet-identified target.
fn collect_referers(
    candidates: &[u64],
    jmp_edges: &[(u64, u64)],
    region_starts: &[u64],
    referers: &mut Vec<(u64, Option<u64>)>,
) {
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "candidates must be sorted+deduped");

    // Interval id of an address = the greatest candidate-or-region-start
    // ≤ address (None for addresses before all of them). For a single
    // region this matches the plain candidate interval: addresses below
    // the first candidate share the region-start interval, which the
    // site/target comparison treats just like sharing `None`.
    let interval = |addr: u64| -> Option<u64> {
        let cand = candidates[..candidates.partition_point(|&c| c <= addr)].last().copied();
        let region = region_starts[..region_starts.partition_point(|&s| s <= addr)].last().copied();
        cand.max(region)
    };

    // `(target, referring interval)` pairs, excluding the target's own
    // interval; dedup after sorting collapses repeated jumps from the
    // same function into one referer.
    referers.clear();
    for &(site, target) in jmp_edges {
        if candidates.binary_search(&target).is_ok() {
            continue; // already identified; nothing to decide
        }
        let site_iv = interval(site);
        let target_iv = interval(target);
        // Condition (1): the jump must leave its own function's interval.
        if site_iv == target_iv {
            continue;
        }
        referers.push((target, site_iv));
    }
    referers.sort_unstable();
    referers.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(v: &[u64]) -> Vec<u64> {
        let mut c = v.to_vec();
        c.sort_unstable();
        c.dedup();
        c
    }

    #[test]
    fn intra_function_jumps_are_rejected() {
        // One function at 0x100; jumps inside it never qualify.
        let c = cands(&[0x100]);
        let edges = [(0x110u64, 0x150u64), (0x120, 0x150), (0x130, 0x150)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn shared_target_is_selected() {
        // Functions at 0x100, 0x200, 0x300; both 0x100 and 0x200 jump to
        // 0x350 (inside 0x300's interval — a fragment-looking target that
        // is really a tail-called function at 0x350? No: 0x350 is beyond
        // both jump sites' own intervals and referenced by two distinct
        // functions, so it is selected).
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x210, 0x350)];
        assert_eq!(select_tail_calls(&c, &edges, 2, &[]), vec![0x350]);
    }

    #[test]
    fn single_referer_is_rejected_at_threshold_two() {
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x110u64, 0x250u64)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
        // …but accepted when the threshold is relaxed.
        assert_eq!(select_tail_calls(&c, &edges, 1, &[]).len(), 1);
    }

    #[test]
    fn jumps_from_targets_own_interval_do_not_count() {
        // Target 0x250 lives in 0x200's interval; a jump from 0x210
        // (same interval) must not count as a referer.
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x210u64, 0x250u64), (0x110, 0x250)];
        let sel = select_tail_calls(&c, &edges, 2, &[]);
        assert!(sel.is_empty(), "only one *other* function refers to 0x250");
        let sel = select_tail_calls(&c, &edges, 1, &[]);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn already_identified_targets_are_skipped() {
        let c = cands(&[0x100, 0x200]);
        let edges = [(0x110u64, 0x200u64), (0x150, 0x200)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn multiple_distinct_referers_required_not_multiple_jumps() {
        // Two jumps from the same function are one referer.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x120, 0x350)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn empty_candidates_use_prelude_interval() {
        // With no candidates at all, every site shares interval None, so
        // nothing distinguishes functions and nothing is selected at
        // threshold 2.
        let c = cands(&[]);
        let edges = [(0x10u64, 0x50u64), (0x20, 0x50)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
    }

    #[test]
    fn region_starts_break_intervals() {
        // Candidates only in the first region; the target lives in a
        // second, candidate-free region (say `.fini`). Without the region
        // break, 0x2000 would share 0x180's interval and the jump from
        // 0x190 would look intra-function.
        let c = cands(&[0x100, 0x180]);
        let edges = [(0x190u64, 0x2000u64), (0x110, 0x2000)];
        assert!(select_tail_calls(&c, &edges, 2, &[]).is_empty());
        let sel = select_tail_calls(&c, &edges, 2, &[0x100, 0x2000]);
        assert_eq!(sel, vec![0x2000]);
    }

    #[test]
    fn region_starts_equivalent_to_none_for_single_region() {
        // For single-region inputs the region start must not change any
        // verdict: rerun the scenarios above with the base as the sole
        // region start.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x350u64), (0x210, 0x350)];
        assert_eq!(
            select_tail_calls(&c, &edges, 2, &[]),
            select_tail_calls(&c, &edges, 2, &[0x100]),
        );
        let edges = [(0x10u64, 0x350u64), (0x210, 0x350)];
        assert_eq!(
            select_tail_calls(&c, &edges, 2, &[]),
            select_tail_calls(&c, &edges, 2, &[0x10]),
        );
    }

    #[test]
    fn referer_runs_reproduce_selection_at_every_threshold() {
        // The plan's `(target, distinct referers)` runs must derive the
        // same `J′` as a direct SELECTTAILCALL at any threshold.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges =
            [(0x110u64, 0x3f0u64), (0x210, 0x3f0), (0x210, 0x3e0), (0x110, 0x3e0), (0x110, 0x500)];
        let mut referers = Vec::new();
        let mut runs = Vec::new();
        tail_referer_runs_into(&c, &edges, &[], &mut referers, &mut runs);
        assert!(runs.windows(2).all(|w| w[0].0 < w[1].0), "runs sorted by target");
        for min in 0..4 {
            let expect = select_tail_calls(&c, &edges, min, &[]);
            let derived: Vec<u64> =
                runs.iter().filter(|&&(_, n)| n as usize >= min).map(|&(t, _)| t).collect();
            assert_eq!(derived, expect, "min_referers={min}");
        }
    }

    #[test]
    fn selected_targets_are_sorted() {
        // Two qualifying targets must come back in ascending order
        // regardless of edge order.
        let c = cands(&[0x100, 0x200, 0x300]);
        let edges = [(0x110u64, 0x3f0u64), (0x210, 0x3f0), (0x210, 0x3e0), (0x110, 0x3e0)];
        assert_eq!(select_tail_calls(&c, &edges, 2, &[]), vec![0x3e0, 0x3f0]);
    }
}
