//! **FunSeeker** — function identification for Intel CET-enabled
//! binaries, reproducing the DSN 2022 paper *"How'd Security Benefit
//! Reverse Engineers? The Implication of Intel CET on Function
//! Identification"*.
//!
//! The algorithm (paper Algorithm 1) is deliberately simple and linear
//! in the binary size:
//!
//! ```text
//! FunSeeker(bin):
//!   txt, exn = PARSE(bin)            // .text, landing pads, PLT map
//!   E, C, J  = DISASSEMBLE(txt)      // endbr addrs, call targets, jmp edges
//!   E′ = FILTERENDBR(E, exn)         // drop non-entry end-branches
//!   J′ = SELECTTAILCALL(J)           // keep only tail-call targets
//!   return E′ ∪ C ∪ J′
//! ```
//!
//! The four Table II configurations (①–④) are exposed via [`Config`].
//!
//! # Quick example
//!
//! ```
//! use funseeker::{Config, FunSeeker};
//!
//! let bytes = std::fs::read("/proc/self/exe").unwrap();
//! let full = FunSeeker::new().identify(&bytes).unwrap();
//! let naive = FunSeeker::with_config(Config::c1()).identify(&bytes).unwrap();
//! println!("full: {} functions, naive: {}", full.functions.len(), naive.functions.len());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analyzer;
pub mod boundaries;
mod config;
pub mod diag;
mod error;
mod funcset;
mod plan;
mod scratch;

pub mod callgraph;
pub mod cfg;
pub mod disassemble;
pub mod filter;
pub mod parse;
pub mod tailcall;

pub use analyzer::{prepare, Analysis, FunSeeker, InterprocSummary, Prepared};
pub use boundaries::{estimate_bounds, FunctionBounds};
pub use callgraph::{build_call_graph, reachable_insns, CallEdge, CallGraph, CallKind};
pub use cfg::{build_cfg, build_cfgs, BasicBlock, Cfg};
pub use config::Config;
pub use diag::{Diagnostic, Diagnostics};
pub use error::Error;
pub use filter::{is_indirect_return_name, INDIRECT_RETURN_FUNCTIONS};
pub use funcset::FuncSet;
pub use plan::{AnalysisPlan, EndbrClass, ENDBR_CLASSES};
pub use scratch::{Scratch, StageStats};
