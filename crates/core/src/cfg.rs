//! Per-function control-flow graphs over the packed instruction stream.
//!
//! The interprocedural layer's first artifact: given a function entry
//! and the upper bound of its byte range, discover basic blocks by the
//! classic leader algorithm — the entry is a leader, every in-range
//! direct branch target is a leader, and the instruction after any
//! control transfer (or after a decode-error gap) is a leader — then
//! connect consecutive leader-delimited runs with intra-procedural
//! edges read from [`funseeker_disasm::Flow`]. No bytes are re-decoded:
//! everything comes from the sweep's packed tag/target arrays.
//!
//! Blocks **exactly tile** the function's slice of the packed stream:
//! every instruction index in `[lo, hi)` belongs to exactly one block,
//! with no gaps and no overlaps (a property the proptest suite checks
//! across hostile mutant corpora). Junk decodes inside the range —
//! superset artifacts, data misread as instructions — still land in
//! some block; reachability over the CFG is what separates them from
//! real code.

use crate::disassemble::SweepIndex;

/// One basic block: a maximal single-entry straight-line run of
/// instructions in the packed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the block's first instruction.
    pub start: u64,
    /// Address one past the block's last instruction.
    pub end: u64,
    /// The block's instruction indices into the shared packed stream.
    pub insns: std::ops::Range<usize>,
    /// Successor blocks, as indices into [`Cfg::blocks`]. Intra-
    /// procedural only: call edges and tail-call exits live in the call
    /// graph, not here.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// The function entry address.
    pub entry: u64,
    /// The analyzed byte range `[entry, limit)`.
    pub range: (u64, u64),
    /// Basic blocks in address order; block 0 (when any exist) starts
    /// at the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Total number of intra-procedural edges.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// The block containing instruction index `i`, if any.
    pub fn block_of(&self, i: usize) -> Option<usize> {
        let k = self.blocks.partition_point(|b| b.insns.start <= i);
        k.checked_sub(1).filter(|&k| self.blocks[k].insns.contains(&i))
    }
}

/// Builds the CFG of the function entered at `entry`, bounded above by
/// `limit` (typically `min(next_entry, region_end)` — the same cheap
/// bound [`crate::estimate_bounds`] uses).
///
/// The blocks partition the stream indices `[lo, hi)` where `lo`/`hi`
/// are the partition points of `entry`/`limit`: exact tiling, no gaps,
/// no overlaps. Branch targets that leave `[entry, limit)` or land
/// mid-instruction produce no intra-procedural edge (a jump out of the
/// range is a tail-call exit; a mid-instruction target is junk).
pub fn build_cfg(sweep: &SweepIndex, entry: u64, limit: u64) -> Cfg {
    let s = &sweep.insns;
    let lo = s.partition_point_addr(entry);
    let hi = s.partition_point_addr(limit.max(entry));

    // Leader discovery. `leaders` collects in-range instruction indices;
    // index `lo` is always a leader of a non-empty range.
    let mut leaders: Vec<usize> = Vec::new();
    if lo < hi {
        leaders.push(lo);
    }
    for i in lo..hi {
        let flow = s.flow_at(i);
        if flow.ends_block() && i + 1 < hi {
            leaders.push(i + 1);
        }
        if let Some(target) = flow.branch_target() {
            if target >= entry && target < limit {
                if let Some(j) = s.index_of_addr(target) {
                    if j >= lo && j < hi {
                        leaders.push(j);
                    }
                }
            }
        }
        // A decode-error gap breaks the straight line: the next decoded
        // instruction does not follow this one.
        if i + 1 < hi && s.addr_at(i + 1) != s.end_at(i) {
            leaders.push(i + 1);
        }
    }
    leaders.sort_unstable();
    leaders.dedup();

    // Blocks are the runs between consecutive leaders.
    let mut blocks: Vec<BasicBlock> = Vec::with_capacity(leaders.len());
    for (k, &first) in leaders.iter().enumerate() {
        let next = leaders.get(k + 1).copied().unwrap_or(hi);
        let last = next - 1;
        blocks.push(BasicBlock {
            start: s.addr_at(first),
            end: s.end_at(last),
            insns: first..next,
            succs: Vec::new(),
        });
    }

    // Edges from each block's last instruction. `block_at` maps a leader
    // index back to its block position.
    let block_at = |i: usize| -> Option<usize> {
        let k = leaders.partition_point(|&l| l <= i);
        k.checked_sub(1).filter(|&k| leaders[k] == i)
    };
    for block in &mut blocks {
        let last = block.insns.end - 1;
        let flow = s.flow_at(last);
        let mut succs = Vec::new();
        // Fallthrough: only when control continues AND the next decoded
        // instruction really is adjacent (no decode-error gap) and still
        // inside the function.
        if flow.falls_through() && last + 1 < hi && s.addr_at(last + 1) == s.end_at(last) {
            succs.push(block_at(last + 1).expect("instruction after a block is a leader"));
        }
        if let Some(target) = flow.branch_target() {
            if target >= entry && target < limit {
                if let Some(j) = s.index_of_addr(target) {
                    if let Some(b) = block_at(j) {
                        if !succs.contains(&b) {
                            succs.push(b);
                        }
                    }
                }
            }
        }
        block.succs = succs;
    }

    Cfg { entry, range: (entry, limit), blocks }
}

/// Builds CFGs for every entry in a sorted entry list, bounding each
/// function at the next entry or its region end, whichever comes first.
pub fn build_cfgs(sweep: &SweepIndex, entries: &[u64]) -> Vec<Cfg> {
    debug_assert!(entries.windows(2).all(|w| w[0] < w[1]), "entries must be sorted+deduped");
    entries
        .iter()
        .enumerate()
        .map(|(k, &entry)| {
            let region_end = sweep
                .regions
                .iter()
                .find(|r| entry >= r.start && entry < r.end)
                .map_or(u64::MAX, |r| r.end);
            let next = entries.get(k + 1).copied().unwrap_or(u64::MAX);
            build_cfg(sweep, entry, next.min(region_end))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disassemble::disassemble;
    use crate::parse::Parsed;

    fn sweep(code: &[u8], addr: u64) -> SweepIndex {
        disassemble(&Parsed::from_region(addr, code, true))
    }

    /// Asserts the tiling invariant: blocks cover `[lo, hi)` exactly.
    fn assert_tiles(cfg: &Cfg, lo: usize, hi: usize) {
        let mut at = lo;
        for b in &cfg.blocks {
            assert_eq!(b.insns.start, at, "gap or overlap before block at {:#x}", b.start);
            assert!(b.insns.end > b.insns.start, "empty block at {:#x}", b.start);
            at = b.insns.end;
        }
        assert_eq!(at, hi, "blocks must end at the range bound");
    }

    #[test]
    fn straight_line_is_one_block() {
        // endbr64; push rbp; nop; ret
        let code = [0xf3, 0x0f, 0x1e, 0xfa, 0x55, 0x90, 0xc3];
        let s = sweep(&code, 0x1000);
        let cfg = build_cfg(&s, 0x1000, 0x1007);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0x1000);
        assert_eq!(cfg.blocks[0].end, 0x1007);
        assert!(cfg.blocks[0].succs.is_empty(), "ret has no successor");
        assert_tiles(&cfg, 0, s.insns.len());
    }

    #[test]
    fn diamond_from_conditional_branch() {
        // 0x100: jne 0x104 ; 0x102: nop; nop ; 0x104: ret
        let code = [0x75, 0x02, 0x90, 0x90, 0xc3];
        let s = sweep(&code, 0x100);
        let cfg = build_cfg(&s, 0x100, 0x105);
        assert_eq!(cfg.blocks.len(), 3);
        // Block 0 = the jne: fallthrough to block 1, taken to block 2.
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks[1].succs, vec![2]);
        assert!(cfg.blocks[2].succs.is_empty());
        assert_eq!(cfg.edge_count(), 3);
        assert_tiles(&cfg, 0, s.insns.len());
    }

    #[test]
    fn backedge_creates_loop() {
        // 0x100: nop ; 0x101: jmp 0x100
        let code = [0x90, 0xeb, 0xfd];
        let s = sweep(&code, 0x100);
        let cfg = build_cfg(&s, 0x100, 0x103);
        assert_eq!(cfg.blocks.len(), 1, "target is the entry leader; one block");
        assert_eq!(cfg.blocks[0].succs, vec![0], "self-loop back to the entry block");
    }

    #[test]
    fn call_does_not_end_a_block_and_adds_no_edge() {
        // endbr64; call +0; ret — the call falls through into the ret
        // within one block; the callee edge belongs to the call graph.
        let code = [0xf3, 0x0f, 0x1e, 0xfa, 0xe8, 0, 0, 0, 0, 0xc3];
        let s = sweep(&code, 0x1000);
        let cfg = build_cfg(&s, 0x1000, 0x100a);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn jump_out_of_range_is_an_exit_not_an_edge() {
        // 0x100: nop; 0x101: jmp 0x200 (tail call out of the function)
        let code = [0x90, 0xe9, 0xfa, 0x00, 0x00, 0x00];
        let s = sweep(&code, 0x100);
        let cfg = build_cfg(&s, 0x100, 0x106);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty(), "out-of-range jump has no intra edge");
    }

    #[test]
    fn empty_range_yields_empty_cfg() {
        let code = [0x90, 0xc3];
        let s = sweep(&code, 0x100);
        let cfg = build_cfg(&s, 0x500, 0x600);
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.edge_count(), 0);
        assert_eq!(cfg.block_of(0), None);
    }

    #[test]
    fn build_cfgs_bounds_at_next_entry() {
        // Two functions back to back: ret at 0x100, then nop;ret.
        let code = [0xc3, 0x90, 0xc3];
        let s = sweep(&code, 0x100);
        let cfgs = build_cfgs(&s, &[0x100, 0x101]);
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].blocks.len(), 1);
        assert_eq!(cfgs[0].blocks[0].insns, 0..1);
        assert_eq!(cfgs[1].blocks[0].insns, 1..3);
        assert_eq!(cfgs[1].range, (0x101, 0x103));
        // Together they tile the whole stream.
        assert_tiles(&cfgs[0], 0, 1);
        assert_tiles(&cfgs[1], 1, 3);
    }

    #[test]
    fn block_of_maps_indices_to_blocks() {
        let code = [0x75, 0x02, 0x90, 0x90, 0xc3];
        let s = sweep(&code, 0x100);
        let cfg = build_cfg(&s, 0x100, 0x105);
        assert_eq!(cfg.block_of(0), Some(0));
        assert_eq!(cfg.block_of(1), Some(1));
        assert_eq!(cfg.block_of(2), Some(1));
        assert_eq!(cfg.block_of(3), Some(2));
        assert_eq!(cfg.block_of(4), None);
    }
}
