//! Whole-binary call graph and CET-constrained reachability.
//!
//! The interprocedural layer's second artifact. Nodes are the
//! identified function entries; edges come in two flavors:
//!
//! * **Direct** — a `CALL rel32` site; the callee is recorded verbatim
//!   (it may lie outside the analyzed regions, e.g. a PLT stub).
//! * **Tail** — a direct unconditional jump whose target is an
//!   identified entry of *another* function. This is the call-graph
//!   counterpart of SELECTTAILCALL (see [`crate::tailcall`]): the site
//!   transfers to the callee's **entry**, it does not fall through, so
//!   it must appear as a proper interprocedural edge rather than an
//!   intra-procedural successor (the CFG layer deliberately drops
//!   out-of-range jump edges for exactly this reason).
//!
//! Indirect transfers cannot be resolved statically, but the paper's
//! central observation constrains them: on a CET binary every *tracked*
//! indirect call or jump must land on an `ENDBR` instruction, so the
//! candidate target set of every tracked indirect site is exactly the
//! ENDBR-marked entries ([`CallGraph::indirect_targets`]). `NOTRACK`
//! sites are exempt from the check and stay unconstrained.
//!
//! The same machinery powers the reachability pruning stage
//! ([`reachable_insns`]): an instruction-level BFS over the packed
//! stream from the entry point and every ENDBR root, following
//! fallthrough, branch, and direct-call edges. Superset decodes no walk
//! reaches are demotion candidates for the optional `reach_prune`
//! config stage.

use std::collections::BTreeSet;

use crate::disassemble::SweepIndex;
use funseeker_disasm::Flow;

/// How a call-graph edge transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `CALL rel32` — pushes a return address, falls through after the
    /// callee returns.
    Direct,
    /// Direct jump to another function's entry — a tail call; the
    /// caller's frame is gone and control never falls back through the
    /// site.
    Tail,
}

/// One resolved call-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Address of the call or jump instruction.
    pub site: u64,
    /// Entry of the function containing the site, when the site falls
    /// inside an identified function of its region.
    pub caller: Option<u64>,
    /// Destination entry address.
    pub callee: u64,
    /// Transfer flavor.
    pub kind: CallKind,
}

/// The whole-binary call graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// Identified function entries, sorted ascending.
    pub nodes: Vec<u64>,
    /// Resolved direct and tail edges, in site order.
    pub edges: Vec<CallEdge>,
    /// Sites of tracked indirect calls (`FF /2` without `NOTRACK`).
    pub indirect_call_sites: Vec<u64>,
    /// Sites of tracked indirect jumps (`FF /4` without `NOTRACK`) —
    /// switch dispatches and indirect tail calls.
    pub indirect_jump_sites: Vec<u64>,
    /// Indirect sites carrying a `NOTRACK` prefix: exempt from CET, so
    /// the ENDBR constraint below does not apply to them.
    pub notrack_sites: usize,
    /// The CET-constrained candidate target set for every tracked
    /// indirect site: identified entries that begin with an `ENDBR`
    /// instruction. A tracked transfer to any other address faults.
    pub indirect_targets: Vec<u64>,
}

impl CallGraph {
    /// Number of direct edges.
    pub fn direct_count(&self) -> usize {
        self.edges.iter().filter(|e| e.kind == CallKind::Direct).count()
    }

    /// Number of tail edges.
    pub fn tail_count(&self) -> usize {
        self.edges.iter().filter(|e| e.kind == CallKind::Tail).count()
    }

    /// `(site, callee)` pairs of the direct edges — the shape the
    /// call-edge precision/recall metric compares against ground truth.
    pub fn direct_edge_pairs(&self) -> BTreeSet<(u64, u64)> {
        self.edges
            .iter()
            .filter(|e| e.kind == CallKind::Direct)
            .map(|e| (e.site, e.callee))
            .collect()
    }

    /// `(site, callee)` pairs of the tail edges.
    pub fn tail_edge_pairs(&self) -> BTreeSet<(u64, u64)> {
        self.edges.iter().filter(|e| e.kind == CallKind::Tail).map(|e| (e.site, e.callee)).collect()
    }
}

/// Builds the call graph over an identified entry set.
///
/// `entries` must be sorted and deduplicated (the natural shape of
/// [`crate::Analysis::functions`] collected into a `Vec`).
pub fn build_call_graph(sweep: &SweepIndex, entries: &[u64]) -> CallGraph {
    debug_assert!(entries.windows(2).all(|w| w[0] < w[1]), "entries must be sorted+deduped");
    let s = &sweep.insns;

    // Owning function of an address: the greatest entry at or before it,
    // unless a region boundary intervenes (a function never spans two
    // regions — same interval rule as SELECTTAILCALL).
    let owner = |addr: u64| -> Option<u64> {
        let entry = entries[..entries.partition_point(|&e| e <= addr)].last().copied()?;
        let k = sweep.regions.partition_point(|r| r.start <= addr);
        let region_start = sweep.regions[..k].last().map_or(0, |r| r.start);
        (entry >= region_start).then_some(entry)
    };

    let mut graph = CallGraph { nodes: entries.to_vec(), ..CallGraph::default() };
    for i in 0..s.len() {
        match s.flow_at(i) {
            Flow::Call { target } => {
                let site = s.addr_at(i);
                graph.edges.push(CallEdge {
                    site,
                    caller: owner(site),
                    callee: target,
                    kind: CallKind::Direct,
                });
            }
            // A direct jump to another function's identified entry is a
            // tail call: an edge to the callee ENTRY. Jumps whose target
            // is the site's own entry are loops, not calls.
            Flow::Jump { target } if entries.binary_search(&target).is_ok() => {
                let site = s.addr_at(i);
                let caller = owner(site);
                if caller != Some(target) {
                    graph.edges.push(CallEdge {
                        site,
                        caller,
                        callee: target,
                        kind: CallKind::Tail,
                    });
                }
            }
            Flow::CallInd { notrack } => {
                if notrack {
                    graph.notrack_sites += 1;
                } else {
                    graph.indirect_call_sites.push(s.addr_at(i));
                }
            }
            Flow::JumpInd { notrack } => {
                if notrack {
                    graph.notrack_sites += 1;
                } else {
                    graph.indirect_jump_sites.push(s.addr_at(i));
                }
            }
            _ => {}
        }
    }

    // The CET constraint: tracked indirect transfers can only land on an
    // end-branch, so the candidate set is the ENDBR-marked entries.
    graph.indirect_targets = entries
        .iter()
        .copied()
        .filter(|&e| s.index_of_addr(e).is_some_and(|j| s.kind_at(j).is_endbr()))
        .collect();
    graph
}

/// Instruction-level reachability over the packed stream: a BFS from
/// `roots` following fallthrough, conditional/unconditional direct
/// branches, and direct-call edges, stopping at returns, traps, and
/// indirect jumps. Returns one bit per instruction index, packed into
/// `u64` words (`reach[i / 64] >> (i % 64) & 1`).
///
/// Roots that do not land exactly on a decoded instruction are ignored.
/// Reuses `reach`/`work` buffers across calls (see [`crate::Scratch`]).
pub(crate) fn reachable_insns_into(
    sweep: &SweepIndex,
    roots: impl IntoIterator<Item = u64>,
    reach: &mut Vec<u64>,
    work: &mut Vec<u32>,
) {
    let s = &sweep.insns;
    let words = s.len().div_ceil(64);
    reach.clear();
    reach.resize(words, 0);
    work.clear();

    let mark = |reach: &mut Vec<u64>, work: &mut Vec<u32>, i: usize| {
        let (w, b) = (i / 64, i % 64);
        if reach[w] >> b & 1 == 0 {
            reach[w] |= 1 << b;
            work.push(i as u32);
        }
    };

    for root in roots {
        if let Some(i) = s.index_of_addr(root) {
            mark(reach, work, i);
        }
    }

    while let Some(i) = work.pop() {
        let i = i as usize;
        for succ in s.successors(i) {
            if let Some(j) = s.index_of_addr(succ) {
                mark(reach, work, j);
            }
        }
        if let Some(target) = s.flow_at(i).call_target() {
            if let Some(j) = s.index_of_addr(target) {
                mark(reach, work, j);
            }
        }
    }
}

/// `reachable_insns_into` with fresh buffers, returning the packed
/// reachability bitmap.
pub fn reachable_insns(sweep: &SweepIndex, roots: impl IntoIterator<Item = u64>) -> Vec<u64> {
    let mut reach = Vec::new();
    let mut work = Vec::new();
    reachable_insns_into(sweep, roots, &mut reach, &mut work);
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disassemble::disassemble;
    use crate::parse::Parsed;

    fn sweep(code: &[u8], addr: u64) -> SweepIndex {
        disassemble(&Parsed::from_region(addr, code, true))
    }

    fn call(rel: i32) -> Vec<u8> {
        let mut v = vec![0xe8];
        v.extend_from_slice(&rel.to_le_bytes());
        v
    }

    fn jmp(rel: i32) -> Vec<u8> {
        let mut v = vec![0xe9];
        v.extend_from_slice(&rel.to_le_bytes());
        v
    }

    #[test]
    fn direct_calls_become_edges_with_owners() {
        // f at 0x100: call g; ret.   g at 0x106: ret
        let mut code = call(1); // at 0x100, target 0x106
        code.push(0xc3);
        code.push(0xc3);
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100, 0x106]);
        assert_eq!(g.edges.len(), 1);
        let e = g.edges[0];
        assert_eq!(
            (e.site, e.caller, e.callee, e.kind),
            (0x100, Some(0x100), 0x106, CallKind::Direct)
        );
        assert_eq!(g.direct_count(), 1);
        assert_eq!(g.tail_count(), 0);
        assert_eq!(g.direct_edge_pairs().len(), 1);
    }

    #[test]
    fn tail_jump_targets_callee_entry_not_fallthrough() {
        // Regression for the SELECTTAILCALL audit: a tail-call site must
        // surface as a Tail edge whose callee is the jump TARGET (the
        // callee's entry), never the address after the jump.
        // f at 0x100: nop; jmp g (skipping a ret at 0x106).
        // g at 0x107: ret
        let mut code = vec![0x90];
        code.extend(jmp(1)); // at 0x101, len 5 → target 0x107
        code.push(0xc3); // 0x106 — the fallthrough address, NOT the callee
        code.push(0xc3); // 0x107 — g
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100, 0x107]);
        assert_eq!(g.tail_count(), 1);
        let e = g.edges.iter().find(|e| e.kind == CallKind::Tail).unwrap();
        assert_eq!(e.site, 0x101);
        assert_eq!(e.callee, 0x107, "edge goes to the callee entry");
        assert_ne!(e.callee, e.site + 5, "…not to the fallthrough after the jump");
        assert_eq!(e.caller, Some(0x100));
        // And the caller's CFG has no intra-procedural edge for it.
        let cfg = crate::cfg::build_cfg(&s, 0x100, 0x107);
        let tail_block = cfg.blocks.last().unwrap();
        assert!(tail_block.succs.is_empty(), "tail-call exit is not a CFG edge");
    }

    #[test]
    fn jump_within_own_function_is_not_a_tail_edge() {
        // f at 0x100: jmp 0x100 (self-loop to own entry).
        let code = jmp(-5);
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100]);
        assert_eq!(g.tail_count(), 0, "loop back to own entry is not a call");
    }

    #[test]
    fn jump_to_unidentified_target_is_not_an_edge() {
        // jmp 0x109 where 0x109 is not an identified entry.
        let mut code = jmp(4);
        code.extend_from_slice(&[0x90, 0x90, 0x90, 0x90, 0xc3]);
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn indirect_targets_are_endbr_entries_only() {
        // f at 0x100 (endbr64; ret) and g at 0x105 (plain ret): only f
        // may be targeted by a tracked indirect transfer.
        let code = [0xf3, 0x0f, 0x1e, 0xfa, 0xc3, 0xc3, 0xff, 0xd0];
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100, 0x105]);
        assert_eq!(g.indirect_targets, vec![0x100], "non-ENDBR entry excluded");
        assert_eq!(g.indirect_call_sites, vec![0x106]);
        assert_eq!(g.notrack_sites, 0);
    }

    #[test]
    fn notrack_sites_are_exempt_from_the_constraint() {
        // notrack jmp rax (3e ff e0) then tracked jmp rax.
        let code = [0x3e, 0xff, 0xe0, 0xff, 0xe0];
        let s = sweep(&code, 0x100);
        let g = build_call_graph(&s, &[0x100]);
        assert_eq!(g.notrack_sites, 1);
        assert_eq!(g.indirect_jump_sites, vec![0x103]);
    }

    #[test]
    fn reachability_walks_calls_branches_and_fallthrough() {
        // 0x100: call 0x10b ; 0x105: jne 0x109 ; 0x107/0x108: nops ;
        // 0x109: ret ; 0x10a: unreachable nop ; 0x10b: callee ret
        let mut code = call(6); // 0x100 → target 0x10b
        code.extend_from_slice(&[0x75, 0x02]); // 0x105: jne 0x109
        code.extend_from_slice(&[0x90, 0x90]); // 0x107, 0x108
        code.push(0xc3); // 0x109
        code.push(0x90); // 0x10a — unreachable filler
        code.push(0xc3); // 0x10b — callee
        let s = sweep(&code, 0x100);
        let reach = reachable_insns(&s, [0x100]);
        let bit = |addr: u64| {
            let i = s.insn_at(addr).unwrap();
            reach[i / 64] >> (i % 64) & 1 == 1
        };
        for addr in [0x100, 0x105, 0x107, 0x108, 0x109, 0x10b] {
            assert!(bit(addr), "{addr:#x} should be reachable");
        }
        assert!(!bit(0x10a), "filler after ret is unreachable");
    }

    #[test]
    fn reachability_stops_at_ret_and_traps() {
        // ret; nop — nothing past the return without another root.
        let code = [0xc3, 0x90];
        let s = sweep(&code, 0x100);
        let reach = reachable_insns(&s, [0x100]);
        assert_eq!(reach[0] & 0b11, 0b01);
        // A second root resurrects the tail.
        let reach = reachable_insns(&s, [0x100, 0x101]);
        assert_eq!(reach[0] & 0b11, 0b11);
    }

    #[test]
    fn roots_off_instruction_boundaries_are_ignored() {
        let code = [0x90, 0xc3];
        let s = sweep(&code, 0x100);
        let reach = reachable_insns(&s, [0x1234]);
        assert!(reach.iter().all(|&w| w == 0));
    }
}
