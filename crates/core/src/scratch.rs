//! Reusable working-set arena for the Algorithm-1 stages.
//!
//! Every [`crate::FunSeeker::run_stages`] call needs a handful of
//! intermediate collections: the filtered end-branch list, the growing
//! candidate set, SELECTTAILCALL's referer pairs. Allocating them per
//! call is invisible for one binary but measurable over a corpus of
//! thousands — the batch engine analyzes one binary per task on a
//! persistent worker pool, so the same buffers can serve every binary a
//! worker ever sees.
//!
//! [`Scratch`] owns those buffers. Each stage clears and refills them,
//! which keeps capacity: after the first few binaries of a batch the
//! arena has grown to the workload's high-water mark and the working
//! sets of later binaries allocate nothing. (The returned
//! [`crate::Analysis`] still owns its `functions` set — the arena only
//! absorbs the *intermediate* allocations.)
//!
//! The one-shot entry points ([`crate::FunSeeker::identify`],
//! [`crate::FunSeeker::run_stages`]) build a fresh arena internally;
//! batch callers hold one per worker and pass it to
//! [`crate::FunSeeker::run_stages_with`].

/// Cumulative per-stage wall time and candidate counts for the
/// Algorithm-1 back end.
///
/// [`crate::FunSeeker::run_stages_with`] and the fused
/// [`crate::AnalysisPlan`] both charge their work here (the counters
/// live in [`Scratch`], accumulating across every analysis a worker
/// runs). `experiments -- perf` and the batch report read them to show
/// where the stage pipeline spends its time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// FILTERENDBR (or the plain `E` sort/dedup when filtering is off),
    /// including the optional pattern-scan union.
    pub filter_ns: u64,
    /// SELECTTAILCALL: interval construction, referer accumulation, and
    /// the selected-target union.
    pub tailcall_ns: u64,
    /// Candidate-set construction: the `E′ ∪ C` and `∪ J` merges, the
    /// `J` dedup, and reachability pruning.
    pub boundaries_ns: u64,
    /// Interprocedural summaries (CFGs + call graph), when requested.
    pub interproc_ns: u64,
    /// Σ |E′| over all runs — entry candidates surviving FILTERENDBR.
    pub entry_candidates: u64,
    /// Σ |J′| over all runs — tail-call targets selected.
    pub tail_candidates: u64,
    /// Σ |functions| over all runs — final identified entries.
    pub final_candidates: u64,
}

impl StageStats {
    /// Adds another accumulator's counters into this one.
    pub fn merge(&mut self, other: &StageStats) {
        self.filter_ns += other.filter_ns;
        self.tailcall_ns += other.tailcall_ns;
        self.boundaries_ns += other.boundaries_ns;
        self.interproc_ns += other.interproc_ns;
        self.entry_candidates += other.entry_candidates;
        self.tail_candidates += other.tail_candidates;
        self.final_candidates += other.final_candidates;
    }

    /// Total stage wall time, summed over the four buckets.
    pub fn total_ns(&self) -> u64 {
        self.filter_ns + self.tailcall_ns + self.boundaries_ns + self.interproc_ns
    }
}

/// Reusable buffers for one analysis worker.
///
/// Obtain with [`Scratch::new`], pass to
/// [`crate::FunSeeker::run_stages_with`], reuse for the next binary. The
/// contents between calls are unspecified; every user clears before use.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Sweep end-branches unioned with the pattern scan (only used when
    /// `endbr_pattern_scan` is enabled).
    pub(crate) endbr_union: Vec<u64>,
    /// FILTERENDBR's indirect-return points.
    pub(crate) return_points: Vec<u64>,
    /// `E` or `E′`, sorted.
    pub(crate) entries: Vec<u64>,
    /// The growing candidate set `E′ ∪ C (∪ J′)`, sorted.
    pub(crate) functions: Vec<u64>,
    /// Distinct direct-jump targets (`J` as a set).
    pub(crate) jmp_targets: Vec<u64>,
    /// Region start addresses (interval breaks for SELECTTAILCALL).
    pub(crate) region_starts: Vec<u64>,
    /// SELECTTAILCALL's `(target, referring interval)` accumulator.
    pub(crate) referers: Vec<(u64, Option<u64>)>,
    /// SELECTTAILCALL's output `J′`.
    pub(crate) tails: Vec<u64>,
    /// Reachability pruning's bit-per-instruction visited set (packed
    /// `u64` words; only used when `reach_prune` is enabled).
    pub(crate) reach: Vec<u64>,
    /// Reachability pruning's BFS worklist of instruction indices.
    pub(crate) work: Vec<u32>,
    /// [`crate::AnalysisPlan`]'s PLT-return points (addresses after any
    /// call into the PLT) — build-time temporary for the evidence-class
    /// partition.
    pub(crate) plt_returns: Vec<u64>,
    /// Cumulative per-stage timing and candidate counters; never
    /// cleared by the stages — callers snapshot or reset via
    /// [`Scratch::take_stats`].
    pub stats: StageStats,
}

impl Scratch {
    /// An empty arena; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently retained, in bytes — what a batch
    /// scheduler accounts against its in-flight memory budget.
    pub fn capacity_bytes(&self) -> usize {
        let u64s = self.endbr_union.capacity()
            + self.return_points.capacity()
            + self.entries.capacity()
            + self.functions.capacity()
            + self.jmp_targets.capacity()
            + self.region_starts.capacity()
            + self.tails.capacity()
            + self.reach.capacity()
            + self.plt_returns.capacity();
        u64s * std::mem::size_of::<u64>()
            + self.referers.capacity() * std::mem::size_of::<(u64, Option<u64>)>()
            + self.work.capacity() * std::mem::size_of::<u32>()
    }

    /// Takes the accumulated [`StageStats`], resetting the counters —
    /// how a scheduler charges one task's stage time to its own
    /// aggregate without double counting.
    pub fn take_stats(&mut self) -> StageStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_retained_across_reuse() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = crate::prepare(&bytes).unwrap();
        let seeker = crate::FunSeeker::new();

        let mut scratch = Scratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        let first = seeker.run_stages_with(&prepared.parsed, &prepared.index, &mut scratch);
        let warm = scratch.capacity_bytes();
        assert!(warm > 0, "analysis of a real binary fills the arena");

        // Re-analyzing the same binary must not grow the arena further —
        // the buffers are at their high-water mark already.
        let second = seeker.run_stages_with(&prepared.parsed, &prepared.index, &mut scratch);
        assert_eq!(first, second, "scratch reuse must not change results");
        assert_eq!(scratch.capacity_bytes(), warm, "warm arena stops growing");
    }
}
