//! Reusable working-set arena for the Algorithm-1 stages.
//!
//! Every [`crate::FunSeeker::run_stages`] call needs a handful of
//! intermediate collections: the filtered end-branch list, the growing
//! candidate set, SELECTTAILCALL's referer pairs. Allocating them per
//! call is invisible for one binary but measurable over a corpus of
//! thousands — the batch engine analyzes one binary per task on a
//! persistent worker pool, so the same buffers can serve every binary a
//! worker ever sees.
//!
//! [`Scratch`] owns those buffers. Each stage clears and refills them,
//! which keeps capacity: after the first few binaries of a batch the
//! arena has grown to the workload's high-water mark and the working
//! sets of later binaries allocate nothing. (The returned
//! [`crate::Analysis`] still owns its `functions` set — the arena only
//! absorbs the *intermediate* allocations.)
//!
//! The one-shot entry points ([`crate::FunSeeker::identify`],
//! [`crate::FunSeeker::run_stages`]) build a fresh arena internally;
//! batch callers hold one per worker and pass it to
//! [`crate::FunSeeker::run_stages_with`].

/// Reusable buffers for one analysis worker.
///
/// Obtain with [`Scratch::new`], pass to
/// [`crate::FunSeeker::run_stages_with`], reuse for the next binary. The
/// contents between calls are unspecified; every user clears before use.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Sweep end-branches unioned with the pattern scan (only used when
    /// `endbr_pattern_scan` is enabled).
    pub(crate) endbr_union: Vec<u64>,
    /// FILTERENDBR's indirect-return points.
    pub(crate) return_points: Vec<u64>,
    /// `E` or `E′`, sorted.
    pub(crate) entries: Vec<u64>,
    /// The growing candidate set `E′ ∪ C (∪ J′)`, sorted.
    pub(crate) functions: Vec<u64>,
    /// Distinct direct-jump targets (`J` as a set).
    pub(crate) jmp_targets: Vec<u64>,
    /// Region start addresses (interval breaks for SELECTTAILCALL).
    pub(crate) region_starts: Vec<u64>,
    /// SELECTTAILCALL's `(target, referring interval)` accumulator.
    pub(crate) referers: Vec<(u64, Option<u64>)>,
    /// SELECTTAILCALL's output `J′`.
    pub(crate) tails: Vec<u64>,
    /// Reachability pruning's bit-per-instruction visited set (packed
    /// `u64` words; only used when `reach_prune` is enabled).
    pub(crate) reach: Vec<u64>,
    /// Reachability pruning's BFS worklist of instruction indices.
    pub(crate) work: Vec<u32>,
}

impl Scratch {
    /// An empty arena; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently retained, in bytes — what a batch
    /// scheduler accounts against its in-flight memory budget.
    pub fn capacity_bytes(&self) -> usize {
        let u64s = self.endbr_union.capacity()
            + self.return_points.capacity()
            + self.entries.capacity()
            + self.functions.capacity()
            + self.jmp_targets.capacity()
            + self.region_starts.capacity()
            + self.tails.capacity()
            + self.reach.capacity();
        u64s * std::mem::size_of::<u64>()
            + self.referers.capacity() * std::mem::size_of::<(u64, Option<u64>)>()
            + self.work.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_retained_across_reuse() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = crate::prepare(&bytes).unwrap();
        let seeker = crate::FunSeeker::new();

        let mut scratch = Scratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        let first = seeker.run_stages_with(&prepared.parsed, &prepared.index, &mut scratch);
        let warm = scratch.capacity_bytes();
        assert!(warm > 0, "analysis of a real binary fills the arena");

        // Re-analyzing the same binary must not grow the arena further —
        // the buffers are at their high-water mark already.
        let second = seeker.run_stages_with(&prepared.parsed, &prepared.index, &mut scratch);
        assert_eq!(first, second, "scratch reuse must not change results");
        assert_eq!(scratch.capacity_bytes(), warm, "warm arena stops growing");
    }
}
