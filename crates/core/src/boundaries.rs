//! Function *boundary* estimation on top of identified entries.
//!
//! The paper scopes FunSeeker to function **starts** — the metric IDA,
//! Ghidra and FETCH are compared on. Downstream consumers (CFG builders,
//! patchers) usually want `[start, end)` ranges too. This module derives
//! them with the standard convention: a function extends from its entry
//! to the last reachable-by-fallthrough instruction before the next
//! entry, with trailing padding peeled off.

use std::borrow::Borrow;

use funseeker_disasm::InsnKind;

use crate::analyzer::Prepared;

/// One estimated function extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionBounds {
    /// Entry address.
    pub start: u64,
    /// One past the last instruction byte attributed to the function
    /// (padding excluded).
    pub end: u64,
}

impl FunctionBounds {
    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty (an entry with no decodable body).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Derives boundaries for a set of identified entries.
///
/// `entries` is any iterable of entry addresses — the
/// [`crate::Analysis::functions`] set, a sorted slice, an array literal;
/// it is sorted and deduplicated internally.
///
/// Instructions between one entry and the next belong to the earlier
/// function; trailing `NOP`/`INT3` alignment padding is trimmed. A
/// function never extends past the end of its code region: the last
/// entry in `.text` stops at `.text`'s end even when `.fini` follows.
///
/// Reads the instruction stream from the shared [`Prepared::index`]; no
/// re-disassembly happens here.
pub fn estimate_bounds<I>(prepared: &Prepared<'_>, entries: I) -> Vec<FunctionBounds>
where
    I: IntoIterator,
    I::Item: Borrow<u64>,
{
    let mut starts: Vec<u64> = entries.into_iter().map(|e| *e.borrow()).collect();
    starts.sort_unstable();
    starts.dedup();
    let (_, code_end) = prepared.parsed.code.bounds();

    let mut out = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let region_end = prepared.parsed.code.region_of(start).map(|r| r.end()).unwrap_or(code_end);
        let limit = starts.get(i + 1).copied().unwrap_or(region_end).min(region_end);
        // Walk instructions in [start, limit), remembering the last
        // non-padding one.
        let mut end = start;
        for insn in prepared.index.insns_in(start, limit) {
            match insn.kind {
                InsnKind::Nop | InsnKind::Int3 => {}
                _ => end = insn.end(),
            }
        }
        out.push(FunctionBounds { start, end: end.max(start) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Parsed;

    fn prepared(text: &[u8], addr: u64) -> Prepared<'_> {
        Prepared::from_parsed(Parsed::from_region(addr, text, true))
    }

    #[test]
    fn bounds_trim_padding() {
        // f0: endbr64; ret; [nop pad ×3] f1: endbr64; xor eax,eax; ret
        let code = [
            0xf3, 0x0f, 0x1e, 0xfa, 0xc3, // 0x1000..0x1005
            0x90, 0x90, 0x90, // padding
            0xf3, 0x0f, 0x1e, 0xfa, 0x31, 0xc0, 0xc3, // 0x1008..
        ];
        let p = prepared(&code, 0x1000);
        let bounds = estimate_bounds(&p, [0x1000u64, 0x1008]);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0], FunctionBounds { start: 0x1000, end: 0x1005 });
        assert_eq!(bounds[1], FunctionBounds { start: 0x1008, end: 0x100f });
        assert_eq!(bounds[0].len(), 5);
        assert!(!bounds[0].is_empty());
    }

    #[test]
    fn last_function_extends_to_region_end() {
        let code = [0xf3, 0x0f, 0x1e, 0xfa, 0x31, 0xc0, 0xc3];
        let p = prepared(&code, 0x2000);
        let bounds = estimate_bounds(&p, [0x2000u64]);
        assert_eq!(bounds[0].end, 0x2007);
    }

    #[test]
    fn bounds_stop_at_region_boundary() {
        use crate::parse::{CodeRegion, CodeView};
        // One entry in region A; region B follows with live code. The
        // function must not absorb region B.
        let a = [0xf3u8, 0x0f, 0x1e, 0xfa, 0xc3];
        let b = [0x31u8, 0xc0, 0xc3];
        let mut parsed = Parsed::from_region(0, &[], true);
        parsed.code = CodeView::new(vec![
            CodeRegion { name: ".a".into(), addr: 0x1000, bytes: &a },
            CodeRegion { name: ".b".into(), addr: 0x1008, bytes: &b },
        ]);
        let p = Prepared::from_parsed(parsed);
        let bounds = estimate_bounds(&p, [0x1000u64]);
        assert_eq!(bounds[0], FunctionBounds { start: 0x1000, end: 0x1005 });
    }

    #[test]
    fn corpus_bounds_cover_ground_truth_sizes() {
        use funseeker_corpus::{Dataset, DatasetParams};
        let ds = Dataset::generate(&DatasetParams::tiny(), 3);
        for bin in ds.binaries.iter().take(4) {
            let prepared = crate::analyzer::prepare(&bin.bytes).unwrap();
            let truth = bin.truth.eval_entries();
            let bounds = estimate_bounds(&prepared, &truth);
            for (b, f) in bounds.iter().zip(bin.truth.functions.iter().filter(|f| !f.is_part)) {
                assert_eq!(b.start, f.addr);
                // The estimate may absorb an adjacent fragment, but never
                // undershoots the function's real code.
                assert!(b.len() >= f.size, "{}: estimated {} < real {}", f.name, b.len(), f.size);
            }
        }
    }
}
