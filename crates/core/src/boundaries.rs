//! Function *boundary* estimation on top of identified entries.
//!
//! The paper scopes FunSeeker to function **starts** — the metric IDA,
//! Ghidra and FETCH are compared on. Downstream consumers (CFG builders,
//! patchers) usually want `[start, end)` ranges too. This module derives
//! them with the standard convention: a function extends from its entry
//! to the last reachable-by-fallthrough instruction before the next
//! entry, with trailing padding peeled off.

use std::collections::BTreeSet;

use funseeker_disasm::{InsnKind, LinearSweep, Mode};

use crate::parse::Parsed;

/// One estimated function extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionBounds {
    /// Entry address.
    pub start: u64,
    /// One past the last instruction byte attributed to the function
    /// (padding excluded).
    pub end: u64,
}

impl FunctionBounds {
    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty (an entry with no decodable body).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Derives boundaries for a set of identified entries.
///
/// Instructions between one entry and the next belong to the earlier
/// function; trailing `NOP`/`INT3` alignment padding is trimmed.
pub fn estimate_bounds(parsed: &Parsed<'_>, entries: &BTreeSet<u64>) -> Vec<FunctionBounds> {
    let mode = if parsed.wide { Mode::Bits64 } else { Mode::Bits32 };
    let insns: Vec<_> = LinearSweep::new(parsed.text, parsed.text_addr, mode).collect();
    let starts: Vec<u64> = entries.iter().copied().collect();

    let mut out = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let limit = starts.get(i + 1).copied().unwrap_or(parsed.text_end());
        // Walk instructions in [start, limit), remembering the last
        // non-padding one.
        let from = insns.partition_point(|x| x.addr < start);
        let mut end = start;
        for insn in insns[from..].iter().take_while(|x| x.addr < limit) {
            match insn.kind {
                InsnKind::Nop | InsnKind::Int3 => {}
                _ => end = insn.end(),
            }
        }
        out.push(FunctionBounds { start, end: end.max(start) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_elf::PltMap;

    fn parsed(text: &[u8], addr: u64) -> Parsed<'_> {
        Parsed {
            text_addr: addr,
            text,
            wide: true,
            landing_pads: BTreeSet::new(),
            plt: PltMap::default(),
            cet: Default::default(),
        }
    }

    #[test]
    fn bounds_trim_padding() {
        // f0: endbr64; ret; [nop pad ×3] f1: endbr64; xor eax,eax; ret
        let code = [
            0xf3, 0x0f, 0x1e, 0xfa, 0xc3, // 0x1000..0x1005
            0x90, 0x90, 0x90, // padding
            0xf3, 0x0f, 0x1e, 0xfa, 0x31, 0xc0, 0xc3, // 0x1008..
        ];
        let p = parsed(&code, 0x1000);
        let entries: BTreeSet<u64> = [0x1000u64, 0x1008].into_iter().collect();
        let bounds = estimate_bounds(&p, &entries);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0], FunctionBounds { start: 0x1000, end: 0x1005 });
        assert_eq!(bounds[1], FunctionBounds { start: 0x1008, end: 0x100f });
        assert_eq!(bounds[0].len(), 5);
        assert!(!bounds[0].is_empty());
    }

    #[test]
    fn last_function_extends_to_text_end() {
        let code = [0xf3, 0x0f, 0x1e, 0xfa, 0x31, 0xc0, 0xc3];
        let p = parsed(&code, 0x2000);
        let entries: BTreeSet<u64> = [0x2000u64].into_iter().collect();
        let bounds = estimate_bounds(&p, &entries);
        assert_eq!(bounds[0].end, 0x2007);
    }

    #[test]
    fn corpus_bounds_cover_ground_truth_sizes() {
        use funseeker_corpus::{Dataset, DatasetParams};
        let ds = Dataset::generate(&DatasetParams::tiny(), 3);
        for bin in ds.binaries.iter().take(4) {
            let parsed = crate::parse::parse(&bin.bytes).unwrap();
            let truth = bin.truth.eval_entries();
            let bounds = estimate_bounds(&parsed, &truth);
            for (b, f) in bounds.iter().zip(bin.truth.functions.iter().filter(|f| !f.is_part)) {
                assert_eq!(b.start, f.addr);
                // The estimate may absorb an adjacent fragment, but never
                // undershoots the function's real code.
                assert!(
                    b.len() >= f.size,
                    "{}: estimated {} < real {}",
                    f.name,
                    b.len(),
                    f.size
                );
            }
        }
    }
}
