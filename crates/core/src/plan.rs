//! The fused multi-configuration analysis plan.
//!
//! The paper's evaluation runs every binary under four configurations
//! (Table II's ablation of FILTERENDBR / SELECTTAILCALL). PARSE and
//! DISASSEMBLE are already shared via [`crate::Prepared`], but the
//! *stage* pipeline ([`crate::FunSeeker::run_stages_with`]) used to run
//! from scratch per configuration — paying PLT classification,
//! landing-pad filtering, and candidate-set construction four times per
//! binary.
//!
//! [`AnalysisPlan`] materializes every **config-invariant** primitive in
//! one pass over the shared [`SweepIndex`] + [`Parsed`]:
//!
//! | primitive | contents | configs that read it |
//! |---|---|---|
//! | `E` partition | every end-branch classified as *plain*, *PLT-return*, *special-return* (setjmp family), or *landing pad* | all |
//! | `E′` | the kept classes (plain + PLT-return) | ②③④ |
//! | `C` | direct call targets, sorted | all |
//! | `E ∪ C`, `E′ ∪ C` | the two candidate bases, pre-merged | all |
//! | `J` | distinct direct jump targets | ③ (+ count for all) |
//! | tail runs | `(target, distinct referring intervals)` for every jump leaving its interval — `J′` at *any* `min_tail_referers` falls out by thresholding | ④ |
//! | reach bitmap | instructions reachable from the entry ∪ `E` ∪ `C` root set (computed lazily; the root set is config-invariant because `E′ ⊆ E`) | `reach_prune` variants |
//! | CET verdict | the `.note.gnu.property` IBT+SHSTK check | all |
//!
//! [`AnalysisPlan::derive`] then produces each configuration's
//! [`Analysis`] by cheap set algebra over the plan — linear merges of
//! already-sorted runs — instead of a full stage re-run. The output is
//! **bit-identical** to [`crate::FunSeeker::run_stages_with`] for the
//! same `(parsed, sweep)` pair; configurations outside the plan's
//! supported family (see [`AnalysisPlan::supports`]) fall back to the
//! reference pipeline internally, so `derive` is always safe to call.
//!
//! The plan owns its buffers and is rebuilt in place per binary
//! ([`AnalysisPlan::rebuild`] clears and refills, keeping capacity), so
//! a batch worker holding one plan next to its [`Scratch`] stops
//! allocating on the warm path.

use std::time::Instant;

use crate::analyzer::{Analysis, FunSeeker, InterprocSummary};
use crate::config::Config;
use crate::disassemble::SweepIndex;
use crate::filter::is_indirect_return_name;
use crate::funcset::FuncSet;
use crate::parse::Parsed;
use crate::scratch::Scratch;
use crate::tailcall::tail_referer_runs_into;

/// FILTERENDBR evidence class of one end-branch (§III-B / §IV-C).
///
/// The classes partition `E`; FILTERENDBR keeps exactly
/// [`EndbrClass::Plain`] and [`EndbrClass::PltReturn`]. An end-branch
/// matching several classes is assigned the first in the order below —
/// the kept/dropped verdict is unaffected because both dropped classes
/// precede both kept ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndbrClass {
    /// A C++ exception landing pad (from `.gcc_except_table`) —
    /// dropped.
    LandingPad = 0,
    /// The return point of a call to an indirect-return function
    /// (`setjmp` family, GCC's `special_function_p` list) — dropped.
    SpecialReturn = 1,
    /// The instruction after a call to some *other* PLT stub: the
    /// end-branch is a plain return point that happens to carry CET's
    /// marker — kept (only the special functions of §III-B return
    /// indirectly).
    PltReturn = 2,
    /// No non-entry evidence — kept.
    Plain = 3,
}

/// All evidence classes, in classification-precedence order.
pub const ENDBR_CLASSES: [EndbrClass; 4] =
    [EndbrClass::LandingPad, EndbrClass::SpecialReturn, EndbrClass::PltReturn, EndbrClass::Plain];

/// Config-invariant stage primitives for one binary, materialized once;
/// the module-level docs carry the full partition table.
///
/// ```
/// use funseeker::{prepare, AnalysisPlan, Config, FunSeeker, Scratch};
/// let bytes = std::fs::read("/proc/self/exe").unwrap();
/// let prepared = prepare(&bytes).unwrap();
/// let mut plan = AnalysisPlan::new();
/// let mut scratch = Scratch::new();
/// plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
/// for (_, config) in Config::table2() {
///     let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
///     let slow = FunSeeker::with_config(config).identify_prepared(&prepared);
///     assert_eq!(fast, slow); // bit-identical, ~4x less stage work
/// }
/// ```
#[derive(Debug, Default)]
pub struct AnalysisPlan {
    /// Program entry point (identity guard + prune root).
    entry: u64,
    /// `[start, end)` of the analyzed code.
    text_range: (u64, u64),
    /// The `.note.gnu.property` IBT+SHSTK verdict.
    cet_enabled: bool,
    /// Decode errors recorded by the shared sweep.
    decode_errors: usize,
    /// |E| before deduplication (what `run_stages` reports).
    endbr_count: usize,
    /// Members per [`EndbrClass`], indexed by discriminant.
    class_counts: [usize; 4],
    /// `E` sorted and deduplicated.
    entries_all: Vec<u64>,
    /// `E′` — the kept classes, sorted.
    entries_filtered: Vec<u64>,
    /// `C` as a sorted slice (mirrors the sweep's set).
    call_targets: Vec<u64>,
    /// `E ∪ C`, pre-merged.
    cands_unfiltered: Vec<u64>,
    /// `E′ ∪ C`, pre-merged — the default candidate base.
    cands_filtered: Vec<u64>,
    /// `J` — distinct direct jump targets.
    jmp_targets: Vec<u64>,
    /// SELECTTAILCALL interval structure over `E′ ∪ C`: `(target,
    /// distinct referring intervals)`, sorted by target.
    tail_runs: Vec<(u64, u32)>,
    /// Reachability bitmap (bit per instruction), built on first
    /// `reach_prune` derive.
    reach: Vec<u64>,
    /// Whether `reach` is valid for the current binary.
    reach_built: bool,
}

impl AnalysisPlan {
    /// An empty plan; [`rebuild`](AnalysisPlan::rebuild) before use.
    pub fn new() -> AnalysisPlan {
        AnalysisPlan::default()
    }

    /// Builds a plan for one prepared binary with a private scratch
    /// arena. Batch callers reuse a long-lived plan + arena via
    /// [`rebuild`](AnalysisPlan::rebuild) instead.
    pub fn build(parsed: &Parsed<'_>, sweep: &SweepIndex) -> AnalysisPlan {
        let mut plan = AnalysisPlan::new();
        plan.rebuild(parsed, sweep, &mut Scratch::new());
        plan
    }

    /// Whether [`derive`](AnalysisPlan::derive) can serve `config` from
    /// the plan's primitives. Two families step outside them:
    /// `endbr_pattern_scan` changes `E` itself, and SELECTTAILCALL over
    /// the *unfiltered* base `E ∪ C` (an off-grid combination — every
    /// Table II configuration that selects tail calls also filters)
    /// would need a second interval structure. Both fall back to the
    /// reference pipeline inside `derive`.
    pub fn supports(config: &Config) -> bool {
        if config.endbr_pattern_scan {
            return false;
        }
        !(config.select_tail_calls && config.include_jump_targets && !config.filter_endbr)
    }

    /// Recomputes every primitive for a new binary, reusing the plan's
    /// buffers (and `scratch`'s temporaries) so the warm path allocates
    /// nothing.
    pub fn rebuild(&mut self, parsed: &Parsed<'_>, sweep: &SweepIndex, scratch: &mut Scratch) {
        self.entry = parsed.entry;
        self.text_range = parsed.code.bounds();
        self.cet_enabled = parsed.cet.full();
        self.decode_errors = sweep.decode_errors;
        self.endbr_count = sweep.endbrs.len();
        self.reach_built = false;

        // --- FILTERENDBR evidence, one pass over the call sites. ---
        // Special (setjmp-family) return points are a subset of the
        // PLT return points; both lists come from the same PLT lookup.
        let t = Instant::now();
        scratch.return_points.clear();
        scratch.plt_returns.clear();
        for &(after, target) in &sweep.call_sites {
            if let Some(name) = parsed.plt.name_at(target) {
                scratch.plt_returns.push(after);
                if is_indirect_return_name(name) {
                    scratch.return_points.push(after);
                }
            }
        }
        scratch.return_points.sort_unstable();
        scratch.return_points.dedup();
        scratch.plt_returns.sort_unstable();
        scratch.plt_returns.dedup();

        // `E` sorted+deduped, partitioned by evidence class; `E′` falls
        // out as the kept classes.
        self.entries_all.clear();
        self.entries_all.extend_from_slice(&sweep.endbrs);
        self.entries_all.sort_unstable();
        self.entries_all.dedup();
        self.entries_filtered.clear();
        self.class_counts = [0; 4];
        for &e in &self.entries_all {
            let class = if parsed.landing_pads.contains(&e) {
                EndbrClass::LandingPad
            } else if scratch.return_points.binary_search(&e).is_ok() {
                EndbrClass::SpecialReturn
            } else if scratch.plt_returns.binary_search(&e).is_ok() {
                EndbrClass::PltReturn
            } else {
                EndbrClass::Plain
            };
            self.class_counts[class as usize] += 1;
            if matches!(class, EndbrClass::Plain | EndbrClass::PltReturn) {
                self.entries_filtered.push(e);
            }
        }
        scratch.stats.filter_ns += t.elapsed().as_nanos() as u64;

        // --- Candidate bases and the jump-target set. ---
        let t = Instant::now();
        self.call_targets.clear();
        self.call_targets.extend(sweep.call_targets.iter().copied());
        merge_union_into(&self.entries_all, &self.call_targets, &mut self.cands_unfiltered);
        merge_union_into(&self.entries_filtered, &self.call_targets, &mut self.cands_filtered);
        self.jmp_targets.clear();
        self.jmp_targets.extend(sweep.jmp_edges.iter().map(|&(_, t)| t));
        self.jmp_targets.sort_unstable();
        self.jmp_targets.dedup();
        scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;

        // --- SELECTTAILCALL interval structure over `E′ ∪ C`. ---
        let t = Instant::now();
        scratch.region_starts.clear();
        scratch.region_starts.extend(sweep.regions.iter().map(|r| r.start));
        tail_referer_runs_into(
            &self.cands_filtered,
            &sweep.jmp_edges,
            &scratch.region_starts,
            &mut scratch.referers,
            &mut self.tail_runs,
        );
        scratch.stats.tailcall_ns += t.elapsed().as_nanos() as u64;
    }

    /// Derives one configuration's [`Analysis`] from the plan — linear
    /// set algebra over the pre-merged runs, bit-identical to
    /// [`crate::FunSeeker::run_stages_with`] on the same `(parsed,
    /// sweep)` the plan was rebuilt from. Unsupported configurations
    /// (see [`supports`](AnalysisPlan::supports)) run the reference
    /// pipeline instead.
    pub fn derive(
        &mut self,
        config: &Config,
        parsed: &Parsed<'_>,
        sweep: &SweepIndex,
        scratch: &mut Scratch,
    ) -> Analysis {
        if !Self::supports(config) {
            return FunSeeker::with_config(*config).run_stages_with(parsed, sweep, scratch);
        }
        debug_assert_eq!(self.entry, parsed.entry, "plan built from a different binary");
        debug_assert_eq!(self.endbr_count, sweep.endbrs.len(), "plan built from a different sweep");

        let entries: &[u64] =
            if config.filter_endbr { &self.entries_filtered } else { &self.entries_all };
        let base: &[u64] =
            if config.filter_endbr { &self.cands_filtered } else { &self.cands_unfiltered };

        // Stage the final run in the arena only when `J` evidence has
        // to be merged in; the `E ∪ C` configurations publish their
        // pre-merged base directly.
        let mut tail_count = 0;
        if config.include_jump_targets {
            if config.select_tail_calls {
                let t = Instant::now();
                tail_count = merge_tails_into(
                    base,
                    &self.tail_runs,
                    config.min_tail_referers,
                    &mut scratch.functions,
                );
                scratch.stats.tailcall_ns += t.elapsed().as_nanos() as u64;
            } else {
                let t = Instant::now();
                merge_union_into(base, &self.jmp_targets, &mut scratch.functions);
                scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;
            }
        }

        // Reachability pruning over the lazily-built, config-invariant
        // bitmap: the roots are the entry ∪ *all* end-branches ∪ call
        // targets, which covers every configuration's `entries` because
        // `E′ ⊆ E`.
        let mut pruned_count = 0;
        if config.reach_prune && config.include_jump_targets && !config.select_tail_calls {
            let t = Instant::now();
            if !self.reach_built {
                let roots = std::iter::once(self.entry)
                    .chain(self.entries_all.iter().copied())
                    .chain(self.call_targets.iter().copied());
                crate::callgraph::reachable_insns_into(
                    sweep,
                    roots,
                    &mut self.reach,
                    &mut scratch.work,
                );
                self.reach_built = true;
            }
            let (reach, call_targets) = (&self.reach, &self.call_targets);
            let before = scratch.functions.len();
            scratch.functions.retain(|&f| {
                entries.binary_search(&f).is_ok()
                    || call_targets.binary_search(&f).is_ok()
                    || f == parsed.entry
                    || sweep.insn_at(f).is_some_and(|i| reach[i / 64] >> (i % 64) & 1 == 1)
            });
            pruned_count = before - scratch.functions.len();
            scratch.stats.boundaries_ns += t.elapsed().as_nanos() as u64;
        }

        let funcs: &[u64] = if config.include_jump_targets { &scratch.functions } else { base };

        let interproc = config.interproc.then(|| {
            let t = Instant::now();
            let cfgs = crate::cfg::build_cfgs(sweep, funcs);
            let graph = crate::callgraph::build_call_graph(sweep, funcs);
            let summary = InterprocSummary {
                cfg_count: cfgs.len(),
                block_count: cfgs.iter().map(|c| c.blocks.len()).sum(),
                cfg_edge_count: cfgs.iter().map(crate::cfg::Cfg::edge_count).sum(),
                direct_call_edges: graph.direct_count(),
                tail_call_edges: graph.tail_count(),
                indirect_sites: graph.indirect_call_sites.len()
                    + graph.indirect_jump_sites.len()
                    + graph.notrack_sites,
                indirect_targets: graph.indirect_targets.len(),
            };
            scratch.stats.interproc_ns += t.elapsed().as_nanos() as u64;
            summary
        });

        scratch.stats.entry_candidates += entries.len() as u64;
        scratch.stats.tail_candidates += tail_count as u64;
        scratch.stats.final_candidates += funcs.len() as u64;

        Analysis {
            functions: FuncSet::from_sorted_slice(funcs),
            text_range: self.text_range,
            endbr_count: self.endbr_count,
            filtered_endbrs: self.endbr_count - entries.len(),
            call_target_count: self.call_targets.len(),
            jmp_target_count: self.jmp_targets.len(),
            tail_target_count: tail_count,
            decode_errors: self.decode_errors,
            pruned_count,
            interproc,
            cet_enabled: self.cet_enabled,
            diagnostics: parsed.diagnostics.clone(),
        }
    }

    /// |E| — end-branches found by the sweep (before deduplication).
    pub fn endbr_count(&self) -> usize {
        self.endbr_count
    }

    /// Members of one FILTERENDBR evidence class.
    pub fn class_count(&self, class: EndbrClass) -> usize {
        self.class_counts[class as usize]
    }

    /// |E′| — entries surviving FILTERENDBR (plain + PLT-return).
    pub fn filtered_entry_count(&self) -> usize {
        self.entries_filtered.len()
    }

    /// |J| — distinct direct jump targets.
    pub fn jmp_target_count(&self) -> usize {
        self.jmp_targets.len()
    }

    /// Targets in the SELECTTAILCALL interval structure (candidates for
    /// `J′` before thresholding).
    pub fn tail_run_count(&self) -> usize {
        self.tail_runs.len()
    }

    /// Whether the binary declares full CET support.
    pub fn cet_enabled(&self) -> bool {
        self.cet_enabled
    }

    /// Total heap capacity retained by the plan's buffers, in bytes —
    /// the counter the no-per-config-allocation assertion watches.
    pub fn capacity_bytes(&self) -> usize {
        let u64s = self.entries_all.capacity()
            + self.entries_filtered.capacity()
            + self.call_targets.capacity()
            + self.cands_unfiltered.capacity()
            + self.cands_filtered.capacity()
            + self.jmp_targets.capacity()
            + self.reach.capacity();
        u64s * std::mem::size_of::<u64>()
            + self.tail_runs.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Union of two strictly-ascending runs into `out` (cleared first).
fn merge_union_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Union of `base` with the tail-run targets clearing `min_referers`,
/// into `out` (cleared first). Returns the number of selected targets.
/// Relies on SELECTTAILCALL's invariant that run targets are disjoint
/// from the candidate base.
fn merge_tails_into(
    base: &[u64],
    runs: &[(u64, u32)],
    min_referers: usize,
    out: &mut Vec<u64>,
) -> usize {
    out.clear();
    out.reserve(base.len() + runs.len());
    let mut selected = 0;
    let mut bi = 0;
    for &(target, referers) in runs {
        if (referers as usize) < min_referers {
            continue;
        }
        selected += 1;
        while bi < base.len() && base[bi] < target {
            out.push(base[bi]);
            bi += 1;
        }
        debug_assert!(bi >= base.len() || base[bi] != target, "tail target already a candidate");
        out.push(target);
    }
    out.extend_from_slice(&base[bi..]);
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare;
    use crate::scratch::StageStats;

    #[test]
    fn merge_union_matches_sort_dedup() {
        let cases: &[(&[u64], &[u64])] = &[
            (&[], &[]),
            (&[1, 3, 5], &[]),
            (&[], &[2, 4]),
            (&[1, 3, 5], &[2, 3, 6]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[10], &[1, 2, 3, 4]),
        ];
        let mut out = Vec::new();
        for (a, b) in cases {
            merge_union_into(a, b, &mut out);
            let mut expect: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(out, expect, "{a:?} ∪ {b:?}");
        }
    }

    #[test]
    fn derive_matches_run_stages_for_every_table2_config() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let mut plan = AnalysisPlan::new();
        let mut scratch = Scratch::new();
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        for (label, config) in Config::table2() {
            let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
            let slow = FunSeeker::with_config(config).identify_prepared(&prepared);
            assert_eq!(fast, slow, "config {label}");
        }
    }

    #[test]
    fn derive_matches_run_stages_for_extension_variants() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let mut plan = AnalysisPlan::new();
        let mut scratch = Scratch::new();
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        for (label, base) in Config::table2() {
            for (reach_prune, interproc) in [(true, false), (false, true), (true, true)] {
                let config = Config { reach_prune, interproc, ..base };
                let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
                let slow = FunSeeker::with_config(config).identify_prepared(&prepared);
                assert_eq!(fast, slow, "config {label} prune={reach_prune} ip={interproc}");
            }
        }
        // Off-plan configurations take the fallback and still match.
        for config in [
            Config { endbr_pattern_scan: true, ..Config::c4() },
            Config { filter_endbr: false, ..Config::c4() },
        ] {
            assert!(!AnalysisPlan::supports(&config));
            let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
            let slow = FunSeeker::with_config(config).identify_prepared(&prepared);
            assert_eq!(fast, slow, "fallback {config:?}");
        }
    }

    #[test]
    fn derive_handles_min_tail_referer_sweep() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let mut plan = AnalysisPlan::new();
        let mut scratch = Scratch::new();
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        for min in [1, 2, 3, 8] {
            let config = Config { min_tail_referers: min, ..Config::c4() };
            let fast = plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
            let slow = FunSeeker::with_config(config).identify_prepared(&prepared);
            assert_eq!(fast, slow, "min_tail_referers={min}");
        }
    }

    #[test]
    fn evidence_classes_partition_e() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let plan = AnalysisPlan::build(&prepared.parsed, &prepared.index);
        let total: usize = ENDBR_CLASSES.iter().map(|&c| plan.class_count(c)).sum();
        // The partition covers E after deduplication.
        let mut distinct = prepared.index.endbrs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(total, distinct.len());
        // E′ is exactly the kept classes.
        assert_eq!(
            plan.filtered_entry_count(),
            plan.class_count(EndbrClass::Plain) + plan.class_count(EndbrClass::PltReturn),
        );
        assert!(plan.class_count(EndbrClass::Plain) > 0, "a real binary has plain entries");
    }

    #[test]
    fn rebuild_reuses_capacity_and_derive_allocates_nothing() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let mut plan = AnalysisPlan::new();
        let mut scratch = Scratch::new();
        assert_eq!(plan.capacity_bytes(), 0);
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        for (_, config) in Config::table2() {
            plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
        }
        let (warm_plan, warm_scratch) = (plan.capacity_bytes(), scratch.capacity_bytes());
        assert!(warm_plan > 0);
        // A second rebuild + four derives over the same binary must not
        // grow either arena: plan-sized buffers are per worker, not per
        // config.
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        for (_, config) in Config::table2() {
            plan.derive(&config, &prepared.parsed, &prepared.index, &mut scratch);
        }
        assert_eq!(plan.capacity_bytes(), warm_plan, "warm plan stops growing");
        assert_eq!(scratch.capacity_bytes(), warm_scratch, "warm scratch stops growing");
    }

    #[test]
    fn plan_and_stages_charge_the_same_counters() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let prepared = prepare(&bytes).unwrap();
        let mut plan = AnalysisPlan::new();
        let mut scratch = Scratch::new();
        plan.rebuild(&prepared.parsed, &prepared.index, &mut scratch);
        let a = plan.derive(&Config::c4(), &prepared.parsed, &prepared.index, &mut scratch);
        let stats = scratch.take_stats();
        assert!(stats.filter_ns > 0 && stats.boundaries_ns > 0 && stats.tailcall_ns > 0);
        assert_eq!(stats.final_candidates, a.functions.len() as u64);
        assert_eq!(stats.tail_candidates, a.tail_target_count as u64);
        assert_eq!(scratch.take_stats(), StageStats::default(), "take resets");

        let reference =
            FunSeeker::new().run_stages_with(&prepared.parsed, &prepared.index, &mut scratch);
        let ref_stats = scratch.take_stats();
        assert_eq!(ref_stats.final_candidates, reference.functions.len() as u64);
        assert!(ref_stats.filter_ns > 0 && ref_stats.total_ns() > 0);
    }
}
