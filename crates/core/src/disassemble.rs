//! DISASSEMBLE — linear sweep producing `(E, C, J)` (Algorithm 1 line 3).
//!
//! The sweep runs **once per binary** and is shared: the resulting
//! [`SweepIndex`] carries the full decoded instruction stream plus the
//! derived sets, so FunSeeker's stages, every baseline identifier, and
//! the evaluation harness all consume the same decode pass instead of
//! re-sweeping the image. Each code region is swept independently (the
//! sweep restarts at every region base) using the sharded parallel sweep,
//! which is bit-identical to the sequential one.

use std::collections::BTreeSet;

use funseeker_disasm::{kernels, par_sweep, InsnKind, InsnStream, Insns, KernelTier, SweepStats};

use crate::parse::Parsed;

/// Width bound for the parallel sweep: the *actual* pool width — which
/// honors `FUNSEEKER_CORES`/`--cores` — rather than a fresh
/// `available_parallelism` guess that could disagree with the pool the
/// shards actually run on. The morsel count itself is derived inside
/// `par_sweep` from region size × this width.
fn sweep_shards() -> usize {
    funseeker_pool::global().workers()
}

/// Per-region slice of the global instruction stream.
#[derive(Debug, Clone)]
pub struct RegionSpan {
    /// Region start address.
    pub start: u64,
    /// Region end address (exclusive).
    pub end: u64,
    /// Range into [`SweepIndex::insns`] holding this region's chain.
    pub insn_range: std::ops::Range<usize>,
    /// Decode errors encountered while sweeping this region.
    pub decode_errors: usize,
}

/// The shared product of the disassembly pass: the decoded instruction
/// stream and the sets FILTERENDBR / SELECTTAILCALL work from.
#[derive(Debug, Clone, Default)]
pub struct SweepIndex {
    /// Every decoded instruction, in address order across all regions,
    /// in packed structure-of-arrays form (6 bytes per instruction).
    pub insns: InsnStream,
    /// One span per code region, in address order.
    pub regions: Vec<RegionSpan>,
    /// `E`: addresses of end-branch instructions in the code.
    pub endbrs: Vec<u64>,
    /// `C`: direct call targets that land inside the analyzed code.
    pub call_targets: BTreeSet<u64>,
    /// Direct unconditional jumps: `(site, target)` pairs with in-code
    /// targets — the raw `J` with provenance, which SELECTTAILCALL needs.
    pub jmp_edges: Vec<(u64, u64)>,
    /// All direct call sites as `(address_after_call, target)` — used to
    /// spot indirect-return call sites whose following end-branch must be
    /// filtered. Targets outside the analyzed code (PLT stubs) are *kept*
    /// here.
    pub call_sites: Vec<(u64, u64)>,
    /// Number of byte positions skipped on decode errors, summed over
    /// regions.
    pub decode_errors: usize,
    /// Decode-work and timing counters, merged over all regions.
    pub stats: SweepStats,
}

impl SweepIndex {
    /// `J` as a plain set of targets.
    pub fn jmp_targets(&self) -> BTreeSet<u64> {
        self.jmp_edges.iter().map(|&(_, t)| t).collect()
    }

    /// The instructions whose addresses fall in `[lo, hi)`.
    ///
    /// Instruction addresses are globally sorted (regions are swept in
    /// address order), so this is a binary-search windowed iterator over
    /// the packed stream.
    pub fn insns_in(&self, lo: u64, hi: u64) -> Insns<'_> {
        self.insns.range(lo, hi)
    }

    /// Index of the instruction starting exactly at `addr`, if any.
    pub fn insn_at(&self, addr: u64) -> Option<usize> {
        self.insns.index_of_addr(addr)
    }

    /// Start addresses of all regions, in order — the interval breaks a
    /// function can never span.
    pub fn region_starts(&self) -> Vec<u64> {
        self.regions.iter().map(|r| r.start).collect()
    }
}

/// Superset-style end-branch recovery: scans the raw bytes of every code
/// region for the 4-byte `ENDBR` pattern at every offset, independent of
/// instruction boundaries. Complements the linear sweep when the code
/// contains data or hand-written assembly that desynchronizes it (§VI
/// future work).
pub fn scan_endbr_pattern(p: &Parsed<'_>) -> Vec<u64> {
    let marker: [u8; 4] = if p.wide {
        [0xf3, 0x0f, 0x1e, 0xfa] // endbr64
    } else {
        [0xf3, 0x0f, 0x1e, 0xfb] // endbr32
    };
    let mut out = Vec::new();
    let tier = KernelTier::active();
    for region in p.code.regions() {
        // Vectorized needle scan: the kernel hunts 0xF3 lead bytes a
        // vector register at a time and verifies the 3-byte tail only at
        // candidates (compiler output contains few 0xF3 bytes, so almost
        // every position is rejected by the wide compare alone). It
        // reports both widths; keep the one matching the image's mode.
        let bytes = region.bytes;
        out.extend(
            kernels::find_endbr(bytes, tier)
                .into_iter()
                .filter(|&off| bytes[off as usize + 3] == marker[3])
                .map(|off| region.addr.wrapping_add(u64::from(off))),
        );
    }
    out
}

/// Sweeps every code region and builds the shared index.
pub fn disassemble(p: &Parsed<'_>) -> SweepIndex {
    let mode = p.mode();
    let shards = sweep_shards();
    let mut out = SweepIndex::default();
    for region in p.code.regions() {
        let swept = par_sweep(region.bytes, region.addr, mode, shards);
        let first = out.insns.len();
        for insn in &swept.stream {
            match insn.kind {
                InsnKind::Endbr64 | InsnKind::Endbr32 => out.endbrs.push(insn.addr),
                InsnKind::CallRel { target } => {
                    out.call_sites.push((insn.end(), target));
                    if p.in_code(target) {
                        out.call_targets.insert(target);
                    }
                }
                InsnKind::JmpRel { target } if p.in_code(target) => {
                    out.jmp_edges.push((insn.addr, target));
                }
                _ => {}
            }
        }
        out.insns.append(&swept.stream);
        out.regions.push(RegionSpan {
            start: region.addr,
            end: region.end(),
            insn_range: first..out.insns.len(),
            decode_errors: swept.error_count,
        });
        out.decode_errors += swept.error_count;
        out.stats.merge(&swept.stats);
    }
    // Seal the finished stream: FILTERENDBR / SELECTTAILCALL probe it
    // with `insn_at` / `insns_in` millions of times, and sealing turns
    // each probe's binary search into an O(1) bitmap rank query.
    out.insns.seal();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(text: &[u8], addr: u64, wide: bool) -> Parsed<'_> {
        Parsed::from_region(addr, text, wide)
    }

    #[test]
    fn collects_endbr_calls_and_jumps() {
        // 0x1000: endbr64
        // 0x1004: call 0x100e (in text)
        // 0x1009: jmp 0x1000 (in text)
        // 0x100e: call 0x2000 (out of text — PLT-like)
        // 0x1013: ret
        let mut code = vec![0xf3, 0x0f, 0x1e, 0xfa];
        code.push(0xe8);
        code.extend_from_slice(&5i32.to_le_bytes()); // call +5 → 0x100e
        code.push(0xe9);
        code.extend_from_slice(&(-14i32).to_le_bytes()); // jmp → 0x1000
        code.push(0xe8);
        code.extend_from_slice(&0xfedi32.to_le_bytes()); // call → 0x2000
        code.push(0xc3);
        let p = parsed(&code, 0x1000, true);
        let s = disassemble(&p);
        assert_eq!(s.endbrs, vec![0x1000]);
        assert!(s.call_targets.contains(&0x100e));
        assert_eq!(s.call_targets.len(), 1, "out-of-text call target excluded from C");
        assert_eq!(s.jmp_edges, vec![(0x1009, 0x1000)]);
        // But the PLT-bound call site is retained for FILTERENDBR.
        assert!(s.call_sites.iter().any(|&(_, t)| t == 0x2000));
        assert_eq!(s.decode_errors, 0);
        assert_eq!(s.insns.len(), 5);
        assert_eq!(s.regions.len(), 1);
        assert_eq!(s.regions[0].insn_range, 0..5);
    }

    #[test]
    fn conditional_jumps_are_not_in_j() {
        // jne +2; nop; nop — Jcc targets are never tail-call candidates.
        let code = [0x75, 0x02, 0x90, 0x90];
        let p = parsed(&code, 0, true);
        let s = disassemble(&p);
        assert!(s.jmp_edges.is_empty());
        assert!(s.call_targets.is_empty());
    }

    #[test]
    fn short_jmp_counts_as_j() {
        let code = [0xeb, 0x02, 0x90, 0x90, 0xc3];
        let p = parsed(&code, 0x100, true);
        let s = disassemble(&p);
        assert_eq!(s.jmp_edges, vec![(0x100, 0x104)]);
    }

    #[test]
    fn endbr32_in_32bit_mode() {
        let code = [0xf3, 0x0f, 0x1e, 0xfb, 0xc3];
        let p = parsed(&code, 0x8048000, false);
        let s = disassemble(&p);
        assert_eq!(s.endbrs, vec![0x8048000]);
    }

    #[test]
    fn multi_region_sweep_restarts_per_region() {
        use crate::parse::{CodeRegion, CodeView};
        // Region A ends mid-"instruction" if concatenated with B; separate
        // sweeps must not leak across the gap.
        let a = [0xf3, 0x0f, 0x1e, 0xfa, 0xe8]; // endbr64; dangling call opcode
        let b = [0xf3, 0x0f, 0x1e, 0xfa, 0xc3]; // endbr64; ret
        let mut p = Parsed::from_region(0, &[], true);
        p.code = CodeView::new(vec![
            CodeRegion { name: ".a".into(), addr: 0x1000, bytes: &a },
            CodeRegion { name: ".b".into(), addr: 0x2000, bytes: &b },
        ]);
        let s = disassemble(&p);
        assert_eq!(s.endbrs, vec![0x1000, 0x2000]);
        assert_eq!(s.regions.len(), 2);
        // The dangling `e8` at the end of region A can't pull bytes from
        // region B: it is a decode error, not a call into B.
        assert!(s.call_sites.is_empty());
        assert_eq!(s.regions[0].decode_errors, 1);
        assert_eq!(s.regions[1].decode_errors, 0);
        assert_eq!(s.insns_in(0x2000, 0x2005).len(), 2);
        assert_eq!(s.insn_at(0x2004), Some(s.insns.len() - 1));
        assert_eq!(s.region_starts(), vec![0x1000, 0x2000]);
    }

    #[test]
    fn endbr_pattern_scan_covers_all_regions() {
        use crate::parse::{CodeRegion, CodeView};
        let a = [0x90, 0xf3, 0x0f, 0x1e, 0xfa]; // endbr64 at offset 1
        let b = [0xf3, 0x0f, 0x1e, 0xfa, 0xc3];
        let mut p = Parsed::from_region(0, &[], true);
        p.code = CodeView::new(vec![
            CodeRegion { name: ".a".into(), addr: 0x1000, bytes: &a },
            CodeRegion { name: ".b".into(), addr: 0x2000, bytes: &b },
        ]);
        assert_eq!(scan_endbr_pattern(&p), vec![0x1001, 0x2000]);
    }
}
