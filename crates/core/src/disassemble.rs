//! DISASSEMBLE — linear sweep producing `(E, C, J)` (Algorithm 1 line 3).

use std::collections::BTreeSet;

use funseeker_disasm::{InsnKind, LinearSweep, Mode};

use crate::parse::Parsed;

/// The raw material FILTERENDBR and SELECTTAILCALL work from.
#[derive(Debug, Clone, Default)]
pub struct SweepSets {
    /// `E`: addresses of end-branch instructions in `.text`.
    pub endbrs: Vec<u64>,
    /// `C`: direct call targets that land inside `.text`.
    pub call_targets: BTreeSet<u64>,
    /// Direct unconditional jumps: `(site, target)` pairs with in-`.text`
    /// targets — the raw `J` with provenance, which SELECTTAILCALL needs.
    pub jmp_edges: Vec<(u64, u64)>,
    /// All direct call sites as `(address_after_call, target)` — used to
    /// spot indirect-return call sites whose following end-branch must be
    /// filtered. Targets outside `.text` (PLT stubs) are *kept* here.
    pub call_sites: Vec<(u64, u64)>,
    /// Number of byte positions skipped on decode errors.
    pub decode_errors: usize,
}

impl SweepSets {
    /// `J` as a plain set of targets.
    pub fn jmp_targets(&self) -> BTreeSet<u64> {
        self.jmp_edges.iter().map(|&(_, t)| t).collect()
    }
}

/// Superset-style end-branch recovery: scans the raw bytes for the
/// 4-byte `ENDBR` pattern at every offset, independent of instruction
/// boundaries. Complements the linear sweep when `.text` contains data
/// or hand-written assembly that desynchronizes it (§VI future work).
pub fn scan_endbr_pattern(p: &Parsed<'_>) -> Vec<u64> {
    let marker: [u8; 4] = if p.wide {
        [0xf3, 0x0f, 0x1e, 0xfa] // endbr64
    } else {
        [0xf3, 0x0f, 0x1e, 0xfb] // endbr32
    };
    p.text
        .windows(4)
        .enumerate()
        .filter(|(_, w)| *w == marker)
        .map(|(i, _)| p.text_addr + i as u64)
        .collect()
}

/// Sweeps the `.text` section and collects the three sets.
pub fn disassemble(p: &Parsed<'_>) -> SweepSets {
    let mode = if p.wide { Mode::Bits64 } else { Mode::Bits32 };
    let mut out = SweepSets::default();
    let mut sweep = LinearSweep::new(p.text, p.text_addr, mode);
    for insn in sweep.by_ref() {
        match insn.kind {
            InsnKind::Endbr64 | InsnKind::Endbr32 => out.endbrs.push(insn.addr),
            InsnKind::CallRel { target } => {
                out.call_sites.push((insn.end(), target));
                if p.in_text(target) {
                    out.call_targets.insert(target);
                }
            }
            InsnKind::JmpRel { target }
                if p.in_text(target) => {
                    out.jmp_edges.push((insn.addr, target));
                }
            _ => {}
        }
    }
    out.decode_errors = sweep.error_count();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use funseeker_elf::PltMap;

    fn parsed(text: &[u8], addr: u64, wide: bool) -> Parsed<'_> {
        Parsed {
            text_addr: addr,
            text,
            wide,
            landing_pads: BTreeSet::new(),
            plt: PltMap::default(),
            cet: Default::default(),
        }
    }

    #[test]
    fn collects_endbr_calls_and_jumps() {
        // 0x1000: endbr64
        // 0x1004: call 0x100e (in text)
        // 0x1009: jmp 0x1000 (in text)
        // 0x100e: call 0x2000 (out of text — PLT-like)
        // 0x1013: ret
        let mut code = vec![0xf3, 0x0f, 0x1e, 0xfa];
        code.push(0xe8);
        code.extend_from_slice(&5i32.to_le_bytes()); // call +5 → 0x100e
        code.push(0xe9);
        code.extend_from_slice(&(-14i32).to_le_bytes()); // jmp → 0x1000
        code.push(0xe8);
        code.extend_from_slice(&0xfedi32.to_le_bytes()); // call → 0x2000
        code.push(0xc3);
        let p = parsed(&code, 0x1000, true);
        let s = disassemble(&p);
        assert_eq!(s.endbrs, vec![0x1000]);
        assert!(s.call_targets.contains(&0x100e));
        assert_eq!(s.call_targets.len(), 1, "out-of-text call target excluded from C");
        assert_eq!(s.jmp_edges, vec![(0x1009, 0x1000)]);
        // But the PLT-bound call site is retained for FILTERENDBR.
        assert!(s.call_sites.iter().any(|&(_, t)| t == 0x2000));
        assert_eq!(s.decode_errors, 0);
    }

    #[test]
    fn conditional_jumps_are_not_in_j() {
        // jne +2; nop; nop — Jcc targets are never tail-call candidates.
        let code = [0x75, 0x02, 0x90, 0x90];
        let p = parsed(&code, 0, true);
        let s = disassemble(&p);
        assert!(s.jmp_edges.is_empty());
        assert!(s.call_targets.is_empty());
    }

    #[test]
    fn short_jmp_counts_as_j() {
        let code = [0xeb, 0x02, 0x90, 0x90, 0xc3];
        let p = parsed(&code, 0x100, true);
        let s = disassemble(&p);
        assert_eq!(s.jmp_edges, vec![(0x100, 0x104)]);
    }

    #[test]
    fn endbr32_in_32bit_mode() {
        let code = [0xf3, 0x0f, 0x1e, 0xfb, 0xc3];
        let p = parsed(&code, 0x8048000, false);
        let s = disassemble(&p);
        assert_eq!(s.endbrs, vec![0x8048000]);
    }
}
