//! PARSE — the binary front-end step of Algorithm 1 (line 2).
//!
//! Extracts the `.text` section, the C++ exception information (landing
//! pads, via `.eh_frame` → `.gcc_except_table`), and the PLT name map
//! used to recognize calls to indirect-return functions.

use std::collections::BTreeSet;

use funseeker_eh::{parse_eh_frame, parse_lsda};
use funseeker_elf::{Class, Elf, PltMap};

use crate::error::Error;

/// Everything later stages need from the binary.
#[derive(Debug, Clone)]
pub struct Parsed<'a> {
    /// `.text` load address.
    pub text_addr: u64,
    /// `.text` contents.
    pub text: &'a [u8],
    /// Whether this is a 64-bit image.
    pub wide: bool,
    /// Exception landing-pad addresses (`exn` in Algorithm 1; empty for
    /// C binaries).
    pub landing_pads: BTreeSet<u64>,
    /// PLT stub address → imported name.
    pub plt: PltMap,
    /// CET capabilities declared in `.note.gnu.property`.
    pub cet: funseeker_elf::CetProperties,
}

impl<'a> Parsed<'a> {
    /// End of the `.text` range (exclusive).
    pub fn text_end(&self) -> u64 {
        self.text_addr + self.text.len() as u64
    }

    /// Whether `addr` lies within `.text`.
    pub fn in_text(&self, addr: u64) -> bool {
        addr >= self.text_addr && addr < self.text_end()
    }
}

/// Parses a raw ELF image.
///
/// Exception information is best-effort: corrupt or exotic EH metadata
/// degrades to "no landing pads" rather than failing the analysis, since
/// FILTERENDBR treats `exn` as an optional reduction.
pub fn parse(bytes: &[u8]) -> Result<Parsed<'_>, Error> {
    let elf = Elf::parse(bytes)?;
    let (text_addr, text) = elf.section_bytes(".text").ok_or(Error::NoText)?;
    let wide = elf.class() == Class::Elf64;

    let mut landing_pads = BTreeSet::new();
    if let (Some((eh_addr, eh_data)), Some((gx_addr, gx_data))) =
        (elf.section_bytes(".eh_frame"), elf.section_bytes(".gcc_except_table"))
    {
        if let Ok(frame) = parse_eh_frame(eh_data, eh_addr, wide) {
            for fde in &frame.fdes {
                let Some(lsda) = fde.lsda else { continue };
                if let Ok(parsed) = parse_lsda(gx_data, gx_addr, lsda, fde.pc_begin, wide) {
                    landing_pads.extend(parsed.landing_pads);
                }
            }
        }
    }

    let plt = PltMap::from_elf(&elf).unwrap_or_default();
    let cet = funseeker_elf::cet_properties(&elf).unwrap_or_default();

    Ok(Parsed { text_addr, text, wide, landing_pads, plt, cet })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_elf() {
        assert!(matches!(parse(b"not an elf"), Err(Error::Elf(_))));
    }

    #[test]
    fn rejects_textless_elf() {
        use funseeker_elf::{ElfBuilder, Machine, ObjectType};
        let b = ElfBuilder::new(Class::Elf64, Machine::X86_64, ObjectType::Executable);
        let bytes = b.build().unwrap();
        assert!(matches!(parse(&bytes), Err(Error::NoText)));
    }

    #[test]
    fn parses_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let p = parse(&bytes).unwrap();
        assert!(p.wide);
        assert!(!p.text.is_empty());
        assert!(p.in_text(p.text_addr));
        assert!(!p.in_text(p.text_end()));
    }
}
