//! PARSE — the binary front-end step of Algorithm 1 (line 2).
//!
//! Extracts every mapped executable region of the image into a
//! [`CodeView`], plus the C++ exception information (landing pads, via
//! `.eh_frame` → `.gcc_except_table`), the FDE address ranges used by the
//! EH-based baselines, and the PLT name map used to recognize calls to
//! indirect-return functions.

use std::collections::BTreeSet;

use funseeker_disasm::Mode;
use funseeker_eh::{parse_eh_frame, parse_lsda};
use funseeker_elf::{Class, Elf, PltMap};

use crate::diag::{Component, Diagnostics};
use crate::error::Error;

/// One executable region (an ELF section's worth of code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeRegion<'a> {
    /// Section name (`.text`, `.init`, …).
    pub name: String,
    /// Load address of the first byte.
    pub addr: u64,
    /// Region contents.
    pub bytes: &'a [u8],
}

impl<'a> CodeRegion<'a> {
    /// Address one past the last byte (exclusive end).
    ///
    /// Saturating: a hostile section address near `u64::MAX` clamps
    /// instead of wrapping (and panicking in debug builds).
    pub fn end(&self) -> u64 {
        self.addr.saturating_add(self.bytes.len() as u64)
    }

    /// Whether `addr` lies inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// The executable portion of a binary: an ordered, non-overlapping list
/// of code regions.
///
/// This replaces the single-`.text` view the pipeline used to carry.
/// PLT-like regions (`.plt`, `.plt.got`, `.plt.sec`, `.iplt`) are
/// excluded at construction: stubs there are import trampolines, not
/// functions the paper's ground truth counts, and keeping them out
/// preserves the original "targets inside `.plt` are not candidates"
/// semantics for every stage downstream.
#[derive(Debug, Clone)]
pub struct CodeView<'a> {
    regions: Vec<CodeRegion<'a>>,
}

impl<'a> CodeView<'a> {
    /// Builds a view from regions, sorting them by address.
    pub fn new(mut regions: Vec<CodeRegion<'a>>) -> Self {
        regions.sort_by_key(|r| r.addr);
        CodeView { regions }
    }

    /// A view of one anonymous `.text` region — the single-section shape
    /// used by synthetic fixtures and unit tests.
    pub fn single(addr: u64, bytes: &'a [u8]) -> Self {
        CodeView::new(vec![CodeRegion { name: ".text".into(), addr, bytes }])
    }

    /// The regions, in address order.
    pub fn regions(&self) -> &[CodeRegion<'a>] {
        &self.regions
    }

    /// Whether `addr` falls inside any region.
    pub fn in_code(&self, addr: u64) -> bool {
        self.region_of(addr).is_some()
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<&CodeRegion<'a>> {
        // Regions are sorted: the candidate is the last one starting at
        // or before `addr`.
        let idx = self.regions.partition_point(|r| r.addr <= addr);
        let r = &self.regions[..idx];
        r.last().filter(|r| r.contains(addr))
    }

    /// Whether `addr` is the first byte of a region.
    pub fn is_region_start(&self, addr: u64) -> bool {
        self.regions.binary_search_by_key(&addr, |r| r.addr).is_ok()
    }

    /// Raw bytes at a virtual address, if `[addr, addr + n)` lies within
    /// one region.
    pub fn bytes_at(&self, addr: u64, n: usize) -> Option<&'a [u8]> {
        let region = self.region_of(addr)?;
        let off = (addr - region.addr) as usize;
        region.bytes.get(off..off.checked_add(n)?)
    }

    /// Lowest and one-past-highest code address across all regions.
    pub fn bounds(&self) -> (u64, u64) {
        let lo = self.regions.first().map_or(0, |r| r.addr);
        let hi = self.regions.last().map_or(0, |r| r.end());
        (lo, hi)
    }

    /// The span of the `.text` region when one exists, else [`bounds`].
    ///
    /// Compatibility accessor for callers that still reason about "the
    /// text range" of a binary.
    ///
    /// [`bounds`]: CodeView::bounds
    pub fn text_range(&self) -> (u64, u64) {
        self.regions
            .iter()
            .find(|r| r.name == ".text")
            .map(|r| (r.addr, r.end()))
            .unwrap_or_else(|| self.bounds())
    }

    /// Total code size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.bytes.len()).sum()
    }
}

/// Everything later stages need from the binary.
#[derive(Debug, Clone)]
pub struct Parsed<'a> {
    /// The executable regions under analysis.
    pub code: CodeView<'a>,
    /// Whether this is a 64-bit image.
    pub wide: bool,
    /// Program entry point (`e_entry`).
    pub entry: u64,
    /// Exception landing-pad addresses (`exn` in Algorithm 1; empty for
    /// C binaries).
    pub landing_pads: BTreeSet<u64>,
    /// FDE ranges `(pc_begin, pc_end)` from `.eh_frame`, sorted by start
    /// (empty when absent or unparseable). Consumed by the EH-based
    /// baselines.
    pub fde_ranges: Vec<(u64, u64)>,
    /// PLT stub address → imported name.
    pub plt: PltMap,
    /// CET capabilities declared in `.note.gnu.property`.
    pub cet: funseeker_elf::CetProperties,
    /// Warnings recorded while degrading over malformed optional
    /// metadata (see [`Diagnostics`]); empty for a clean image.
    pub diagnostics: Diagnostics,
}

impl<'a> Parsed<'a> {
    /// A minimal single-region `Parsed` for synthetic inputs and tests:
    /// no exception info, no PLT, no CET note.
    pub fn from_region(addr: u64, bytes: &'a [u8], wide: bool) -> Self {
        Parsed {
            code: CodeView::single(addr, bytes),
            wide,
            entry: 0,
            landing_pads: BTreeSet::new(),
            fde_ranges: Vec::new(),
            plt: PltMap::default(),
            cet: funseeker_elf::CetProperties::default(),
            diagnostics: Diagnostics::new(),
        }
    }

    /// Decode mode matching the image class.
    pub fn mode(&self) -> Mode {
        if self.wide {
            Mode::Bits64
        } else {
            Mode::Bits32
        }
    }

    /// Whether `addr` lies within any analyzed code region.
    pub fn in_code(&self, addr: u64) -> bool {
        self.code.in_code(addr)
    }
}

/// Section-name prefixes excluded from the analysis view (import stubs).
const STUB_SECTION_PREFIXES: [&str; 2] = [".plt", ".iplt"];

/// Parses a raw ELF image.
///
/// Optional metadata is best-effort: corrupt or exotic exception
/// tables, property notes, and PLT relocation chains degrade to their
/// empty defaults with a warning recorded in [`Parsed::diagnostics`],
/// rather than failing the analysis — FILTERENDBR treats `exn` as an
/// optional reduction, and the sweep itself only needs the code regions.
/// Only an unparseable image (`Error::Elf`) or one with no executable
/// regions at all (`Error::NoText`) is a hard error.
pub fn parse(bytes: &[u8]) -> Result<Parsed<'_>, Error> {
    let elf = Elf::parse(bytes)?;
    let mut diagnostics = Diagnostics::new();
    for finding in elf.check_layout() {
        diagnostics.warn(Component::Layout, finding.to_string());
    }
    let mut regions: Vec<CodeRegion<'_>> = Vec::new();
    for (sec, addr, bytes) in elf.executable_sections() {
        if STUB_SECTION_PREFIXES.iter().any(|p| sec.name.starts_with(p)) {
            continue;
        }
        // A region whose address range wraps the 64-bit address space is
        // structurally implausible; analyzing it would produce entry
        // addresses outside any coherent text range.
        if addr.checked_add(bytes.len() as u64).is_none() {
            diagnostics.warn(
                Component::Layout,
                format!("section {} at {addr:#x} wraps the address space; skipped", sec.name),
            );
            continue;
        }
        regions.push(CodeRegion { name: sec.name.clone(), addr, bytes });
    }
    if regions.is_empty() {
        return Err(Error::NoText);
    }
    let code = CodeView::new(regions);
    let wide = elf.class() == Class::Elf64;

    let mut landing_pads = BTreeSet::new();
    let mut fde_ranges = Vec::new();
    if let Some((eh_addr, eh_data)) = elf.section_bytes(".eh_frame") {
        match parse_eh_frame(eh_data, eh_addr, wide) {
            Ok(frame) => {
                let gx = elf.section_bytes(".gcc_except_table");
                for fde in &frame.fdes {
                    fde_ranges.push((fde.pc_begin, fde.pc_begin.saturating_add(fde.pc_range)));
                    let (Some((gx_addr, gx_data)), Some(lsda)) = (gx, fde.lsda) else { continue };
                    match parse_lsda(gx_data, gx_addr, lsda, fde.pc_begin, wide) {
                        Ok(parsed) => landing_pads.extend(parsed.landing_pads),
                        Err(e) => diagnostics.warn(Component::GccExceptTable, e.to_string()),
                    }
                }
                fde_ranges.sort_unstable();
            }
            Err(e) => diagnostics.warn(Component::EhFrame, e.to_string()),
        }
    }

    let plt = PltMap::from_elf(&elf).unwrap_or_else(|e| {
        diagnostics.warn(Component::Plt, e.to_string());
        PltMap::default()
    });
    let cet = funseeker_elf::cet_properties(&elf).unwrap_or_else(|e| {
        diagnostics.warn(Component::NoteProperty, e.to_string());
        funseeker_elf::CetProperties::default()
    });

    Ok(Parsed {
        code,
        wide,
        entry: elf.header.entry,
        landing_pads,
        fde_ranges,
        plt,
        cet,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_elf() {
        assert!(matches!(parse(b"not an elf"), Err(Error::Elf(_))));
    }

    #[test]
    fn rejects_textless_elf() {
        use funseeker_elf::{ElfBuilder, Machine, ObjectType};
        let b = ElfBuilder::new(Class::Elf64, Machine::X86_64, ObjectType::Executable);
        let bytes = b.build().unwrap();
        assert!(matches!(parse(&bytes), Err(Error::NoText)));
    }

    #[test]
    fn parses_own_executable() {
        let bytes = std::fs::read("/proc/self/exe").unwrap();
        let p = parse(&bytes).unwrap();
        assert!(p.wide);
        let (text_lo, text_hi) = p.code.text_range();
        assert!(text_lo < text_hi);
        assert!(p.in_code(text_lo));
        let (lo, hi) = p.code.bounds();
        assert!(lo <= text_lo && text_hi <= hi);
        assert!(p.in_code(lo));
        assert!(!p.in_code(hi), "one past the last region is outside the view");
        // No analyzed region is an import-stub section.
        assert!(p.code.regions().iter().all(|r| !r.name.starts_with(".plt")));
    }

    #[test]
    fn multi_region_view_orders_and_excludes_plt() {
        use funseeker_elf::{ElfBuilder, Machine, ObjectType};
        let mut b = ElfBuilder::new(Class::Elf64, Machine::X86_64, ObjectType::Executable);
        b.entry(0x401000);
        b.text(".text", 0x401000, vec![0xf3, 0x0f, 0x1e, 0xfa, 0xc3]);
        b.text(".init", 0x400100, vec![0xc3]);
        b.text(".plt", 0x400200, vec![0xff, 0x25, 0, 0, 0, 0]);
        b.text(".fini", 0x402000, vec![0x55, 0xc3]);
        let bytes = b.build().unwrap();

        let p = parse(&bytes).unwrap();
        let names: Vec<&str> = p.code.regions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, [".init", ".text", ".fini"]);
        assert!(p.in_code(0x400100));
        assert!(!p.in_code(0x400200), "PLT must stay outside the analysis view");
        assert!(p.code.is_region_start(0x402000));
        assert!(!p.code.is_region_start(0x402001));
        assert_eq!(p.code.text_range(), (0x401000, 0x401005));
        assert_eq!(p.code.bounds(), (0x400100, 0x402002));
        assert_eq!(p.code.bytes_at(0x402000, 2), Some(&[0x55, 0xc3][..]));
        assert_eq!(p.code.bytes_at(0x402001, 2), None);
        assert_eq!(p.entry, 0x401000);
    }

    #[test]
    fn region_lookup_on_boundaries() {
        let a = [0x90u8; 4];
        let b = [0xc3u8; 4];
        let view = CodeView::new(vec![
            CodeRegion { name: ".b".into(), addr: 0x2000, bytes: &b },
            CodeRegion { name: ".a".into(), addr: 0x1000, bytes: &a },
        ]);
        assert_eq!(view.region_of(0x0fff).map(|r| r.name.as_str()), None);
        assert_eq!(view.region_of(0x1000).map(|r| r.name.as_str()), Some(".a"));
        assert_eq!(view.region_of(0x1003).map(|r| r.name.as_str()), Some(".a"));
        assert_eq!(view.region_of(0x1004), None);
        assert_eq!(view.region_of(0x2003).map(|r| r.name.as_str()), Some(".b"));
        assert_eq!(view.len_bytes(), 8);
    }
}
