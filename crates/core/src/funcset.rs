//! Packed sorted set of identified function entry addresses.
//!
//! [`crate::Analysis::functions`] used to be a `BTreeSet<u64>`, which
//! costs a node allocation and a pointer chase per member on every
//! build, clone, serialize, and merge. The final stage of Algorithm 1
//! already produces a sorted, deduplicated run in the scratch arena, so
//! the set is stored as exactly that: one contiguous `Vec<u64>`.
//! Construction is a single `memcpy`, membership is a binary search,
//! and the batch cache encodes/decodes the whole set as one bulk copy
//! of little-endian words.
//!
//! The invariant — strictly ascending, no duplicates — is established
//! by every constructor and relied on by every method.

use std::ops::Deref;

/// A sorted, deduplicated set of function entry addresses backed by a
/// single contiguous allocation.
///
/// Dereferences to `&[u64]`, so slice iteration, `len`, and indexing
/// work directly; set operations (`contains`, `is_subset`,
/// `difference`, `intersection`) use the sorted invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncSet(Vec<u64>);

impl FuncSet {
    /// The empty set.
    pub fn new() -> FuncSet {
        FuncSet(Vec::new())
    }

    /// Wraps a vector that is already strictly ascending (sorted with
    /// no duplicates) — the form every Algorithm-1 stage emits.
    pub fn from_sorted(addrs: Vec<u64>) -> FuncSet {
        debug_assert!(
            addrs.windows(2).all(|w| w[0] < w[1]),
            "FuncSet input must be strictly ascending"
        );
        FuncSet(addrs)
    }

    /// Copies a strictly-ascending slice — one exact-size allocation
    /// plus a `memcpy`, the constructor the analyzer uses to publish
    /// the scratch arena's final run.
    pub fn from_sorted_slice(addrs: &[u64]) -> FuncSet {
        debug_assert!(
            addrs.windows(2).all(|w| w[0] < w[1]),
            "FuncSet input must be strictly ascending"
        );
        FuncSet(addrs.to_vec())
    }

    /// The members as a sorted slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Consumes the set, returning the sorted member vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.0
    }

    /// Membership test — a binary search over the packed run.
    pub fn contains(&self, addr: &u64) -> bool {
        self.0.binary_search(addr).is_ok()
    }

    /// Whether every member of `self` is also in `other` (one merge
    /// walk, O(|self| + |other|)).
    pub fn is_subset(&self, other: &FuncSet) -> bool {
        let mut it = other.0.iter();
        'outer: for a in &self.0 {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Members of `self` that are not in `other`, ascending.
    pub fn difference<'a>(&'a self, other: &'a FuncSet) -> impl Iterator<Item = &'a u64> {
        self.0.iter().filter(move |a| !other.contains(a))
    }

    /// Members common to `self` and `other`, ascending.
    pub fn intersection<'a>(&'a self, other: &'a FuncSet) -> impl Iterator<Item = &'a u64> {
        self.0.iter().filter(move |a| other.contains(a))
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.0.iter()
    }
}

impl Deref for FuncSet {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.0
    }
}

impl FromIterator<u64> for FuncSet {
    /// Collects arbitrary (unsorted, possibly duplicated) addresses
    /// into a set.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> FuncSet {
        let mut v: Vec<u64> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        FuncSet(v)
    }
}

impl IntoIterator for FuncSet {
    type Item = u64;
    type IntoIter = std::vec::IntoIter<u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a FuncSet {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_set_semantics() {
        let from_iter: FuncSet = [3u64, 1, 2, 1, 3].into_iter().collect();
        assert_eq!(from_iter, FuncSet::from_sorted(vec![1, 2, 3]));
        assert_eq!(from_iter, FuncSet::from_sorted_slice(&[1, 2, 3]));
        assert_eq!(FuncSet::new(), FuncSet::default());
        assert!(FuncSet::new().is_empty());
    }

    #[test]
    fn membership_and_slice_access() {
        let s = FuncSet::from_sorted(vec![0x100, 0x200, 0x300]);
        assert!(s.contains(&0x200));
        assert!(!s.contains(&0x201));
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[0x100, 0x200, 0x300]);
        assert_eq!(s.iter().copied().sum::<u64>(), 0x600);
        assert_eq!((&s).into_iter().count(), 3);
        assert_eq!(s.clone().into_vec(), vec![0x100, 0x200, 0x300]);
        assert_eq!(s.into_iter().collect::<Vec<u64>>(), vec![0x100, 0x200, 0x300]);
    }

    #[test]
    fn set_algebra() {
        let a = FuncSet::from_sorted(vec![1, 2, 3, 5]);
        let b = FuncSet::from_sorted(vec![2, 3, 4, 5, 6]);
        let sub = FuncSet::from_sorted(vec![2, 5]);
        assert!(sub.is_subset(&a));
        assert!(sub.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(FuncSet::new().is_subset(&a));
        assert!(a.is_subset(&a));
        assert_eq!(a.difference(&b).copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.difference(&a).copied().collect::<Vec<_>>(), vec![4, 6]);
        assert_eq!(a.intersection(&b).copied().collect::<Vec<_>>(), vec![2, 3, 5]);
    }
}
