//! Protocol-level regression suite: hostile and malformed wire input
//! against a live daemon. Every defect must surface as a typed error
//! frame or a clean close — never a panic, never a hang — and the
//! daemon must keep serving well-formed clients afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use funseeker_client::proto::{self, ErrorCode, ProtoError, Response};
use funseeker_client::{Client, ClientError};
use funseeker_server::{Server, ServerConfig};

/// A raw TCP connection to the daemon with a bounded read timeout, so
/// a server that wrongly hangs fails the test instead of wedging it.
fn raw(server: &Server) -> TcpStream {
    let addr = server.addr().to_string();
    let hostport = addr.strip_prefix("tcp:").expect("test server is TCP");
    let stream = TcpStream::connect(hostport).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn read_response(stream: &mut TcpStream) -> Result<Option<Response>, ProtoError> {
    match proto::read_frame(stream, proto::DEFAULT_MAX_FRAME)? {
        Some(payload) => proto::decode_response(&payload).map(Some),
        None => Ok(None),
    }
}

fn expect_error(stream: &mut TcpStream, want: ErrorCode) {
    match read_response(stream).unwrap().expect("an error frame, not a close") {
        Response::Error { code, .. } => assert_eq!(code, want),
        other => panic!("expected {want:?}, got {other:?}"),
    }
}

fn expect_closed(stream: &mut TcpStream) {
    assert!(read_response(stream).unwrap().is_none(), "server should have closed the connection");
}

#[test]
fn hostile_input_gets_typed_errors_and_the_daemon_survives() {
    let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
    let addr = server.addr().to_string();

    // Oversized length prefix: typed TooLarge, then close (the server
    // cannot resynchronize past an unread multi-gigabyte body).
    let mut s = raw(&server);
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    expect_error(&mut s, ErrorCode::TooLarge);
    expect_closed(&mut s);

    // Zero-length frame: typed BadFrame, then close.
    let mut s = raw(&server);
    s.write_all(&0u32.to_le_bytes()).unwrap();
    expect_error(&mut s, ErrorCode::BadFrame);
    expect_closed(&mut s);

    // Truncated frame followed by a disconnect: the server must notice
    // end-of-stream mid-frame and tear down without hanging.
    let mut s = raw(&server);
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[proto::VERSION, proto::T_ANALYZE, 4, 0, 1, 2, 3]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    expect_closed(&mut s);

    // Unknown version byte: typed BadVersion, then close.
    let mut s = raw(&server);
    proto::write_frame_parts(&mut s, &[&[9u8, proto::T_PING]]).unwrap();
    expect_error(&mut s, ErrorCode::BadVersion);
    expect_closed(&mut s);

    // Unknown request type: typed BadRequest — and the connection stays
    // usable for a well-formed request afterwards.
    let mut s = raw(&server);
    proto::write_frame_parts(&mut s, &[&[proto::VERSION, 0x55]]).unwrap();
    expect_error(&mut s, ErrorCode::BadRequest);
    proto::write_simple_request(&mut s, proto::T_PING).unwrap();
    assert_eq!(read_response(&mut s).unwrap(), Some(Response::Pong));

    // Out-of-range config id and reserved flag bits: BadRequest, still
    // usable.
    let mut s = raw(&server);
    proto::write_analyze(&mut s, 9, 0, b"x").unwrap();
    expect_error(&mut s, ErrorCode::BadRequest);
    proto::write_analyze(&mut s, 4, 0x80, b"x").unwrap();
    expect_error(&mut s, ErrorCode::BadRequest);
    proto::write_simple_request(&mut s, proto::T_PING).unwrap();
    assert_eq!(read_response(&mut s).unwrap(), Some(Response::Pong));

    // A well-formed frame whose image is not an ELF: typed ParseFailed
    // through the SDK, connection stays usable.
    let mut client = Client::connect(&addr).unwrap();
    match client.analyze(b"definitely not an ELF").unwrap_err() {
        ClientError::Remote { code, .. } => assert_eq!(code, ErrorCode::ParseFailed),
        other => panic!("expected a remote ParseFailed, got {other}"),
    }
    client.ping().unwrap();

    // After all that abuse the daemon still serves real work and has
    // counted the defects.
    let image = std::fs::read("/proc/self/exe").unwrap();
    let reply = client.analyze(&image).unwrap();
    assert!(!reply.analysis.functions.is_empty());
    let stats = client.stats().unwrap();
    assert!(stats.get("proto_errors_total").unwrap() >= 6, "defects were counted");
    assert_eq!(stats.get("results_total"), Some(1));
    server.join();
}

#[test]
fn a_mid_stream_disconnect_during_a_large_body_never_wedges_the_daemon() {
    let server = Server::start(ServerConfig::tcp("127.0.0.1:0")).unwrap();
    let addr = server.addr().to_string();

    // Claim a large ANALYZE body (beyond the small-frame admission
    // bypass), deliver a fraction of it, and vanish.
    let mut s = raw(&server);
    let claimed: u32 = 1 << 20;
    s.write_all(&claimed.to_le_bytes()).unwrap();
    s.write_all(&[proto::VERSION, proto::T_ANALYZE, 4, 0]).unwrap();
    s.write_all(&[0u8; 4096]).unwrap();
    drop(s); // RST/FIN mid-body

    // The daemon must reclaim the admission it granted: a fresh client
    // gets full service immediately.
    let mut client = Client::connect(&addr).unwrap();
    let image = std::fs::read("/proc/self/exe").unwrap();
    assert!(client.analyze(&image).is_ok());
    // The dead connection's handler releases its ballast as soon as it
    // observes the disconnect; poll briefly rather than race it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if stats.get("inflight_bytes") == Some(0) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "ballast never released");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.join();
}
