//! **funseeker-client** — the SDK for the funseeker analysis daemon.
//!
//! The daemon (`crates/server`, started with `funseeker serve`) turns
//! the batch engine into a long-running service: submit an ELF image
//! over a unix or TCP socket, get back the identified function entries
//! (and optionally a call-graph summary), with content-addressed
//! caching, single-flight dedup, and explicit `Busy` backpressure on
//! the server side. This crate is the client half: [`Client`] drives
//! the connection, and [`proto`] is the shared wire-protocol codec
//! (specified normatively in `DESIGN.md` §5).
//!
//! # Example
//!
//! Start an in-process daemon on a unix socket and analyze this test
//! binary through it — results are bit-identical to a local
//! [`funseeker::FunSeeker`] run:
//!
//! ```
//! use funseeker_client::Client;
//! use funseeker_server::{Server, ServerConfig};
//!
//! let sock = std::env::temp_dir().join(format!("fs-sdk-doc-{}.sock", std::process::id()));
//! let server = Server::start(ServerConfig::unix(&sock)).unwrap();
//!
//! let mut client = Client::connect(&format!("unix:{}", sock.display())).unwrap();
//! client.ping().unwrap();
//!
//! let image = std::fs::read("/proc/self/exe").unwrap();
//! let reply = client.analyze(&image).unwrap();
//! let local = funseeker::FunSeeker::new().identify(&image).unwrap();
//! assert_eq!(reply.analysis, local);
//!
//! // A resubmission of the same image is served from the cache.
//! let again = client.analyze(&image).unwrap();
//! assert_eq!(again.source, funseeker_client::proto::Source::Memory);
//!
//! let stats = client.stats().unwrap();
//! assert!(stats.get("cache_hits").unwrap() >= 1);
//! client.shutdown().unwrap();
//! server.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod proto;

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

pub use proto::{AnalyzeReply, ErrorCode, ProtoError, Response, Source};

/// A daemon address: `unix:<path>` or `tcp:<host>:<port>`. A bare
/// string containing `/` parses as a unix path, one containing `:` as
/// a TCP endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint.
    Tcp(String),
}

impl Addr {
    /// Parses an address string.
    pub fn parse(s: &str) -> Result<Addr, ClientError> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = s.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(hostport.to_owned()));
        }
        if s.contains('/') {
            return Ok(Addr::Unix(PathBuf::from(s)));
        }
        if s.contains(':') {
            return Ok(Addr::Tcp(s.to_owned()));
        }
        Err(ClientError::BadAddr(format!(
            "cannot parse {s:?}: expected unix:<path> or tcp:<host>:<port>"
        )))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
        }
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(io::Error),
    /// Wire-protocol defect (truncated frame, bad version, failed
    /// checksum, …).
    Proto(ProtoError),
    /// The server refused admission — backpressure, retry later.
    Busy {
        /// Analyses queued behind the admission gate when refused.
        queue_depth: u32,
        /// Estimated bytes in flight when refused.
        inflight_bytes: u64,
    },
    /// The server replied with a typed error.
    Remote {
        /// The failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server replied with a well-formed message of the wrong type
    /// for the request.
    Unexpected(&'static str),
    /// An unparsable address string.
    BadAddr(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { queue_depth, inflight_bytes } => write!(
                f,
                "server busy (queue depth {queue_depth}, {inflight_bytes} bytes in flight)"
            ),
            ClientError::Remote { code, message } if message.is_empty() => {
                write!(f, "server error: {code}")
            }
            ClientError::Remote { code, message } => write!(f, "server error: {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::BadAddr(what) => f.write_str(what),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// Whether this is the server's transient backpressure signal (the
    /// caller may retry after a short backoff).
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }
}

/// A parsed `stats` reply: the daemon's live counters as documented in
/// `DESIGN.md` §5. Unknown keys are preserved, so old SDKs read new
/// servers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    counters: BTreeMap<String, u64>,
}

impl ServerStats {
    /// Parses the `name value` line format of a `STATS_OK` body.
    /// Lines that do not parse are skipped (forward compatibility).
    pub fn parse(text: &str) -> ServerStats {
        let mut counters = BTreeMap::new();
        for line in text.lines() {
            if let Some((name, value)) = line.split_once(' ') {
                if let Ok(v) = value.trim().parse::<u64>() {
                    counters.insert(name.to_owned(), v);
                }
            }
        }
        ServerStats { counters }
    }

    /// The value of one counter, if the server reported it.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// All reported counters, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Result-cache hit rate across the daemon's lifetime (0 when
    /// nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.get("cache_hits").unwrap_or(0) as f64;
        let misses = self.get("cache_misses").unwrap_or(0) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connection to the analysis daemon. One request is in flight at a
/// time per connection; open several clients for concurrency (each is
/// cheap — the load harness opens a thousand).
pub struct Client {
    stream: Stream,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` (`unix:<path>` or `tcp:<host>:<port>`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_to(&Addr::parse(addr)?)
    }

    /// Connects to a parsed [`Addr`].
    pub fn connect_to(addr: &Addr) -> Result<Client, ClientError> {
        let stream = match addr {
            Addr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Addr::Tcp(hostport) => Stream::Tcp(TcpStream::connect(hostport.as_str())?),
        };
        Ok(Client { stream, max_frame: proto::DEFAULT_MAX_FRAME })
    }

    /// Caps the size of response frames this client will accept.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Bounds how long a single read waits for the server; `None`
    /// blocks indefinitely (the default).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        match &self.stream {
            Stream::Unix(s) => s.set_read_timeout(timeout)?,
            Stream::Tcp(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = proto::read_frame(&mut self.stream, self.max_frame)?
            .ok_or(ClientError::Proto(ProtoError::Truncated))?;
        Ok(proto::decode_response(&payload)?)
    }

    /// Submits `image` under the full FunSeeker configuration (Table II
    /// ④). Equivalent to [`Client::analyze_with`]`(image, 4, false)`.
    pub fn analyze(&mut self, image: &[u8]) -> Result<AnalyzeReply, ClientError> {
        self.analyze_with(image, 4, false)
    }

    /// Submits `image` under Table II configuration `config` (1–4),
    /// optionally requesting the interprocedural (CFG + call graph)
    /// summary. Backpressure surfaces as [`ClientError::Busy`]; parse
    /// failures and other server-side errors as [`ClientError::Remote`].
    pub fn analyze_with(
        &mut self,
        image: &[u8],
        config: u8,
        callgraph: bool,
    ) -> Result<AnalyzeReply, ClientError> {
        let flags = if callgraph { proto::FLAG_CALLGRAPH } else { 0 };
        proto::write_analyze(&mut self.stream, config, flags, image)?;
        match self.read_response()? {
            Response::Result(reply) => Ok(reply),
            Response::Busy { queue_depth, inflight_bytes } => {
                Err(ClientError::Busy { queue_depth, inflight_bytes })
            }
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("non-result reply to analyze")),
        }
    }

    /// [`Client::analyze_with`] with bounded exponential backoff on
    /// `Busy`: retries up to `max_retries` times, sleeping 1 ms and
    /// doubling (capped at 64 ms) between attempts. Returns the last
    /// `Busy` error when the server stays saturated.
    pub fn analyze_retry(
        &mut self,
        image: &[u8],
        config: u8,
        callgraph: bool,
        max_retries: usize,
    ) -> Result<AnalyzeReply, ClientError> {
        let mut backoff = Duration::from_millis(1);
        let mut attempt = 0;
        loop {
            match self.analyze_with(image, config, callgraph) {
                Err(e) if e.is_busy() && attempt < max_retries => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(64));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Queries the daemon's live counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        proto::write_simple_request(&mut self.stream, proto::T_STATS)?;
        match self.read_response()? {
            Response::Stats(text) => Ok(ServerStats::parse(&text)),
            Response::Busy { queue_depth, inflight_bytes } => {
                Err(ClientError::Busy { queue_depth, inflight_bytes })
            }
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("non-stats reply to stats")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        proto::write_simple_request(&mut self.stream, proto::T_PING)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            Response::Busy { queue_depth, inflight_bytes } => {
                Err(ClientError::Busy { queue_depth, inflight_bytes })
            }
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("non-pong reply to ping")),
        }
    }

    /// Asks the daemon to drain in-flight work and exit. Returns once
    /// the server acknowledges (`BYE`); the process exits after the
    /// drain completes.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        proto::write_simple_request(&mut self.stream, proto::T_SHUTDOWN)?;
        match self.read_response()? {
            Response::Bye => Ok(()),
            Response::Busy { queue_depth, inflight_bytes } => {
                Err(ClientError::Busy { queue_depth, inflight_bytes })
            }
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("non-bye reply to shutdown")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing_covers_both_transports() {
        assert_eq!(Addr::parse("unix:/tmp/x.sock").unwrap(), Addr::Unix("/tmp/x.sock".into()));
        assert_eq!(Addr::parse("tcp:127.0.0.1:7433").unwrap(), Addr::Tcp("127.0.0.1:7433".into()));
        assert_eq!(Addr::parse("/tmp/y.sock").unwrap(), Addr::Unix("/tmp/y.sock".into()));
        assert_eq!(Addr::parse("localhost:9").unwrap(), Addr::Tcp("localhost:9".into()));
        assert!(Addr::parse("nonsense").is_err());
        assert_eq!(Addr::parse("unix:/a/b.sock").unwrap().to_string(), "unix:/a/b.sock");
        assert_eq!(Addr::parse("tcp:h:1").unwrap().to_string(), "tcp:h:1");
    }

    #[test]
    fn stats_parse_skips_malformed_lines() {
        let s = ServerStats::parse("cache_hits 3\ncache_misses 1\njunk\nbad notanumber\n");
        assert_eq!(s.get("cache_hits"), Some(3));
        assert_eq!(s.get("cache_misses"), Some(1));
        assert_eq!(s.get("junk"), None);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn errors_render_and_chain() {
        let busy = ClientError::Busy { queue_depth: 3, inflight_bytes: 99 };
        assert!(busy.is_busy());
        assert!(busy.to_string().contains("queue depth 3"));
        let remote =
            ClientError::Remote { code: ErrorCode::ParseFailed, message: "bad magic".into() };
        assert!(!remote.is_busy());
        assert!(remote.to_string().contains("bad magic"));
        let proto = ClientError::from(ProtoError::Truncated);
        assert!(std::error::Error::source(&proto).is_some());
    }
}
