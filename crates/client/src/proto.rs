//! The funseeker wire protocol, version 1 — shared codec for the
//! daemon and the SDK.
//!
//! The normative specification lives in `DESIGN.md` §5 ("Serving
//! layer"); this module is its reference implementation. In brief:
//!
//! ```text
//! frame   := len:u32le payload[len]          // 2 ≤ len ≤ max_frame
//! payload := version:u8 type:u8 body[..]     // version = 0x01
//! ```
//!
//! Request types (client → server): [`T_ANALYZE`] (`config:u8 flags:u8
//! image[..]`), [`T_STATS`], [`T_PING`], [`T_SHUTDOWN`] (empty
//! bodies). Response types (server → client): [`T_RESULT`],
//! [`T_BUSY`], [`T_ERROR`], [`T_STATS_OK`], [`T_PONG`], [`T_BYE`].
//!
//! Every decoding defect maps to a typed [`ProtoError`] — truncated
//! frames, oversized length prefixes, unknown version bytes, and
//! malformed bodies are errors, never panics. The analysis payload of a
//! [`T_RESULT`] frame reuses the checksummed `FSC3` binary cache
//! record ([`funseeker_batch::cache::encode`], DESIGN.md §7), so
//! result integrity is verified end to end by the same code path the
//! disk cache trusts — and the daemon can memcpy a pre-encoded record
//! straight onto the socket for duplicate requests.

use std::io::{self, Read, Write};

use funseeker::{Analysis, Config};

/// Protocol version carried as the first payload byte.
pub const VERSION: u8 = 1;

/// Default cap on one frame's payload length (prefix values above the
/// cap are a [`ProtoError::TooLarge`] and close the connection).
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// Request: analyze one submitted image (`config:u8 flags:u8 image`).
pub const T_ANALYZE: u8 = 0x01;
/// Request: return the daemon's live counters (empty body).
pub const T_STATS: u8 = 0x02;
/// Request: liveness probe (empty body).
pub const T_PING: u8 = 0x03;
/// Request: drain in-flight work and exit (empty body).
pub const T_SHUTDOWN: u8 = 0x04;

/// Response: a completed analysis.
pub const T_RESULT: u8 = 0x81;
/// Response: admission refused — retry later (backpressure).
pub const T_BUSY: u8 = 0x82;
/// Response: a typed failure (see [`ErrorCode`]).
pub const T_ERROR: u8 = 0x83;
/// Response: counter lines (`name value\n` UTF-8 text).
pub const T_STATS_OK: u8 = 0x84;
/// Response: ping acknowledgement.
pub const T_PONG: u8 = 0x85;
/// Response: shutdown acknowledged; the daemon is draining.
pub const T_BYE: u8 = 0x86;

/// `ANALYZE` flag bit 0: also build the interprocedural (CFG + call
/// graph) summary. All other flag bits must be zero in version 1.
pub const FLAG_CALLGRAPH: u8 = 0x01;

/// Typed failure codes carried by [`T_ERROR`] responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed frame (zero-length payload, body shorter than its
    /// header). The server closes the connection.
    BadFrame = 1,
    /// Unsupported version byte. The server closes the connection.
    BadVersion = 2,
    /// Unknown request type, out-of-range config byte, or reserved
    /// flag bits. The connection stays usable.
    BadRequest = 3,
    /// The submitted image failed to parse as a supported ELF.
    ParseFailed = 4,
    /// Length prefix above the frame cap. The server closes the
    /// connection (it cannot resynchronize past an unread body).
    TooLarge = 5,
    /// The daemon is draining for shutdown; no new work is admitted.
    ShuttingDown = 6,
    /// Unexpected server-side failure.
    Internal = 7,
}

impl ErrorCode {
    /// Parses a wire byte; unknown codes are a decoding defect.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::ParseFailed,
            5 => ErrorCode::TooLarge,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::BadVersion => "unsupported protocol version",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::ParseFailed => "image failed to parse",
            ErrorCode::TooLarge => "frame exceeds size cap",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::Internal => "internal server error",
        };
        f.write_str(name)
    }
}

/// Where the daemon got a [`T_RESULT`]'s analysis from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Source {
    /// Computed fresh for this request.
    Computed = 0,
    /// Served from the in-memory result cache.
    Memory = 1,
    /// Served from the on-disk cache layer.
    Disk = 2,
    /// Shared from a concurrent in-flight analysis of the same image
    /// (single-flight dedup).
    Shared = 3,
}

impl Source {
    /// Parses a wire byte; unknown sources are a decoding defect.
    pub fn from_u8(b: u8) -> Option<Source> {
        Some(match b {
            0 => Source::Computed,
            1 => Source::Memory,
            2 => Source::Disk,
            3 => Source::Shared,
            _ => return None,
        })
    }
}

/// A decoded request payload. `Analyze` borrows the image from the
/// frame buffer — the server never copies submitted bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum Request<'a> {
    /// Analyze `image` under Table II configuration `config` (1–4).
    Analyze {
        /// Table II configuration id, 1–4.
        config: u8,
        /// [`FLAG_CALLGRAPH`] and reserved (must-be-zero) bits.
        flags: u8,
        /// The submitted ELF image.
        image: &'a [u8],
    },
    /// Counter query.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain and exit.
    Shutdown,
}

/// A completed analysis as carried by a [`T_RESULT`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReply {
    /// Content hash of the submitted image ([`funseeker_batch::hash_bytes`]).
    pub image_hash: u64,
    /// Cache key (`mix64(image_hash, config_fingerprint)`), which also
    /// keys the checksummed analysis text.
    pub key: u64,
    /// Server-side wall time from request receipt to reply, µs.
    pub elapsed_us: u32,
    /// Which layer served the result.
    pub source: Source,
    /// The analysis, bit-identical to a local
    /// `FunSeeker::with_config(config).identify(image)`.
    pub analysis: Analysis,
}

/// A decoded response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A completed analysis.
    Result(AnalyzeReply),
    /// Admission refused; retry later.
    Busy {
        /// Analyses queued behind the admission gate when refused.
        queue_depth: u32,
        /// Estimated bytes in flight when refused.
        inflight_bytes: u64,
    },
    /// A typed failure.
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Counter lines (`name value\n`).
    Stats(String),
    /// Ping acknowledgement.
    Pong,
    /// Shutdown acknowledged.
    Bye,
}

/// A decoding or transport defect. Every hostile input maps here —
/// the codec never panics and never silently mis-decodes (the result
/// body carries its own checksum).
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Truncated,
    /// A length prefix above the configured frame cap.
    TooLarge {
        /// The length the prefix claimed.
        len: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// An unsupported version byte.
    BadVersion(u8),
    /// An unknown message type byte.
    UnknownType(u8),
    /// A structurally invalid body.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Truncated => f.write_str("connection closed mid-frame"),
            ProtoError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownType(t) => write!(f, "unknown message type {t:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Maps a wire config id (1–4) plus flags to the analysis [`Config`]:
/// the Table II configuration with `interproc` set when
/// [`FLAG_CALLGRAPH`] is present. `None` for out-of-range ids or
/// reserved flag bits.
pub fn wire_config(id: u8, flags: u8) -> Option<Config> {
    if flags & !FLAG_CALLGRAPH != 0 {
        return None;
    }
    let mut config = match id {
        1 => Config::c1(),
        2 => Config::c2(),
        3 => Config::c3(),
        4 => Config::c4(),
        _ => return None,
    };
    if flags & FLAG_CALLGRAPH != 0 {
        config.interproc = true;
    }
    Some(config)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Reads one frame's payload. `Ok(None)` on clean end-of-stream (the
/// peer closed between frames); [`ProtoError::Truncated`] when the
/// stream ends inside a frame.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut prefix[1..]).map_err(eof_as_truncated)?,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame {
        return Err(ProtoError::TooLarge { len: len as u64, max: max_frame });
    }
    if len < 2 {
        return Err(ProtoError::Malformed("payload shorter than version + type"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(eof_as_truncated)?;
    Ok(Some(payload))
}

fn eof_as_truncated(e: io::Error) -> ProtoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ProtoError::Truncated
    } else {
        ProtoError::Io(e)
    }
}

/// Writes one frame whose payload is the concatenation of `parts`
/// (so an image body never needs copying into a contiguous buffer).
/// Returns the total bytes written including the prefix.
pub fn write_frame_parts(w: &mut impl Write, parts: &[&[u8]]) -> io::Result<usize> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    let prefix = u32::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&prefix.to_le_bytes())?;
    for part in parts {
        w.write_all(part)?;
    }
    w.flush()?;
    Ok(4 + len)
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Writes an `ANALYZE` request frame.
pub fn write_analyze(w: &mut impl Write, config: u8, flags: u8, image: &[u8]) -> io::Result<usize> {
    write_frame_parts(w, &[&[VERSION, T_ANALYZE, config, flags], image])
}

/// Writes a bodyless request frame (`STATS`, `PING`, `SHUTDOWN`).
pub fn write_simple_request(w: &mut impl Write, typ: u8) -> io::Result<usize> {
    write_frame_parts(w, &[&[VERSION, typ]])
}

/// Decodes a request payload (as read by [`read_frame`]).
pub fn decode_request(payload: &[u8]) -> Result<Request<'_>, ProtoError> {
    if payload.len() < 2 {
        return Err(ProtoError::Malformed("payload shorter than version + type"));
    }
    if payload[0] != VERSION {
        return Err(ProtoError::BadVersion(payload[0]));
    }
    match payload[1] {
        T_ANALYZE => {
            if payload.len() < 4 {
                return Err(ProtoError::Malformed("analyze body shorter than config + flags"));
            }
            let (config, flags) = (payload[2], payload[3]);
            if wire_config(config, flags).is_none() {
                return Err(ProtoError::Malformed("config id out of range or reserved flags set"));
            }
            Ok(Request::Analyze { config, flags, image: &payload[4..] })
        }
        T_STATS | T_PING | T_SHUTDOWN => {
            if payload.len() != 2 {
                return Err(ProtoError::Malformed("bodyless request carries a body"));
            }
            Ok(match payload[1] {
                T_STATS => Request::Stats,
                T_PING => Request::Ping,
                _ => Request::Shutdown,
            })
        }
        other => Err(ProtoError::UnknownType(other)),
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Writes a `RESULT` frame from the already-encoded analysis record
/// (the `FSC3` binary cache format keyed by `key`, DESIGN.md §7).
pub fn write_result(
    w: &mut impl Write,
    image_hash: u64,
    key: u64,
    elapsed_us: u32,
    source: Source,
    record: &[u8],
) -> io::Result<usize> {
    let mut head = [0u8; 23];
    head[0] = VERSION;
    head[1] = T_RESULT;
    head[2..10].copy_from_slice(&image_hash.to_le_bytes());
    head[10..18].copy_from_slice(&key.to_le_bytes());
    head[18..22].copy_from_slice(&elapsed_us.to_le_bytes());
    head[22] = source as u8;
    write_frame_parts(w, &[&head, record])
}

/// Writes a `BUSY` frame.
pub fn write_busy(w: &mut impl Write, queue_depth: u32, inflight_bytes: u64) -> io::Result<usize> {
    let mut head = [0u8; 14];
    head[0] = VERSION;
    head[1] = T_BUSY;
    head[2..6].copy_from_slice(&queue_depth.to_le_bytes());
    head[6..14].copy_from_slice(&inflight_bytes.to_le_bytes());
    write_frame_parts(w, &[&head])
}

/// Writes an `ERROR` frame.
pub fn write_error(w: &mut impl Write, code: ErrorCode, message: &str) -> io::Result<usize> {
    write_frame_parts(w, &[&[VERSION, T_ERROR, code as u8], message.as_bytes()])
}

/// Writes a `STATS_OK` frame carrying counter text.
pub fn write_stats(w: &mut impl Write, text: &str) -> io::Result<usize> {
    write_frame_parts(w, &[&[VERSION, T_STATS_OK], text.as_bytes()])
}

/// Writes a bodyless response frame (`PONG`, `BYE`).
pub fn write_simple_response(w: &mut impl Write, typ: u8) -> io::Result<usize> {
    write_frame_parts(w, &[&[VERSION, typ]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("caller sliced 4 bytes"))
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("caller sliced 8 bytes"))
}

/// Decodes a response payload, including checksum verification and
/// deserialization of a `RESULT`'s analysis body.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    if payload.len() < 2 {
        return Err(ProtoError::Malformed("payload shorter than version + type"));
    }
    if payload[0] != VERSION {
        return Err(ProtoError::BadVersion(payload[0]));
    }
    match payload[1] {
        T_RESULT => {
            if payload.len() < 23 {
                return Err(ProtoError::Malformed("result body shorter than its header"));
            }
            let image_hash = le_u64(&payload[2..10]);
            let key = le_u64(&payload[10..18]);
            let elapsed_us = le_u32(&payload[18..22]);
            let source = Source::from_u8(payload[22])
                .ok_or(ProtoError::Malformed("unknown result source byte"))?;
            let analysis = funseeker_batch::cache::decode(key, &payload[23..])
                .ok_or(ProtoError::Malformed("analysis body failed checksum or structure"))?;
            Ok(Response::Result(AnalyzeReply { image_hash, key, elapsed_us, source, analysis }))
        }
        T_BUSY => {
            if payload.len() != 14 {
                return Err(ProtoError::Malformed("busy body is not 12 bytes"));
            }
            Ok(Response::Busy {
                queue_depth: le_u32(&payload[2..6]),
                inflight_bytes: le_u64(&payload[6..14]),
            })
        }
        T_ERROR => {
            if payload.len() < 3 {
                return Err(ProtoError::Malformed("error body shorter than its code"));
            }
            let code = ErrorCode::from_u8(payload[2])
                .ok_or(ProtoError::Malformed("unknown error code"))?;
            let message = String::from_utf8_lossy(&payload[3..]).into_owned();
            Ok(Response::Error { code, message })
        }
        T_STATS_OK => {
            let text = std::str::from_utf8(&payload[2..])
                .map_err(|_| ProtoError::Malformed("stats body is not UTF-8"))?;
            Ok(Response::Stats(text.to_owned()))
        }
        T_PONG | T_BYE => {
            if payload.len() != 2 {
                return Err(ProtoError::Malformed("bodyless response carries a body"));
            }
            Ok(if payload[1] == T_PONG { Response::Pong } else { Response::Bye })
        }
        other => Err(ProtoError::UnknownType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_request_round_trips() {
        let image = b"\x7fELF-not-really";
        let mut wire = Vec::new();
        let n = write_analyze(&mut wire, 4, FLAG_CALLGRAPH, image).unwrap();
        assert_eq!(n, wire.len());
        let payload = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap().unwrap();
        match decode_request(&payload).unwrap() {
            Request::Analyze { config, flags, image: img } => {
                assert_eq!((config, flags), (4, FLAG_CALLGRAPH));
                assert_eq!(img, image);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn simple_requests_round_trip() {
        for (typ, want) in
            [(T_STATS, Request::Stats), (T_PING, Request::Ping), (T_SHUTDOWN, Request::Shutdown)]
        {
            let mut wire = Vec::new();
            write_simple_request(&mut wire, typ).unwrap();
            let payload = read_frame(&mut wire.as_slice(), 64).unwrap().unwrap();
            assert_eq!(decode_request(&payload).unwrap(), want);
        }
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_truncated() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &empty[..], 64).unwrap().is_none());
        let mut wire = Vec::new();
        write_simple_request(&mut wire, T_PING).unwrap();
        for cut in 1..wire.len() {
            let err = read_frame(&mut &wire[..cut], 64).unwrap_err();
            assert!(matches!(err, ProtoError::Truncated), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_prefix_is_too_large_without_allocation() {
        let wire = u32::MAX.to_le_bytes();
        match read_frame(&mut &wire[..], 1 << 20).unwrap_err() {
            ProtoError::TooLarge { len, max } => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_version_and_type_are_typed() {
        assert!(matches!(decode_request(&[9, T_PING]), Err(ProtoError::BadVersion(9))));
        assert!(matches!(decode_request(&[VERSION, 0x7f]), Err(ProtoError::UnknownType(0x7f))));
        assert!(matches!(decode_response(&[9, T_PONG]), Err(ProtoError::BadVersion(9))));
        assert!(matches!(decode_response(&[VERSION, 0x05]), Err(ProtoError::UnknownType(0x05))));
    }

    #[test]
    fn malformed_bodies_are_typed() {
        // Undersized frames and bodies.
        assert!(matches!(decode_request(&[VERSION]), Err(ProtoError::Malformed(_))));
        assert!(matches!(decode_request(&[VERSION, T_ANALYZE, 4]), Err(ProtoError::Malformed(_))));
        // Config out of range, reserved flags.
        assert!(matches!(
            decode_request(&[VERSION, T_ANALYZE, 0, 0]),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[VERSION, T_ANALYZE, 5, 0]),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[VERSION, T_ANALYZE, 4, 0x80]),
            Err(ProtoError::Malformed(_))
        ));
        // Bodyless messages with bodies.
        assert!(matches!(decode_request(&[VERSION, T_PING, 0]), Err(ProtoError::Malformed(_))));
        assert!(matches!(decode_response(&[VERSION, T_PONG, 0]), Err(ProtoError::Malformed(_))));
        // Busy body of the wrong size, unknown error code.
        assert!(matches!(decode_response(&[VERSION, T_BUSY, 1]), Err(ProtoError::Malformed(_))));
        assert!(matches!(decode_response(&[VERSION, T_ERROR, 99]), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn result_round_trips_through_the_checksummed_body() {
        let image = std::fs::read("/proc/self/exe").unwrap();
        let analysis = funseeker::FunSeeker::new().identify(&image).unwrap();
        let hash = funseeker_batch::hash_bytes(&image);
        let fp = funseeker_batch::cache::config_fingerprint(&Config::c4());
        let key = funseeker_batch::cache_key(hash, &Config::c4());
        let record = funseeker_batch::cache::encode(hash, fp, &analysis).unwrap();
        let mut wire = Vec::new();
        write_result(&mut wire, hash, key, 1234, Source::Computed, &record).unwrap();
        let payload = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap().unwrap();
        match decode_response(&payload).unwrap() {
            Response::Result(reply) => {
                assert_eq!(reply.image_hash, hash);
                assert_eq!(reply.key, key);
                assert_eq!(reply.elapsed_us, 1234);
                assert_eq!(reply.source, Source::Computed);
                assert_eq!(reply.analysis, analysis);
            }
            other => panic!("decoded {other:?}"),
        }
        // A flipped byte in the analysis body fails the checksum.
        let mut corrupt = wire.clone();
        let at = wire.len() - 40;
        corrupt[at] ^= 1;
        let payload = read_frame(&mut corrupt.as_slice(), DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(matches!(decode_response(&payload), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn busy_error_stats_round_trip() {
        let mut wire = Vec::new();
        write_busy(&mut wire, 17, 1 << 30).unwrap();
        write_error(&mut wire, ErrorCode::ParseFailed, "not an ELF").unwrap();
        write_stats(&mut wire, "requests_total 5\ncache_hits 3\n").unwrap();
        write_simple_response(&mut wire, T_PONG).unwrap();
        write_simple_response(&mut wire, T_BYE).unwrap();
        let mut r = wire.as_slice();
        let next = |r: &mut &[u8]| {
            decode_response(&read_frame(r, DEFAULT_MAX_FRAME).unwrap().unwrap()).unwrap()
        };
        assert_eq!(next(&mut r), Response::Busy { queue_depth: 17, inflight_bytes: 1 << 30 });
        assert_eq!(
            next(&mut r),
            Response::Error { code: ErrorCode::ParseFailed, message: "not an ELF".into() }
        );
        assert_eq!(next(&mut r), Response::Stats("requests_total 5\ncache_hits 3\n".into()));
        assert_eq!(next(&mut r), Response::Pong);
        assert_eq!(next(&mut r), Response::Bye);
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn wire_config_maps_ids_and_flags() {
        assert_eq!(wire_config(1, 0), Some(Config::c1()));
        assert_eq!(wire_config(4, 0), Some(Config::c4()));
        let with_graph = wire_config(2, FLAG_CALLGRAPH).unwrap();
        assert!(with_graph.interproc);
        assert_eq!(Config { interproc: false, ..with_graph }, Config::c2());
        assert_eq!(wire_config(0, 0), None);
        assert_eq!(wire_config(5, 0), None);
        assert_eq!(wire_config(4, 0x02), None, "reserved flag bits rejected");
    }
}
