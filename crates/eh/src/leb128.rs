//! LEB128 variable-length integers (DWARF's workhorse encoding).

use crate::error::{EhError, Result};

/// Reads an unsigned LEB128 from `data` starting at `*pos`, advancing it.
pub fn read_uleb128(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(EhError::Truncated { offset: *pos })?;
        *pos += 1;
        if shift >= 64 {
            return Err(EhError::Overflow);
        }
        // Bits past the 64th must be zero or the value doesn't fit.
        if shift == 63 && byte & 0x7e != 0 {
            return Err(EhError::Overflow);
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Reads a signed LEB128 from `data` starting at `*pos`, advancing it.
pub fn read_sleb128(data: &[u8], pos: &mut usize) -> Result<i64> {
    let mut result = 0i64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(EhError::Truncated { offset: *pos })?;
        *pos += 1;
        if shift >= 64 {
            return Err(EhError::Overflow);
        }
        result |= i64::from(byte & 0x7f) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                // Sign extend.
                result |= -1i64 << shift;
            }
            return Ok(result);
        }
    }
}

/// Appends an unsigned LEB128 encoding of `value` to `out`.
pub fn write_uleb128(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 encoding of `value` to `out`.
pub fn write_sleb128(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uleb_known_vectors() {
        // Classic DWARF spec examples.
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (2, &[0x02]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (129, &[0x81, 0x01]),
            (624485, &[0xe5, 0x8e, 0x26]),
            (u64::MAX, &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]),
        ];
        for (value, bytes) in cases {
            let mut out = Vec::new();
            write_uleb128(&mut out, *value);
            assert_eq!(&out, bytes, "encode {value}");
            let mut pos = 0;
            assert_eq!(read_uleb128(&out, &mut pos).unwrap(), *value);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn sleb_known_vectors() {
        let cases: &[(i64, &[u8])] = &[
            (0, &[0x00]),
            (2, &[0x02]),
            (-2, &[0x7e]),
            (63, &[0x3f]),
            (-64, &[0x40]),
            (64, &[0xc0, 0x00]),
            (-65, &[0xbf, 0x7f]),
            (-624485, &[0x9b, 0xf1, 0x59]),
            (i64::MIN, &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f]),
        ];
        for (value, bytes) in cases {
            let mut out = Vec::new();
            write_sleb128(&mut out, *value);
            assert_eq!(&out, bytes, "encode {value}");
            let mut pos = 0;
            assert_eq!(read_sleb128(&out, &mut pos).unwrap(), *value);
        }
    }

    #[test]
    fn truncated_input_is_error() {
        let mut pos = 0;
        assert!(matches!(read_uleb128(&[0x80], &mut pos), Err(EhError::Truncated { .. })));
        let mut pos = 0;
        assert!(matches!(read_sleb128(&[0xff, 0x80], &mut pos), Err(EhError::Truncated { .. })));
        let mut pos = 0;
        assert!(matches!(read_uleb128(&[], &mut pos), Err(EhError::Truncated { .. })));
    }

    #[test]
    fn oversized_uleb_is_overflow() {
        // 11 continuation bytes exceed 64 bits.
        let bytes = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(read_uleb128(&bytes, &mut pos), Err(EhError::Overflow)));
    }

    #[test]
    fn position_advances_only_past_the_value() {
        let data = [0x81, 0x01, 0xc3, 0xc3];
        let mut pos = 0;
        assert_eq!(read_uleb128(&data, &mut pos).unwrap(), 129);
        assert_eq!(pos, 2);
    }
}
