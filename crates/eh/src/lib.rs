//! DWARF exception-handling substrate for the FunSeeker reproduction.
//!
//! Three layers, each with a parser **and** an emitter (the corpus
//! simulator writes what the identifiers later read):
//!
//! * [`leb128`] — variable-length integers.
//! * [`encoding`] — `DW_EH_PE_*` pointer encodings.
//! * [`ehframe`] / [`lsda`] — `.eh_frame` CIE/FDE records and
//!   `.gcc_except_table` Language-Specific Data Areas.
//!
//! FunSeeker's FILTERENDBR uses LSDAs to discard landing-pad end-branch
//! instructions (§IV-C of the paper); the FETCH and Ghidra baselines use
//! FDE `pc_begin` values as their function oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfi;
pub mod ehframe;
pub mod ehframe_hdr;
pub mod encoding;
pub mod error;
pub mod leb128;
pub mod lsda;

pub use cfi::{decode_cfi, CfiInsn};
pub use ehframe::{parse_eh_frame, EhFrame, EhFrameBuilder, Fde};
pub use ehframe_hdr::{build_eh_frame_hdr, parse_eh_frame_hdr, EhFrameHdr};
pub use error::{EhError, Result};
pub use lsda::{parse_lsda, CallSite, ExceptTableBuilder, Lsda, LsdaBuilder};
