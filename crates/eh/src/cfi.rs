//! DWARF Call Frame Information (`DW_CFA_*`) instruction decoding.
//!
//! FDE bodies carry a CFI program describing how to unwind each frame.
//! Function *identification* does not need to execute it, but a complete
//! `.eh_frame` substrate should at least walk it: tools like Ghidra
//! validate FDEs by checking their CFI parses, and corrupted programs
//! are a realistic failure-injection surface.

use crate::error::{EhError, Result};
use crate::leb128::{read_sleb128, read_uleb128};

/// One decoded CFI instruction (operands resolved, rules not evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfiInsn {
    /// `DW_CFA_advance_loc` and its `1/2/4` variants — move the location
    /// forward by `delta` (pre-scaled by `code_alignment_factor`).
    AdvanceLoc {
        /// Code-alignment-scaled delta.
        delta: u64,
    },
    /// `DW_CFA_def_cfa` (register, offset).
    DefCfa {
        /// CFA base register number.
        reg: u64,
        /// Offset from the register.
        offset: u64,
    },
    /// `DW_CFA_def_cfa_register`.
    DefCfaRegister {
        /// New CFA base register.
        reg: u64,
    },
    /// `DW_CFA_def_cfa_offset`.
    DefCfaOffset {
        /// New offset.
        offset: u64,
    },
    /// `DW_CFA_offset` — register saved at CFA-relative slot.
    Offset {
        /// Register number.
        reg: u64,
        /// Factored offset.
        offset: u64,
    },
    /// `DW_CFA_restore`.
    Restore {
        /// Register number.
        reg: u64,
    },
    /// `DW_CFA_remember_state`.
    RememberState,
    /// `DW_CFA_restore_state`.
    RestoreState,
    /// `DW_CFA_nop` (also used as padding).
    Nop,
    /// Any other opcode, skipped with correct operand sizes.
    Other {
        /// The raw opcode byte.
        opcode: u8,
    },
}

/// Decodes a CFI program (an FDE's instruction bytes, padding included).
///
/// Returns the decoded instructions; unknown opcodes with unknown operand
/// layouts produce [`EhError::Malformed`].
pub fn decode_cfi(program: &[u8]) -> Result<Vec<CfiInsn>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < program.len() {
        let byte = program[pos];
        pos += 1;
        let high = byte >> 6;
        let low = byte & 0x3f;
        let insn = match high {
            0x1 => CfiInsn::AdvanceLoc { delta: u64::from(low) },
            0x2 => {
                let offset = read_uleb128(program, &mut pos)?;
                CfiInsn::Offset { reg: u64::from(low), offset }
            }
            0x3 => CfiInsn::Restore { reg: u64::from(low) },
            _ => match low {
                0x00 => CfiInsn::Nop,
                0x02 => {
                    let d = *program.get(pos).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 1;
                    CfiInsn::AdvanceLoc { delta: u64::from(d) }
                }
                0x03 => {
                    let b = program.get(pos..pos + 2).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 2;
                    CfiInsn::AdvanceLoc {
                        // invariant: the slice is exactly 2 bytes long.
                        delta: u64::from(u16::from_le_bytes(b.try_into().unwrap())),
                    }
                }
                0x04 => {
                    let b = program.get(pos..pos + 4).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 4;
                    CfiInsn::AdvanceLoc {
                        // invariant: the slice is exactly 4 bytes long.
                        delta: u64::from(u32::from_le_bytes(b.try_into().unwrap())),
                    }
                }
                0x05 => {
                    let reg = read_uleb128(program, &mut pos)?;
                    let offset = read_uleb128(program, &mut pos)?;
                    CfiInsn::Offset { reg, offset }
                }
                0x0a => CfiInsn::RememberState,
                0x0b => CfiInsn::RestoreState,
                0x0c => {
                    let reg = read_uleb128(program, &mut pos)?;
                    let offset = read_uleb128(program, &mut pos)?;
                    CfiInsn::DefCfa { reg, offset }
                }
                0x0d => {
                    let reg = read_uleb128(program, &mut pos)?;
                    CfiInsn::DefCfaRegister { reg }
                }
                0x0e => {
                    let offset = read_uleb128(program, &mut pos)?;
                    CfiInsn::DefCfaOffset { offset }
                }
                // Opcodes with one ULEB operand.
                0x06..=0x09 => {
                    let _ = read_uleb128(program, &mut pos)?;
                    if low == 0x09 {
                        let _ = read_uleb128(program, &mut pos)?; // register pair
                    }
                    CfiInsn::Other { opcode: byte }
                }
                // def_cfa_sf / offset_extended_sf: uleb + sleb.
                0x11 | 0x12 => {
                    let _ = read_uleb128(program, &mut pos)?;
                    let _ = read_sleb128(program, &mut pos)?;
                    CfiInsn::Other { opcode: byte }
                }
                0x13 => {
                    let _ = read_sleb128(program, &mut pos)?;
                    CfiInsn::Other { opcode: byte }
                }
                // Expression forms: uleb length + block.
                0x0f => {
                    let n = read_uleb128(program, &mut pos)? as usize;
                    pos = pos
                        .checked_add(n)
                        .filter(|&p| p <= program.len())
                        .ok_or(EhError::Malformed("CFI expression overruns"))?;
                    CfiInsn::Other { opcode: byte }
                }
                0x10 | 0x16 => {
                    let _ = read_uleb128(program, &mut pos)?;
                    let n = read_uleb128(program, &mut pos)? as usize;
                    pos = pos
                        .checked_add(n)
                        .filter(|&p| p <= program.len())
                        .ok_or(EhError::Malformed("CFI expression overruns"))?;
                    CfiInsn::Other { opcode: byte }
                }
                // GNU extensions: args_size (uleb).
                0x2e => {
                    let _ = read_uleb128(program, &mut pos)?;
                    CfiInsn::Other { opcode: byte }
                }
                _ => return Err(EhError::Malformed("unknown CFI opcode")),
            },
        };
        out.push(insn);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_the_classic_prologue_program() {
        // What GCC emits for push rbp; mov rbp,rsp frames:
        //   advance_loc 1; def_cfa_offset 16; offset rbp, 2;
        //   advance_loc 3; def_cfa_register rbp; nops.
        let program = [
            0x41, // advance_loc 1
            0x0e, 0x10, // def_cfa_offset 16
            0x86, 0x02, // offset r6(rbp), 2
            0x43, // advance_loc 3
            0x0d, 0x06, // def_cfa_register rbp
            0x00, 0x00, // nops
        ];
        let insns = decode_cfi(&program).unwrap();
        assert_eq!(
            insns,
            vec![
                CfiInsn::AdvanceLoc { delta: 1 },
                CfiInsn::DefCfaOffset { offset: 16 },
                CfiInsn::Offset { reg: 6, offset: 2 },
                CfiInsn::AdvanceLoc { delta: 3 },
                CfiInsn::DefCfaRegister { reg: 6 },
                CfiInsn::Nop,
                CfiInsn::Nop,
            ]
        );
    }

    #[test]
    fn wide_advance_and_def_cfa() {
        let program = [
            0x02, 0x80, // advance_loc1 128
            0x03, 0x00, 0x01, // advance_loc2 256
            0x04, 0x00, 0x00, 0x01, 0x00, // advance_loc4 65536
            0x0c, 0x07, 0x08, // def_cfa r7, 8
            0x0a, 0x0b, // remember/restore state
        ];
        let insns = decode_cfi(&program).unwrap();
        assert_eq!(insns[0], CfiInsn::AdvanceLoc { delta: 128 });
        assert_eq!(insns[1], CfiInsn::AdvanceLoc { delta: 256 });
        assert_eq!(insns[2], CfiInsn::AdvanceLoc { delta: 65536 });
        assert_eq!(insns[3], CfiInsn::DefCfa { reg: 7, offset: 8 });
        assert_eq!(insns[4], CfiInsn::RememberState);
        assert_eq!(insns[5], CfiInsn::RestoreState);
    }

    #[test]
    fn expression_blocks_are_skipped_safely() {
        let program = [0x0f, 0x03, 0x11, 0x22, 0x33, 0x00];
        let insns = decode_cfi(&program).unwrap();
        assert_eq!(insns.len(), 2);
        assert!(matches!(insns[0], CfiInsn::Other { opcode: 0x0f }));
        // Overrunning expression is malformed, not a panic.
        assert!(matches!(decode_cfi(&[0x0f, 0x7f, 0x00]), Err(EhError::Malformed(_))));
    }

    #[test]
    fn truncations_error_cleanly() {
        for bytes in [&[0x02][..], &[0x03, 0x00][..], &[0x0c, 0x07][..]] {
            assert!(decode_cfi(bytes).is_err());
        }
    }
}
