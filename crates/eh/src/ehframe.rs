//! `.eh_frame` parsing and emission (CIE / FDE records).
//!
//! Function identifiers consume two facts per FDE: the covered PC range
//! (`pc_begin`, `pc_range`) and the LSDA pointer, which leads to the
//! landing pads FunSeeker's FILTERENDBR must discard. The FETCH and
//! Ghidra baselines use `pc_begin` directly as a function-start oracle.

use crate::encoding::{
    read_encoded, read_raw, write_encoded, Bases, DW_EH_PE_OMIT, DW_EH_PE_PCREL, DW_EH_PE_SDATA4,
};
use crate::error::{EhError, Result};
use crate::leb128::{read_uleb128, write_uleb128};

/// One Frame Description Entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fde {
    /// First address of the covered range (the paper's "PC begin").
    pub pc_begin: u64,
    /// Length of the covered range in bytes.
    pub pc_range: u64,
    /// Absolute address of the function's LSDA in `.gcc_except_table`,
    /// when the function has exception-handling call sites.
    pub lsda: Option<u64>,
}

/// Parsed `.eh_frame` contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EhFrame {
    /// All FDEs in record order.
    pub fdes: Vec<Fde>,
}

#[derive(Debug, Clone, Copy)]
struct Cie {
    fde_enc: u8,
    lsda_enc: u8,
    has_aug_data: bool,
}

/// Parses an `.eh_frame` section loaded at `section_addr`.
///
/// `wide` selects pointer width for `DW_EH_PE_absptr` values (true on
/// x86-64). Unknown augmentations make the affected record be skipped
/// rather than failing the whole parse — real-world sections mix CIE
/// flavors.
pub fn parse_eh_frame(data: &[u8], section_addr: u64, wide: bool) -> Result<EhFrame> {
    let mut fdes = Vec::new();
    let mut cies: Vec<(usize, Cie)> = Vec::new();
    let mut pos = 0usize;

    while pos + 4 <= data.len() {
        let record_start = pos;
        // invariant: the loop condition guarantees pos + 4 <= data.len(),
        // and the 4-byte slice converts to [u8; 4] infallibly.
        let mut len = u64::from(u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()));
        pos += 4;
        if len == 0 {
            // Terminator. GCC emits one at the very end; tolerate embedded
            // ones by continuing (ld -r output can concatenate).
            continue;
        }
        if len == 0xffff_ffff {
            let end = pos.checked_add(8).ok_or(EhError::Overflow)?;
            let bytes = data.get(pos..end).ok_or(EhError::Truncated { offset: pos })?;
            // invariant: the slice is exactly 8 bytes long.
            len = u64::from_le_bytes(bytes.try_into().unwrap());
            pos += 8;
        }
        let body_end = pos
            .checked_add(usize::try_from(len).map_err(|_| EhError::Overflow)?)
            .ok_or(EhError::Overflow)?;
        if body_end > data.len() {
            return Err(EhError::Malformed("record length runs past section"));
        }

        let id_pos = pos;
        // invariant: the slice is exactly 4 bytes long.
        let id = u32::from_le_bytes(
            data.get(pos..pos + 4).ok_or(EhError::Truncated { offset: pos })?.try_into().unwrap(),
        );
        pos += 4;

        if id == 0 {
            // CIE.
            match parse_cie(data, pos, body_end, wide) {
                Ok(cie) => cies.push((record_start, cie)),
                Err(_) => { /* unsupported CIE flavor: skip its FDEs too */ }
            }
        } else {
            // FDE: id is the distance from the id field back to the CIE.
            let cie_start =
                id_pos.checked_sub(id as usize).ok_or(EhError::BadCiePointer { offset: id_pos })?;
            let Some(&(_, cie)) = cies.iter().find(|(off, _)| *off == cie_start) else {
                pos = body_end;
                continue; // FDE for a CIE we skipped
            };
            if let Ok(fde) = parse_fde(data, pos, section_addr, cie, wide) {
                fdes.push(fde);
            }
        }
        pos = body_end;
    }

    Ok(EhFrame { fdes })
}

fn parse_cie(data: &[u8], mut pos: usize, end: usize, wide: bool) -> Result<Cie> {
    let version = *data.get(pos).ok_or(EhError::Truncated { offset: pos })?;
    pos += 1;
    if version != 1 && version != 3 {
        return Err(EhError::BadCieVersion(version));
    }
    let aug_start = pos;
    let aug_region =
        data.get(aug_start..end).ok_or(EhError::Malformed("CIE body outside record bounds"))?;
    let aug_end = aug_region
        .iter()
        .position(|&b| b == 0)
        .ok_or(EhError::Malformed("unterminated augmentation string"))?;
    let augmentation: Vec<u8> = aug_region[..aug_end].to_vec();
    pos = aug_start + aug_end + 1;

    let _code_align = read_uleb128(data, &mut pos)?;
    let _data_align = crate::leb128::read_sleb128(data, &mut pos)?;
    if version == 1 {
        pos += 1; // return-address register as a plain byte
    } else {
        let _ = read_uleb128(data, &mut pos)?;
    }

    let mut cie = Cie {
        fde_enc: crate::encoding::DW_EH_PE_ABSPTR,
        lsda_enc: DW_EH_PE_OMIT,
        has_aug_data: false,
    };
    if augmentation.first() == Some(&b'z') {
        cie.has_aug_data = true;
        let _aug_len = read_uleb128(data, &mut pos)?;
        for &ch in &augmentation[1..] {
            match ch {
                b'R' => {
                    cie.fde_enc = *data.get(pos).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 1;
                }
                b'L' => {
                    cie.lsda_enc = *data.get(pos).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 1;
                }
                b'P' => {
                    let enc = *data.get(pos).ok_or(EhError::Truncated { offset: pos })?;
                    pos += 1;
                    // Consume the personality pointer; its value is
                    // irrelevant for function identification, and
                    // indirect pointers cannot be resolved statically.
                    match read_encoded(data, &mut pos, enc, Bases::default(), wide) {
                        Ok(_) | Err(EhError::IndirectPointer) => {}
                        Err(e) => return Err(e),
                    }
                }
                b'S' | b'B' | b'G' => {}
                _ => return Err(EhError::Malformed("unknown augmentation character")),
            }
        }
    }
    Ok(cie)
}

fn parse_fde(data: &[u8], mut pos: usize, section_addr: u64, cie: Cie, wide: bool) -> Result<Fde> {
    // Wrapping: pc-relative DWARF address math is modulo 2^64; a hostile
    // section_addr near u64::MAX must not abort the parse.
    let field_vaddr = section_addr.wrapping_add(pos as u64);
    let pc_begin = read_encoded(
        data,
        &mut pos,
        cie.fde_enc,
        Bases { pc: field_vaddr, ..Default::default() },
        wide,
    )?
    .ok_or(EhError::Malformed("FDE without pc_begin"))?;
    let pc_range = read_raw(data, &mut pos, cie.fde_enc & 0x0f, wide)? as u64;

    let mut lsda = None;
    if cie.has_aug_data {
        let _aug_len = read_uleb128(data, &mut pos)?;
        if cie.lsda_enc != DW_EH_PE_OMIT {
            let lsda_vaddr = section_addr.wrapping_add(pos as u64);
            // A stored zero means "no LSDA" even under pc-relative
            // encodings, so null-check the raw value before rebasing.
            let mut probe = pos;
            let raw = read_raw(data, &mut probe, cie.lsda_enc & 0x0f, wide)?;
            if raw != 0 {
                lsda = read_encoded(
                    data,
                    &mut pos,
                    cie.lsda_enc,
                    Bases { pc: lsda_vaddr, ..Default::default() },
                    wide,
                )?;
            }
        }
    }

    Ok(Fde { pc_begin, pc_range, lsda })
}

/// Builds an `.eh_frame` section: one shared CIE plus one FDE per
/// function, using GCC's usual `zR` / `zLR` augmentation with
/// PC-relative `sdata4` pointers.
#[derive(Debug, Clone)]
pub struct EhFrameBuilder {
    section_addr: u64,
    buf: Vec<u8>,
    with_lsda: bool,
}

impl EhFrameBuilder {
    /// Starts a builder for a section that will be loaded at
    /// `section_addr`. When `with_lsda` is set the CIE carries an `L`
    /// augmentation and FDEs may reference LSDAs.
    pub fn new(section_addr: u64, with_lsda: bool) -> Self {
        let mut b = EhFrameBuilder { section_addr, buf: Vec::new(), with_lsda };
        b.emit_cie();
        b
    }

    fn enc() -> u8 {
        DW_EH_PE_PCREL | DW_EH_PE_SDATA4
    }

    fn emit_cie(&mut self) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&[0; 4]); // length placeholder
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // CIE id
        self.buf.push(1); // version
        if self.with_lsda {
            self.buf.extend_from_slice(b"zLR\0");
        } else {
            self.buf.extend_from_slice(b"zR\0");
        }
        write_uleb128(&mut self.buf, 1); // code alignment
        crate::leb128::write_sleb128(&mut self.buf, -8); // data alignment
        self.buf.push(16); // return-address register (RA on x86-64)
                           // Augmentation data: [lsda_enc,] fde_enc.
        if self.with_lsda {
            write_uleb128(&mut self.buf, 2);
            self.buf.push(Self::enc());
            self.buf.push(Self::enc());
        } else {
            write_uleb128(&mut self.buf, 1);
            self.buf.push(Self::enc());
        }
        self.pad_and_patch_len(start);
    }

    /// Appends one FDE, returning its absolute record address (what an
    /// `.eh_frame_hdr` table entry points at).
    pub fn add_fde(&mut self, pc_begin: u64, pc_range: u64, lsda: Option<u64>) -> u64 {
        let start = self.buf.len();
        let record_addr = self.section_addr + start as u64;
        self.buf.extend_from_slice(&[0; 4]); // length placeholder
        let id_pos = self.buf.len();
        self.buf.extend_from_slice(&(id_pos as u32).to_le_bytes()); // distance back to CIE at 0
        let field_vaddr = self.section_addr + self.buf.len() as u64;
        write_encoded(
            &mut self.buf,
            Self::enc(),
            pc_begin,
            Bases { pc: field_vaddr, ..Default::default() },
            true,
        )
        // invariant: write-side only; the fixed sdata4 encoding never fails.
        .expect("sdata4 encoding is always writable");
        // pc_range: plain size in the same format.
        self.buf.extend_from_slice(&(pc_range as u32).to_le_bytes());
        if self.with_lsda {
            write_uleb128(&mut self.buf, 4); // aug length: one sdata4
            match lsda {
                Some(addr) => {
                    let lsda_vaddr = self.section_addr + self.buf.len() as u64;
                    write_encoded(
                        &mut self.buf,
                        Self::enc(),
                        addr,
                        Bases { pc: lsda_vaddr, ..Default::default() },
                        true,
                    )
                    // invariant: write-side only; the fixed sdata4 encoding never fails.
                    .expect("sdata4 encoding is always writable");
                }
                None => self.buf.extend_from_slice(&0u32.to_le_bytes()),
            }
        } else {
            write_uleb128(&mut self.buf, 0);
        }
        self.pad_and_patch_len(start);
        record_addr
    }

    fn pad_and_patch_len(&mut self, start: usize) {
        while !(self.buf.len() - start).is_multiple_of(8) {
            self.buf.push(0); // DW_CFA_nop
        }
        let len = (self.buf.len() - start - 4) as u32;
        self.buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Finishes the section (appends the zero terminator).
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_section_parses_to_no_fdes() {
        assert_eq!(parse_eh_frame(&[], 0, true).unwrap().fdes.len(), 0);
        // Just a terminator.
        assert_eq!(parse_eh_frame(&[0, 0, 0, 0], 0, true).unwrap().fdes.len(), 0);
    }

    #[test]
    fn builder_round_trips_without_lsda() {
        let mut b = EhFrameBuilder::new(0x5000, false);
        b.add_fde(0x401000, 0x40, None);
        b.add_fde(0x401040, 0x123, None);
        let bytes = b.finish();
        let parsed = parse_eh_frame(&bytes, 0x5000, true).unwrap();
        assert_eq!(
            parsed.fdes,
            vec![
                Fde { pc_begin: 0x401000, pc_range: 0x40, lsda: None },
                Fde { pc_begin: 0x401040, pc_range: 0x123, lsda: None },
            ]
        );
    }

    #[test]
    fn builder_round_trips_with_lsda() {
        let mut b = EhFrameBuilder::new(0x2000, true);
        b.add_fde(0x1000, 0x80, Some(0x3000));
        b.add_fde(0x1080, 0x20, None);
        b.add_fde(0x10a0, 0x60, Some(0x3040));
        let bytes = b.finish();
        let parsed = parse_eh_frame(&bytes, 0x2000, true).unwrap();
        assert_eq!(parsed.fdes.len(), 3);
        assert_eq!(parsed.fdes[0].lsda, Some(0x3000));
        assert_eq!(parsed.fdes[1].lsda, None, "zero LSDA field must read back as None");
        assert_eq!(parsed.fdes[2].lsda, Some(0x3040));
        assert_eq!(parsed.fdes[2].pc_begin, 0x10a0);
    }

    #[test]
    fn record_overrunning_section_is_malformed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes()); // claims 100 bytes
        bytes.extend_from_slice(&[0u8; 8]); // but only 8 follow
        assert!(matches!(parse_eh_frame(&bytes, 0, true), Err(EhError::Malformed(_))));
    }

    #[test]
    fn fde_with_unknown_cie_is_skipped() {
        // A lone FDE pointing back past the start of the section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&12u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // back-pointer to offset 0 — not a CIE we parsed
        bytes.extend_from_slice(&[0u8; 8]);
        // Offset 0 holds this very record (not a CIE), so lookup fails and
        // the FDE is skipped gracefully.
        let parsed = parse_eh_frame(&bytes, 0, true).unwrap();
        assert_eq!(parsed.fdes.len(), 0);
    }

    #[test]
    fn parses_own_executables_eh_frame() {
        // Real-world differential: the running test binary has a genuine
        // .eh_frame produced by rustc/LLVM.
        let Ok(raw) = std::fs::read("/proc/self/exe") else { return };
        let Ok(elf) = funseeker_elf::Elf::parse(&raw) else { return };
        let Some((addr, data)) = elf.section_bytes(".eh_frame") else { return };
        let parsed = parse_eh_frame(data, addr, true).expect("parse own .eh_frame");
        assert!(
            parsed.fdes.len() > 100,
            "a Rust test binary has many FDEs, got {}",
            parsed.fdes.len()
        );
        // Every pc_begin should land in an executable section.
        let (text_addr, text) = elf.section_bytes(".text").unwrap();
        let text_end = text_addr + text.len() as u64;
        let in_text =
            parsed.fdes.iter().filter(|f| f.pc_begin >= text_addr && f.pc_begin < text_end).count();
        assert!(
            in_text * 10 >= parsed.fdes.len() * 9,
            "≥90% of FDEs should point into .text ({in_text}/{})",
            parsed.fdes.len()
        );
    }
}
