//! Error type for exception-handling metadata parsing.

use core::fmt;

/// Errors while parsing `.eh_frame` / `.gcc_except_table` contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EhError {
    /// Ran off the end of the section.
    Truncated {
        /// Offset of the failed read.
        offset: usize,
    },
    /// A LEB128 value does not fit in 64 bits.
    Overflow,
    /// An unknown or unsupported `DW_EH_PE_*` encoding byte.
    BadEncoding(u8),
    /// An `DW_EH_PE_indirect` pointer, which needs a loaded process image
    /// to dereference.
    IndirectPointer,
    /// A CIE has a version we do not understand.
    BadCieVersion(u8),
    /// An FDE references a CIE at an invalid offset.
    BadCiePointer {
        /// Offset the FDE pointed at.
        offset: usize,
    },
    /// Structurally invalid data (e.g. record length runs past the
    /// section).
    Malformed(&'static str),
}

impl fmt::Display for EhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EhError::Truncated { offset } => write!(f, "EH data truncated at offset {offset}"),
            EhError::Overflow => f.write_str("LEB128 value exceeds 64 bits"),
            EhError::BadEncoding(b) => write!(f, "unsupported DW_EH_PE encoding {b:#04x}"),
            EhError::IndirectPointer => {
                f.write_str("DW_EH_PE_indirect pointer requires a process image")
            }
            EhError::BadCieVersion(v) => write!(f, "unsupported CIE version {v}"),
            EhError::BadCiePointer { offset } => {
                write!(f, "FDE references invalid CIE offset {offset}")
            }
            EhError::Malformed(what) => write!(f, "malformed EH data: {what}"),
        }
    }
}

impl std::error::Error for EhError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, EhError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_specifics() {
        assert!(EhError::Truncated { offset: 9 }.to_string().contains('9'));
        assert!(EhError::BadEncoding(0x5d).to_string().contains("0x5d"));
        assert!(EhError::BadCieVersion(7).to_string().contains('7'));
    }
}
